"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's exhibits end to end on the
bundled simulator.  Runs are memoized process-wide (see
:mod:`repro.sim.runner`), so later exhibits reuse earlier exhibits' runs —
the whole harness costs roughly the union of unique simulations, like the
paper's single campaign.

Scale knobs (environment):

* ``REPRO_BENCH_WORKLOADS`` — workloads per Table 2 class (default 3 here;
  unset the default by setting it to the full 10/8 per class).
* ``REPRO_FULL`` — switch to long traces (12k instructions/thread).
"""

import os

import pytest

#: Default workloads per class for the harness; full Table 2 runs take
#: ~an hour under CPython, so benches sample each class.
DEFAULT_BENCH_WORKLOADS = 3


@pytest.fixture(scope="session")
def bench_workloads():
    raw = os.environ.get("REPRO_BENCH_WORKLOADS")
    if raw:
        value = int(raw)
        return value if value > 0 else None
    return DEFAULT_BENCH_WORKLOADS


@pytest.fixture(scope="session")
def bench_spec():
    from repro.sim.runner import default_spec
    return default_spec()
