"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's exhibits end to end on the
bundled simulator.  Runs are memoized process-wide by the simulation
engine (see :mod:`repro.sim.engine`), so later exhibits reuse earlier
exhibits' runs — the whole harness costs roughly the union of unique
simulations, like the paper's single campaign.

Scale knobs (environment):

* ``REPRO_BENCH_WORKLOADS`` — workloads per Table 2 class (default 3 here;
  set it to 0 for the full 10/8 per class).
* ``REPRO_FULL`` — switch to long traces (12k instructions/thread).

The knob parsing is shared with :mod:`repro.experiments.common` so the
harness and the drivers can't drift.
"""

import pytest

from repro.experiments.common import bench_workloads_per_class
from repro.sim.runner import default_spec

#: Default workloads per class for the harness; full Table 2 runs take
#: ~an hour under CPython, so benches sample each class.
DEFAULT_BENCH_WORKLOADS = 3


@pytest.fixture(scope="session")
def bench_workloads():
    return bench_workloads_per_class(DEFAULT_BENCH_WORKLOADS)


@pytest.fixture(scope="session")
def bench_spec():
    return default_spec()
