"""Design-choice ablations called out in DESIGN.md.

Not a paper exhibit: these benches quantify the two §3.3 implementation
decisions (runahead cache, FP invalidation) the paper discusses textually,
on a memory-bound sample.
"""

import dataclasses

from repro.config import baseline
from repro.sim.runner import run_workload
from repro.trace.workloads import Workload

WORKLOAD = Workload("MEM2", ("swim", "mcf"))
FP_WORKLOAD = Workload("MIX2", ("swim", "mgrid"))


def test_bench_runahead_cache_ablation(benchmark, bench_spec):
    """§3.3: the runahead cache has no significant performance impact."""
    config = baseline()
    with_cache = dataclasses.replace(config, rat_runahead_cache=True)

    def run_pair():
        off = run_workload(WORKLOAD, "rat", config, bench_spec).throughput
        on = run_workload(WORKLOAD, "rat", with_cache,
                          bench_spec).throughput
        return off, on

    off, on = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    deviation = abs(on - off) / off
    benchmark.extra_info["runahead_cache_deviation"] = round(deviation, 4)
    # The paper found the deviation insignificant; allow a loose band.
    assert deviation < 0.15
    print(f"\nrunahead-cache off={off:.3f} on={on:.3f} "
          f"deviation={deviation:.1%}")


def test_bench_fp_invalidation_ablation(benchmark, bench_spec):
    """§3.3: dropping FP ops at decode frees FP resources in runahead."""
    config = baseline()
    without = dataclasses.replace(config, rat_fp_invalidation=False)

    def run_pair():
        on = run_workload(FP_WORKLOAD, "rat", config,
                          bench_spec).throughput
        off = run_workload(FP_WORKLOAD, "rat", without,
                           bench_spec).throughput
        return on, off

    on, off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    benchmark.extra_info["fp_invalidation_gain"] = round(on / off - 1, 4)
    # FP invalidation must never hurt, and typically helps FP workloads.
    assert on >= off * 0.97
    print(f"\nfp-invalidation on={on:.3f} off={off:.3f}")
