"""Figure 1: throughput & fairness of ICOUNT / STALL / FLUSH / RaT."""

from repro.experiments import figure1


def test_bench_figure1(benchmark, bench_spec, bench_workloads):
    result = benchmark.pedantic(
        figure1,
        kwargs={"spec": bench_spec,
                "workloads_per_class": bench_workloads},
        rounds=1, iterations=1)
    sweep = result.data["sweep"]

    # Paper shape: RaT has the best MEM throughput of the static policies,
    # and the best fairness across classes.
    for klass in ("MEM2", "MEM4"):
        rat = sweep.metric("rat", klass, "throughput")
        for other in ("icount", "stall", "flush"):
            assert rat > sweep.metric(other, klass, "throughput"), (
                klass, other)
    for klass in result.data["classes"]:
        rat_fair = sweep.metric("rat", klass, "fairness")
        for other in ("stall", "flush"):
            assert rat_fair >= sweep.metric(other, klass, "fairness") * 0.95

    benchmark.extra_info["rat_vs_flush_mem2"] = round(
        sweep.metric("rat", "MEM2", "throughput")
        / sweep.metric("flush", "MEM2", "throughput"), 3)
    print()
    print(result.render())
