"""Figure 2: throughput & fairness of ICOUNT / DCRA / Hill Climbing / RaT."""

from repro.experiments import figure2


def test_bench_figure2(benchmark, bench_spec, bench_workloads):
    result = benchmark.pedantic(
        figure2,
        kwargs={"spec": bench_spec,
                "workloads_per_class": bench_workloads},
        rounds=1, iterations=1)
    sweep = result.data["sweep"]

    # Paper shape: RaT beats the dynamic resource controllers on MEM.
    for klass in ("MEM2", "MEM4"):
        rat = sweep.metric("rat", klass, "throughput")
        for other in ("dcra", "hill"):
            assert rat > sweep.metric(other, klass, "throughput"), (
                klass, other)

    benchmark.extra_info["rat_vs_dcra_mem2"] = round(
        sweep.metric("rat", "MEM2", "throughput")
        / sweep.metric("dcra", "MEM2", "throughput"), 3)
    print()
    print(result.render())
