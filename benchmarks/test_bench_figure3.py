"""Figure 3: Energy-Delay^2 normalized to ICOUNT."""

from repro.experiments import figure3


def test_bench_figure3(benchmark, bench_spec, bench_workloads):
    result = benchmark.pedantic(
        figure3,
        kwargs={"spec": bench_spec,
                "workloads_per_class": bench_workloads},
        rounds=1, iterations=1)
    normalized = result.data["normalized"]

    # Robust shapes in this model (the full RaT-vs-ICOUNT ED^2 win is the
    # known deviation discussed in EXPERIMENTS.md): ILP workloads execute
    # identically under every policy, all values are meaningful, and on
    # the 2-thread memory class RaT spends its speculation more
    # efficiently than FLUSH's squash-and-refetch.
    for policy, values in normalized.items():
        assert abs(values["ILP2"] - 1.0) < 0.05, policy
        for klass, value in values.items():
            assert 0.0 < value < float("inf"), (policy, klass)
    assert normalized["rat"]["MEM2"] < normalized["flush"]["MEM2"]

    mem_avg = (normalized["rat"]["MEM2"] + normalized["rat"]["MEM4"]) / 2
    benchmark.extra_info["rat_ed2_mem_avg"] = round(mem_avg, 3)
    print()
    print(result.render())
