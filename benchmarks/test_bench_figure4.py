"""Figure 4: sources of improvement of RaT (three ablations)."""

from repro.experiments import figure4


def test_bench_figure4(benchmark, bench_spec, bench_workloads):
    result = benchmark.pedantic(
        figure4,
        kwargs={"spec": bench_spec,
                "workloads_per_class": bench_workloads},
        rounds=1, iterations=1)
    per_class = result.data["per_class"]

    # Paper shape: prefetching dominates the benefit on MEM workloads;
    # the raw runahead overhead on co-runners stays small.
    assert per_class["MEM2"].prefetching > 0.10
    assert per_class["MEM4"].prefetching > 0.10
    mix_overheads = [per_class[k].overhead for k in ("MIX2", "MIX4")
                     if k in per_class]
    for overhead in mix_overheads:
        assert overhead < 0.60  # co-runners are not crippled

    benchmark.extra_info["mem2_prefetching_pct"] = round(
        per_class["MEM2"].prefetching * 100, 1)
    print()
    print(result.render())
