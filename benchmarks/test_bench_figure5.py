"""Figure 5: register occupancy, normal vs runahead mode."""

from repro.experiments import figure5


def test_bench_figure5(benchmark, bench_spec, bench_workloads):
    result = benchmark.pedantic(
        figure5,
        kwargs={"spec": bench_spec,
                "workloads_per_class": bench_workloads},
        rounds=1, iterations=1)
    usage = result.data["usage"]

    # Paper shape: threads hold fewer registers in runahead mode.
    for klass in ("MEM2", "MEM4"):
        normal, runahead = usage[klass]
        assert runahead < normal, klass

    normal, runahead = usage["MEM2"]
    benchmark.extra_info["mem2_ra_over_normal"] = round(
        runahead / normal, 3)
    print()
    print(result.render())
