"""Figure 6: throughput vs register-file size, FLUSH vs RaT.

The heaviest sweep of the harness (2 policies x 5 sizes x classes), so it
samples 2 workloads per class regardless of ``REPRO_BENCH_WORKLOADS``.
"""

from repro.experiments import figure6


def test_bench_figure6(benchmark, bench_spec, bench_workloads):
    per_class = min(2, bench_workloads) if bench_workloads else 2
    result = benchmark.pedantic(
        figure6,
        kwargs={"spec": bench_spec, "workloads_per_class": per_class},
        rounds=1, iterations=1)
    series = result.data["series"]

    # Paper shape, on the memory-bound classes:
    # (1) RaT with a small register file still beats FLUSH with 320.
    # (2) RaT degrades less, relatively, as the file shrinks.
    for klass in ("MEM2", "MEM4"):
        rat = series[(klass, "rat")]
        flush = series[(klass, "flush")]
        assert rat[1] > flush[-1], klass        # RaT@128 >= FLUSH@320
        rat_loss = 1.0 - rat[0] / rat[-1]
        flush_loss = 1.0 - flush[0] / flush[-1]
        assert rat_loss <= flush_loss + 0.05, klass

    benchmark.extra_info["mem2_rat_128_vs_flush_320"] = round(
        series[("MEM2", "rat")][1] / series[("MEM2", "flush")][-1], 3)
    print()
    print(result.render())
