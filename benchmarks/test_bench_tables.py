"""Benchmarks regenerating Table 1 and Table 2."""

from repro.experiments import table1, table2


def test_bench_table1(benchmark):
    """Table 1: render the baseline machine configuration."""
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    text = result.render()
    assert "512 shared entries" in text
    print()
    print(text)


def test_bench_table2(benchmark, bench_spec):
    """Table 2: all 54 workloads + measured L2-MPKI classification.

    Asserts the paper's premise: measured L2 miss rates separate the MEM
    group from the ILP group.
    """
    result = benchmark.pedantic(
        table2, kwargs={"spec": bench_spec}, rounds=1, iterations=1)
    mpki = result.data["mpki"]
    from repro.trace.profiles import ilp_benchmarks, mem_benchmarks
    worst_ilp = max(mpki[name] for name in ilp_benchmarks())
    best_mem = min(mpki[name] for name in mem_benchmarks())
    benchmark.extra_info["worst_ilp_mpki"] = round(worst_ilp, 2)
    benchmark.extra_info["best_mem_mpki"] = round(best_mem, 2)
    assert best_mem > worst_ilp
    print()
    print(result.render())
