#!/usr/bin/env python3
"""Define a custom benchmark profile and study it under runahead.

Shows the extensibility path a downstream user takes: describe a program
statistically (instruction mix, working set, access patterns), generate a
trace, and measure how much runahead helps as the program shifts from
pointer-chasing (serial misses) to streaming (parallel misses).

Run:  python examples/custom_workload.py
(set REPRO_EXAMPLE_TRACE_LEN for a shorter/longer run, e.g. in CI)
"""

import os

from repro import SMTConfig, SMTProcessor
from repro.experiments.report import ascii_table
from repro.trace.generator import TraceGenerator
from repro.trace.profiles import BenchmarkProfile

MB = 1024 * 1024
TRACE_LEN = int(os.environ.get("REPRO_EXAMPLE_TRACE_LEN", "3000"))


def make_profile(name: str, stream: float, chase: float) -> BenchmarkProfile:
    """A memory-bound profile whose MLP character is parameterized."""
    return BenchmarkProfile(
        name=name,
        is_fp=False,
        is_mem=True,
        load_fraction=0.28,
        store_fraction=0.08,
        branch_fraction=0.12,
        dep_distance=4.0,
        working_set_bytes=16 * MB,
        stream_weight=stream,
        random_weight=max(0.0, 1.0 - stream - chase),
        chase_weight=chase,
        stride_bytes=8,
        num_streams=4,
        chase_chains=2,
        hot_fraction=0.02,
        hot_prob=0.6,
        code_blocks=200,
    )


def main() -> None:
    rows = []
    for label, stream, chase in (("chaser", 0.05, 0.85),
                                 ("balanced", 0.45, 0.35),
                                 ("streamer", 0.90, 0.00)):
        profile = make_profile(f"custom-{label}", stream, chase)
        trace = TraceGenerator(profile, TRACE_LEN, seed=7).generate()
        ipcs = {}
        for policy in ("icount", "rat"):
            cpu = SMTProcessor(SMTConfig(policy=policy).validate(), [trace])
            ipcs[policy] = cpu.run().ipcs[0]
        gain = ipcs["rat"] / ipcs["icount"] - 1.0
        rows.append([label, ipcs["icount"], ipcs["rat"],
                     f"{gain:+.0%}"])

    print(ascii_table(("Program", "ICOUNT IPC", "RaT IPC", "RaT gain"),
                      rows,
                      title="Runahead benefit vs memory-level parallelism"))
    print("\nStreaming misses are independent, so runahead prefetches them "
          "in bulk;\npointer chasing serializes address generation and "
          "leaves runahead little\nto do — the core trade-off behind the "
          "paper's per-benchmark results.")


if __name__ == "__main__":
    main()
