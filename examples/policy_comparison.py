#!/usr/bin/env python3
"""Compare all fetch/resource policies on one workload of each class.

Reproduces, at a glance, the shape of the paper's Figures 1 and 2: the
long-latency-load handlers (STALL/FLUSH), the dynamic resource controllers
(DCRA/hill climbing), the related-work MLP-aware policy, and Runahead
Threads, all against the ICOUNT baseline.

Run:  python examples/policy_comparison.py [--trace-len N]
"""

import argparse
import os

from repro import SMTConfig, SMTProcessor, generate_trace
from repro.experiments.report import ascii_table
from repro.trace.workloads import get_workloads

POLICIES = ("icount", "stall", "flush", "dcra", "hill", "mlp", "rat")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace-len", type=int,
        default=int(os.environ.get("REPRO_EXAMPLE_TRACE_LEN", "3000")))
    args = parser.parse_args()

    rows = []
    for klass in ("ILP2", "MIX2", "MEM2"):
        workload = get_workloads(klass)[1]
        traces = [generate_trace(name, args.trace_len)
                  for name in workload.benchmarks]
        row = [f"{klass}: {workload.name}"]
        for policy in POLICIES:
            cpu = SMTProcessor(SMTConfig(policy=policy).validate(), traces)
            row.append(cpu.run().throughput)
        rows.append(row)

    print(ascii_table(("Workload",) + POLICIES, rows,
                      title="Throughput (IPC) by policy"))
    print("\nExpected shape: all policies tie on ILP2; RaT leads MEM2 by "
          "exploiting\nmemory-level parallelism instead of stalling or "
          "flushing the blocked thread.")


if __name__ == "__main__":
    main()
