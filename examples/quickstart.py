#!/usr/bin/env python3
"""Quickstart: simulate a 2-thread SMT workload under Runahead Threads.

Builds the paper's Table 1 machine, generates synthetic traces for a
memory-bound benchmark (swim) and a pointer-chaser (mcf), and compares the
baseline ICOUNT fetch policy against Runahead Threads.

Run:  python examples/quickstart.py
(set REPRO_EXAMPLE_TRACE_LEN for a shorter/longer run, e.g. in CI)
"""

import os

from repro import SMTConfig, SMTProcessor, generate_trace

TRACE_LEN = int(os.environ.get("REPRO_EXAMPLE_TRACE_LEN", "3000"))


def run(policy: str):
    traces = [generate_trace("swim", TRACE_LEN),
              generate_trace("mcf", TRACE_LEN)]
    cpu = SMTProcessor(SMTConfig(policy=policy).validate(), traces)
    result = cpu.run()
    return cpu, result


def main() -> None:
    print("Machine: the paper's Table 1 baseline "
          "(8-wide SMT, 512-entry shared ROB, 400-cycle memory)\n")
    for policy in ("icount", "rat"):
        cpu, result = run(policy)
        episodes = sum(stats.runahead_episodes
                       for stats in result.thread_stats)
        print(f"policy={policy:<6} throughput={result.throughput:.3f} IPC")
        for name, ipc in zip(result.benchmarks, result.ipcs):
            print(f"    {name:<6} IPC={ipc:.3f}")
        print(f"    cycles={result.cycles}  runahead episodes={episodes}  "
              f"executed={result.total_executed} "
              f"(committed {result.total_committed})")
        prefetches = sum(s.prefetches for s in cpu.pipeline.mem.stats)
        useful = sum(s.useful_prefetches for s in cpu.pipeline.mem.stats)
        print(f"    prefetches issued={prefetches} "
              f"(later hit by demand accesses: {useful})\n")
    print("Runahead Threads turn swim's memory stalls into prefetching "
          "speculation;\nits IPC rises while mcf (pure pointer chasing) "
          "is largely unchanged —\nexactly the paper's §5.1 behaviour.")


if __name__ == "__main__":
    main()
