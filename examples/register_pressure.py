#!/usr/bin/env python3
"""Register-file sensitivity: the paper's §6.2 case study.

Sweeps the physical register file from 96 to 320 entries for FLUSH and
RaT on a memory-bound pair, showing that runahead execution keeps
registers allocated for short periods: RaT barely degrades while FLUSH
loses much of its throughput, and RaT with a small file beats FLUSH with
the full 320 registers (paper Figure 6).

Run:  python examples/register_pressure.py
(set REPRO_EXAMPLE_TRACE_LEN for a shorter/longer run, e.g. in CI)
"""

import os

from repro import SMTConfig, SMTProcessor, generate_trace
from repro.experiments.report import ascii_table

SIZES = (96, 128, 192, 256, 320)
BENCHES = ("swim", "mcf")
TRACE_LEN = int(os.environ.get("REPRO_EXAMPLE_TRACE_LEN", "3000"))


def throughput(policy: str, regs: int) -> float:
    traces = [generate_trace(name, TRACE_LEN) for name in BENCHES]
    config = SMTConfig(policy=policy, int_regs=regs,
                       fp_regs=regs).validate()
    return SMTProcessor(config, traces).run().throughput


def main() -> None:
    rows = []
    for policy in ("flush", "rat"):
        rows.append([policy] + [throughput(policy, regs)
                                for regs in SIZES])
    print(ascii_table(("Policy",) + tuple(map(str, SIZES)), rows,
                      title=f"Throughput vs register file size "
                            f"({','.join(BENCHES)})"))
    flush_320 = rows[0][-1]
    rat_128 = rows[1][2]
    print(f"\nRaT with 128 registers ({rat_128:.3f} IPC) vs FLUSH with "
          f"320 ({flush_320:.3f} IPC): "
          f"{'RaT wins' if rat_128 > flush_320 else 'FLUSH wins'} — "
          "the paper's 60% register-file reduction result.")


if __name__ == "__main__":
    main()
