"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP 660
editable wheels; this shim lets ``pip install -e . --no-build-isolation``
fall back to the classic ``setup.py develop`` path.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
