"""repro — reproduction of "Runahead Threads to Improve SMT Performance"
(Ramírez, Pajuelo, Santana, Valero; HPCA 2008).

The package provides:

* a cycle-level SMT processor simulator with the paper's Table 1 machine
  (:mod:`repro.core`), including the Runahead Threads mechanism;
* the compared fetch/resource policies — ICOUNT, STALL, FLUSH, DCRA,
  hill climbing, MLP-aware, and RaT (:mod:`repro.policies`);
* synthetic SPEC CPU2000 workloads and the Table 2 mixes
  (:mod:`repro.trace`);
* the paper's metrics and FAME measurement methodology
  (:mod:`repro.metrics`, :mod:`repro.sim`);
* experiment drivers regenerating every table and figure
  (:mod:`repro.experiments`).

Quick start::

    from repro import SMTConfig, SMTProcessor, generate_trace

    traces = [generate_trace("mcf", 3000), generate_trace("gzip", 3000)]
    cpu = SMTProcessor(SMTConfig(policy="rat"), traces)
    result = cpu.run()
    print(result.throughput, result.ipcs)
"""

from .config import CacheConfig, SMTConfig, baseline
from .core import SMTProcessor, SimResult
from .errors import (
    ConfigError,
    DeadlockError,
    ReproError,
    SimulationError,
    TraceError,
    UnknownBenchmarkError,
    UnknownPolicyError,
    UnknownWorkloadError,
)
from .metrics import ed2, fairness, throughput
from .policies import POLICY_NAMES, create_policy
from .sim import RunSpec, run_workload, single_thread_ipc, sweep_policies
from .trace import (
    Trace,
    Workload,
    all_workloads,
    benchmark_names,
    generate_trace,
    get_profile,
    get_workloads,
    workload_class_names,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "SMTConfig",
    "baseline",
    "SMTProcessor",
    "SimResult",
    "ReproError",
    "ConfigError",
    "TraceError",
    "SimulationError",
    "DeadlockError",
    "UnknownBenchmarkError",
    "UnknownPolicyError",
    "UnknownWorkloadError",
    "ed2",
    "fairness",
    "throughput",
    "POLICY_NAMES",
    "create_policy",
    "RunSpec",
    "run_workload",
    "single_thread_ipc",
    "sweep_policies",
    "Trace",
    "Workload",
    "all_workloads",
    "benchmark_names",
    "generate_trace",
    "get_profile",
    "get_workloads",
    "workload_class_names",
    "__version__",
]
