"""Static analysis of the repro package (``repro lint``).

The subsystem machine-checks the invariants the rest of the repo only
documented: determinism of the simulation packages, the
salt-bump-on-semantic-change policy of the content-addressed stores,
the pipeline's hook opt-in contracts, the PR 3/4 hot-path discipline,
and the digest classification of every stats slot.

Layout mirrors the package's other registries:

- :mod:`repro.analysis.registry` — ``@rule`` registration;
- :mod:`repro.analysis.model` — findings, options, context, report;
- :mod:`repro.analysis.engine` — :func:`run_lint`;
- :mod:`repro.analysis.cli` — the ``repro lint`` subcommand;
- one module per rule (:mod:`determinism <repro.analysis.determinism>`,
  :mod:`fingerprint <repro.analysis.fingerprint>`,
  :mod:`hooks <repro.analysis.hooks>`,
  :mod:`hotpath <repro.analysis.hotpath>`,
  :mod:`digests <repro.analysis.digests>`);
- ``fingerprints.json`` — the pinned normalized-AST baseline.
"""

from .engine import default_root, run_lint
from .model import Finding, LintContext, LintOptions, LintReport
from .registry import (LintRuleError, Rule, create_rules,
                       rule, rule_descriptions, rule_names)

__all__ = [
    "Finding",
    "LintContext",
    "LintOptions",
    "LintReport",
    "LintRuleError",
    "Rule",
    "create_rules",
    "default_root",
    "rule",
    "rule_descriptions",
    "rule_names",
    "run_lint",
]
