"""Small AST helpers shared by the lint rules.

Nothing here imports the linted modules: rules resolve names purely
lexically (import-alias expansion plus attribute-chain spelling), which
is exactly as strong as the invariants they check — a hazard smuggled
through ``getattr`` games is out of scope by design.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child node -> parent node, for upward looks (e.g. call wrapping)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def dotted(node: ast.AST) -> Optional[str]:
    """The literal dotted spelling of a Name/Attribute chain, if it is one."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Local name -> dotted origin, from a module's import statements.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from os import
    listdir as ld`` maps ``ld`` to ``os.listdir``; ``import os.path``
    maps ``os`` to ``os``.  Relative imports (``from . import x``) stay
    unmapped — they cannot reach the stdlib modules the rules look for.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._origins: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    self._origins[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._origins[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted origin of a Name/Attribute chain.

        The chain's root name is expanded through the import table, so
        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``.
        """
        spelling = dotted(node)
        if spelling is None:
            return None
        root, _, rest = spelling.partition(".")
        origin = self._origins.get(root)
        if origin is None:
            return spelling
        return f"{origin}.{rest}" if rest else origin


def iter_functions(tree: ast.Module
                   ) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualname, node)`` for every function/method in a module.

    Qualnames are dotted through enclosing classes and functions
    (``SMTPipeline._commit_thread``), matching the hot-list spelling.
    """
    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
    yield from visit(tree, "")
