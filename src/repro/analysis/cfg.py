"""A small statement-level control-flow graph for the effect rules.

:mod:`repro.analysis.effects` needs one graph question answered: *from
this statement, can control later reach that one without re-entering a
loop?*  (The macro-dispatch contract is per-entry — "no machine
mutation before the guards have all passed **this attempt**" — so a
mutation followed by an abort only via a loop back edge is compliant.)

The graph is deliberately minimal: nodes are the statements of one
function body (compound statements contribute their header), edges are
fall-through/branch/loop successors, and ``try``/``with`` are treated
as linear regions (the hot functions under analysis are exception-free
by the hot-path rule; a ``raise`` simply terminates its path).  Back
edges are identified structurally after construction: an edge into a
loop header from a statement inside that loop's own body is a back
edge, and nothing else is.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

#: Sentinel successor: control leaves the analyzed region.
EXIT = "exit"


class CFG:
    """Successor graph over the statements of one region."""

    def __init__(self) -> None:
        self.nodes: Dict[int, ast.stmt] = {}
        self.succ: Dict[int, Set] = {}
        self.back_edges: Set[Tuple[int, int]] = set()
        self._loop_members: Dict[int, Set[int]] = {}

    def _note(self, stmt: ast.stmt) -> int:
        nid = id(stmt)
        self.nodes[nid] = stmt
        self.succ.setdefault(nid, set())
        return nid

    def _edge(self, source: int, target) -> None:
        self.succ[source].add(target)

    def _sequence(self, stmts, follow, break_to, continue_to):
        """Wire ``stmts`` so the last falls through to ``follow``;
        return the entry point of the sequence."""
        entry = follow
        for stmt in reversed(list(stmts)):
            entry = self._statement(stmt, entry, break_to, continue_to)
        return entry

    def _statement(self, stmt: ast.stmt, follow, break_to, continue_to):
        nid = self._note(stmt)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._edge(nid, EXIT)
        elif isinstance(stmt, ast.Break):
            self._edge(nid, EXIT if break_to is None else break_to)
        elif isinstance(stmt, ast.Continue):
            self._edge(nid, EXIT if continue_to is None else continue_to)
        elif isinstance(stmt, ast.If):
            self._edge(nid, self._sequence(stmt.body, follow,
                                           break_to, continue_to))
            self._edge(nid, self._sequence(stmt.orelse, follow,
                                           break_to, continue_to))
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            members = {nid}
            for child in stmt.body:
                for node in ast.walk(child):
                    if isinstance(node, ast.stmt):
                        members.add(id(node))
            self._loop_members[nid] = members
            loop_exit = self._sequence(stmt.orelse, follow,
                                       break_to, continue_to)
            body = self._sequence(stmt.body, nid, break_to=follow,
                                  continue_to=nid)
            self._edge(nid, body)
            self._edge(nid, loop_exit)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._edge(nid, self._sequence(stmt.body, follow,
                                           break_to, continue_to))
        elif isinstance(stmt, ast.Try):
            tail = follow
            if stmt.finalbody:
                tail = self._sequence(stmt.finalbody, follow,
                                      break_to, continue_to)
            self._edge(nid, self._sequence(stmt.body + stmt.orelse, tail,
                                           break_to, continue_to))
            for handler in stmt.handlers:
                self._edge(nid, self._sequence(handler.body, tail,
                                               break_to, continue_to))
        else:
            self._edge(nid, follow)
        return nid

    def _tag_back_edges(self) -> None:
        for header, members in self._loop_members.items():
            for source, successors in self.succ.items():
                if header in successors and source in members:
                    self.back_edges.add((source, header))


def build(body: List[ast.stmt]) -> CFG:
    """The CFG of one statement sequence (a function or region body)."""
    graph = CFG()
    graph._sequence(body, EXIT, break_to=None, continue_to=None)
    graph._tag_back_edges()
    return graph


def reaches_forward(graph: CFG, targets: Set[int]) -> Set[int]:
    """Node ids from which some node in ``targets`` is reachable
    without traversing a loop back edge (same-iteration reachability).

    The target nodes themselves are included only if another target is
    reachable from them.
    """
    reverse: Dict[int, Set[int]] = {}
    for source, successors in graph.succ.items():
        for target in successors:
            if target is EXIT or (source, target) in graph.back_edges:
                continue
            reverse.setdefault(target, set()).add(source)
    seen: Set[int] = set()
    frontier = [nid for nid in targets if nid in graph.nodes]
    while frontier:
        nid = frontier.pop()
        for source in reverse.get(nid, ()):
            if source not in seen:
                seen.add(source)
                frontier.append(source)
    return seen
