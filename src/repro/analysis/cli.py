"""``repro lint`` — machine-check the repo's reproducibility invariants.

Exit codes: 0 = clean (warnings allowed), 1 = lint errors, 2 = usage
error.  ``--format json`` emits the stable document CI validates (see
``LintReport.to_dict``); ``--accept-fingerprints`` re-pins the
normalized-AST baseline after a reviewed salt bump or a verified
bit-identical refactor.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import default_root, run_lint
from .model import LintOptions
from .registry import LintRuleError, rule_descriptions, rule_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=("Static analysis of the repro package: determinism, "
                     "salt-bump discipline, hook conformance, hot-path "
                     "hygiene and digest safety."))
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help=("package root to lint (default: the installed repro "
              "package)"))
    parser.add_argument(
        "--rules", default=None, metavar="NAME[,NAME...]",
        help="comma-separated subset of rules to run (default: all)")
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "json"), default="text",
        help="report format (json is the CI-validated document)")
    parser.add_argument(
        "--accept-fingerprints", action="store_true",
        help=("re-pin analysis/fingerprints.json to the current tree "
              "instead of checking it"))
    parser.add_argument(
        "--fingerprints", default=None, metavar="FILE",
        help=("fingerprint pins file (default: "
              "<root>/analysis/fingerprints.json)"))
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    return parser


def lint_main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        descriptions = rule_descriptions()
        width = max(len(name) for name in descriptions)
        for name in rule_names():
            print(f"{name:<{width}}  {descriptions[name]}")
        return 0

    rules = None
    if args.rules is not None:
        rules = [name.strip() for name in args.rules.split(",")
                 if name.strip()]
        if not rules:
            print("repro lint: --rules given but empty", file=sys.stderr)
            return 2

    options = LintOptions(
        rules=rules,
        accept_fingerprints=args.accept_fingerprints,
        fingerprints_path=args.fingerprints,
    )
    try:
        report = run_lint(args.root if args.root else default_root(),
                          options)
    except LintRuleError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.fmt == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=False))
    else:
        print(report.render_text())
    return report.exit_code()


if __name__ == "__main__":   # pragma: no cover - exercised via repro CLI
    sys.exit(lint_main())
