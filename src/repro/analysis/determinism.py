"""Rule ``determinism-hazard``: no ambient nondeterminism in the model.

The simulator's whole caching/sharding/golden-digest regime rests on one
property: a cell's :class:`~repro.core.processor.SimResult` is a pure
function of its content-addressed key.  Anything that lets ambient
process state leak into simulation — wall-clock reads, the global
``random`` state, CPython object identities, filesystem enumeration
order, undeclared environment reads — breaks that silently: results
still *look* right, they just stop being reproducible, and a shared
store starts serving answers no key can explain.

The rule scans the simulation-semantics packages (``core/``, ``mem/``,
``trace/``, ``policies/``, ``sim/``) for:

* **wall-clock / entropy reads** — ``time.time()`` & friends,
  ``datetime.now()``, ``os.urandom``, ``uuid.uuid4``, ``secrets``;
* **global random state** — any ``random.*`` module-level call (seeded
  ``random.Random(seed)`` instances are fine), ``numpy.random``
  module-level draws, and ``numpy.random.default_rng()`` without a seed;
* **object identity** — ``id()`` and builtin ``hash()`` calls (both
  vary per process: addresses and ``PYTHONHASHSEED``);
* **unsorted directory listings** — ``os.listdir``/``os.scandir`` calls
  not directly wrapped in ``sorted(...)``;
* **environment reads** — ``os.environ`` / ``os.getenv`` outside the
  declared config entry points (:data:`ENVIRON_ENTRY_POINTS`).

Genuinely wall-clock operations (age-based cache pruning) carry a
per-line ``# lint: disable=<rule>`` suppression at the call site (see
:mod:`repro.analysis.suppressions`).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from .astutil import ImportMap, parent_map
from .model import Finding, LintContext, SourceFile
from .registry import Rule, rule

#: Package prefixes the rule applies to (simulation semantics only;
#: the CLI and experiment renderers may read clocks freely).
SCOPE_PREFIXES = ("core/", "mem/", "trace/", "policies/", "sim/")

#: Module relpaths allowed to read ``os.environ``/``os.getenv`` — the
#: declared configuration entry points.  ``sim/runner.py`` owns the
#: ``REPRO_FULL`` run-spec default; everything else must take
#: configuration as arguments (``repro/config.py`` lives outside the
#: scanned scope and stays the home for new knobs).
ENVIRON_ENTRY_POINTS = ("sim/runner.py",)

#: Callables whose result depends on when/where the process runs.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
})

#: ``numpy.random`` attributes that are constructors for *seedable*
#: generators rather than draws from the global state.
_NUMPY_SEEDABLE = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "PCG64DXSM",
    "Philox", "SFC64", "MT19937", "BitGenerator", "RandomState",
})

#: ``random`` attributes that construct independent (seedable) streams.
_RANDOM_SEEDABLE = frozenset({"Random"})


@rule
class DeterminismRule(Rule):
    name = "determinism-hazard"
    description = ("no wall-clock, global-random, id()/hash(), unsorted "
                   "listdir, or undeclared environ reads in the "
                   "simulation packages")

    def run(self, ctx: LintContext) -> List[Finding]:
        entry_points = ctx.options.environ_entry_points
        if entry_points is None:
            entry_points = ENVIRON_ENTRY_POINTS
        findings: List[Finding] = []
        for source in ctx.files():
            if not source.relpath.startswith(SCOPE_PREFIXES):
                continue
            findings.extend(self._scan(source, entry_points))
        return findings

    def _scan(self, source: SourceFile,
              entry_points: Sequence[str]) -> List[Finding]:
        tree = source.tree
        imports = ImportMap(tree)
        parents = parent_map(tree)
        findings: List[Finding] = []

        def report(node: ast.AST, message: str) -> None:
            findings.append(Finding(rule=self.name, path=source.relpath,
                                    line=node.lineno, message=message))

        allowed_environ = source.relpath in entry_points
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                target = imports.resolve(node.func)
                if target is not None:
                    self._check_call(node, target, parents, report,
                                     allowed_environ, entry_points)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                # Exactly one node per ``os.environ`` occurrence
                # resolves to the bare spelling (the ``.get``/subscript
                # wrappers resolve longer), so this reports each read
                # once, whatever form it takes.
                if not allowed_environ \
                        and imports.resolve(node) == "os.environ":
                    report(node,
                           "os.environ read outside the declared "
                           "config entry points "
                           f"({', '.join(entry_points)}) — ambient "
                           "environment must not steer simulation "
                           "semantics; thread it through "
                           "SMTConfig/RunSpec instead")
        return findings

    def _check_call(self, node: ast.Call, target: str, parents,
                    report, allowed_environ: bool,
                    entry_points: Sequence[str]) -> None:
        if target in _CLOCK_CALLS:
            report(node, f"{target}() reads ambient process state — a "
                         "simulation input must come from the cell key "
                         "(config/spec/workload), never the clock")
            return
        root, _, attr = target.partition(".")
        if root == "random" and attr and "." not in attr:
            if attr not in _RANDOM_SEEDABLE:
                report(node, f"random.{attr}() draws from the global "
                             "random state — use a seeded "
                             "random.Random/numpy Generator carried by "
                             "the trace spec")
            return
        if target.startswith("numpy.random."):
            attr = target[len("numpy.random."):]
            if attr == "default_rng" and not node.args \
                    and not node.keywords:
                report(node, "numpy.random.default_rng() without a seed "
                             "is entropy-seeded — derive the seed from "
                             "the cell spec")
            elif "." not in attr and attr not in _NUMPY_SEEDABLE:
                report(node, f"numpy.random.{attr}() draws from the "
                             "global numpy state — use a Generator "
                             "seeded from the cell spec")
            return
        if root == "secrets":
            report(node, f"{target}() is an entropy source — "
                         "simulation inputs must be derived from the "
                         "cell key")
            return
        if target in ("id", "hash"):
            report(node, f"builtin {target}() varies per process "
                         "(object addresses / PYTHONHASHSEED) — results "
                         "derived from it are not reproducible; key on "
                         "stable fields instead")
            return
        if target in ("os.listdir", "os.scandir"):
            parent = parents.get(node)
            wrapped = (isinstance(parent, ast.Call)
                       and isinstance(parent.func, ast.Name)
                       and parent.func.id == "sorted")
            if not wrapped:
                report(node, f"{target}() order is "
                             "filesystem-dependent — wrap the call in "
                             "sorted(...) so every walk and report is "
                             "deterministic")
            return
        if target == "os.getenv" and not allowed_environ:
            report(node, "os.getenv read outside the declared config "
                         f"entry points ({', '.join(entry_points)}) — "
                         "thread configuration through SMTConfig/"
                         "RunSpec instead")
