"""Rule ``digest-safety``: every stats slot is classified, on purpose.

The golden-digest regime (tier-1's 16 pinned digests) certifies
:class:`~repro.core.processor.SimResult`, and per-thread counters are
part of it — adding a :class:`~repro.core.stats.ThreadStats` field
changes ``to_dict()`` and therefore every digest and every store
payload.  :class:`~repro.core.stats.GlobalStats` is the opposite: a
declared diagnostics surface that may grow freely.  That split used to
live in two docstrings; this rule makes it a checked declaration:

* ``core/stats.py`` must declare ``THREAD_DIGEST_FIELDS`` (the
  digest-participating slots — exactly the ``ThreadStats`` fields) and
  ``DIGEST_SAFE_DIAGNOSTICS`` (the digest-exempt slots — exactly the
  ``GlobalStats`` fields);
* **every** field of each dataclass must appear in its class's
  declaration — a new counter forces its author to say which side of
  the digest boundary it lands on (a diagnostic belongs in
  ``GlobalStats``; a digest-participating counter in ``ThreadStats``
  plus a salt bump and re-pinned goldens);
* a declared name with no matching field is equally an error (stale
  declarations hide real drift).

``tests/test_lint.py`` additionally pins that the declarations agree
with the *runtime* dataclasses, so the static view cannot rot.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .model import Finding, LintContext
from .registry import Rule, rule

#: Where the stats dataclasses and their classifications live.
STATS_MODULE = "core/stats.py"

#: Stats class -> (its classification tuple, what membership means).
CLASS_DECLARATIONS = {
    "ThreadStats": ("THREAD_DIGEST_FIELDS", "digest-participating"),
    "GlobalStats": ("DIGEST_SAFE_DIAGNOSTICS", "digest-exempt"),
}


def _declared_tuple(tree: ast.Module, name: str
                    ) -> Optional[Tuple[int, List[str]]]:
    """``(lineno, names)`` of a module-level ``NAME = ("a", "b", ...)``."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name:
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)):
                names = []
                for element in value.elts:
                    if isinstance(element, ast.Constant) \
                            and isinstance(element.value, str):
                        names.append(element.value)
                    else:
                        return None
                return node.lineno, names
    return None


def _class_fields(tree: ast.Module, class_name: str
                  ) -> Optional[Dict[str, int]]:
    """``{field: lineno}`` for a dataclass's annotated class-level
    fields (ClassVar-annotated names are not fields)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: Dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    if "ClassVar" in ast.dump(stmt.annotation):
                        continue
                    fields[stmt.target.id] = stmt.lineno
            return fields
    return None


@rule
class DigestSafetyRule(Rule):
    name = "digest-safety"
    description = ("every ThreadStats/GlobalStats field must be "
                   "classified: THREAD_DIGEST_FIELDS (feeds result "
                   "digests) or DIGEST_SAFE_DIAGNOSTICS (digest-exempt)")

    def run(self, ctx: LintContext) -> List[Finding]:
        source = ctx.file(STATS_MODULE)
        if source is None:
            return [Finding(
                rule=self.name, path=STATS_MODULE, line=1,
                message=(f"{STATS_MODULE} not found — the digest-safety "
                         "rule needs the stats module to classify"))]
        tree = source.tree
        findings: List[Finding] = []
        for class_name in sorted(CLASS_DECLARATIONS):
            declaration, meaning = CLASS_DECLARATIONS[class_name]
            fields = _class_fields(tree, class_name)
            if fields is None:
                findings.append(Finding(
                    rule=self.name, path=STATS_MODULE, line=1,
                    message=(f"dataclass {class_name!r} not found in "
                             f"{STATS_MODULE}")))
                continue
            declared = _declared_tuple(tree, declaration)
            if declared is None:
                findings.append(Finding(
                    rule=self.name, path=STATS_MODULE, line=1,
                    message=(f"{STATS_MODULE} must declare "
                             f"{declaration} as a module-level tuple of "
                             f"{class_name} field-name strings")))
                continue
            decl_line, names = declared
            declared_set = set(names)
            for field in sorted(set(fields) - declared_set):
                findings.append(Finding(
                    rule=self.name, path=STATS_MODULE,
                    line=fields[field],
                    message=(f"{class_name}.{field} is not classified — "
                             f"every {class_name} slot is {meaning}; "
                             f"add it to {declaration} (and, for "
                             "THREAD_DIGEST_FIELDS, bump "
                             "CODE_VERSION_SALT and re-pin the golden "
                             "digests) or move a pure diagnostic to "
                             "the other stats class")))
            for name in sorted(declared_set - set(fields)):
                findings.append(Finding(
                    rule=self.name, path=STATS_MODULE, line=decl_line,
                    message=(f"{declaration} names {name!r} which is "
                             f"not a field of {class_name} — remove "
                             "the stale declaration")))
        return findings
