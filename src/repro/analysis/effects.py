"""Rule ``guard-purity``: aborts are fall-throughs, horizons are pure.

Two of the repo's performance layers are sound only because of effect
ordering disciplines that used to live in docstrings:

**Macro-dispatch guards** (PR 6, transcribed into the kernel tier in
PR 8).  ``SMTPipeline._macro_dispatch`` speculates a fused multi-
instruction dispatch run, protected by entry guards (ROB/IQ/regfile
headroom, policy veto, desync check).  The contract: *every guard holds
before any machine mutation; an abort is a fall-through to the
per-instruction path, never a rollback*.  If a machine-state write ever
moves above a guard, an aborted attempt leaves the machine corrupted —
and nothing but review enforced that.  This rule builds a
statement-level CFG (:mod:`repro.analysis.cfg`) over
``_macro_dispatch`` **and over the macro block of every generated
kernel** (via :func:`repro.analysis.tiersync.generated_kernels`),
classifies every mutation site, and errors on any machine mutation from
which an abort site is still reachable in the same attempt (loop back
edges excluded — a mutation after this attempt's guards all passed is
the speculation paying off).

Mutation classification:

* **local** — writes to bare names and to containers created fresh in
  the region (``live = []`` … ``live.append``): invisible outside.
* **plan** — the speculation metadata tables (``plan.*``, ``plans[...]``,
  ``thread.macro_plans``): explicitly outside the contract (plans are
  recorded before guards by design; they describe the trace, not the
  machine).
* **abort accounting** — ``macro_guard_aborts`` / ``macro_abort_causes``
  writes: the abort bookkeeping itself.
* **machine** — everything else: ROB/IQ/regfile/fetch-queue state,
  stats slots, pipeline fields.  These must be unreachable-from-abort.

**Horizon purity** (PR 4).  The cycle-skipping fast path calls
``skip_horizon`` / ``next_*_cycle`` on every quiescent cycle; the skip
contract says these queries must not mutate simulation state (a skip
must be unobservable).  The rule checks every implementation for
machine mutations, with a short allowlist of *lazy cache prunes* that
are part of the queries' amortized-cost design and provably
state-transparent (:data:`BENIGN_MUTATIONS` — each entry is documented
at its definition site).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import cfg
from .astutil import dotted, iter_functions
from .model import Finding, LintContext
from .registry import Rule, rule
from .tiersync import KERNEL_GEN, KernelGenError, generated_kernels

#: Methods that mutate their receiver in-place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "pop", "popleft", "clear", "extend",
    "extendleft", "remove", "add", "discard", "sort", "reverse",
    "update", "insert", "setdefault", "force", "fill", "push",
    "requeue", "schedule",
})

#: Free functions that mutate their first argument in-place.
MUTATOR_FUNCTIONS = frozenset({
    "heappush", "heappop", "heapq.heappush", "heapq.heappop",
    "heap_pop",
})

#: Method names whose call is *not* a mutation even though the name
#: collides with a mutator (dict.get-style readers are absent from
#: MUTATOR_METHODS already; nothing needed today).
_READER_METHODS = frozenset({"get"})

#: Spellings of the abort bookkeeping (exempt by classification).
_ABORT_SLOTS = ("macro_guard_aborts", "macro_abort_causes")

#: Horizon implementations allowed one specific benign mutation each:
#: lazy prunes of already-dead cache/heap entries, part of the queries'
#: documented amortized-cost design.  Keyed by qualname; values are the
#: mutation spellings tolerated there.
BENIGN_MUTATIONS: Dict[str, Tuple[str, ...]] = {
    # Lazy prune of heap keys whose event bucket already drained
    # (core/pipeline.py _next_event_cycle docstring).
    "SMTPipeline._next_event_cycle": ("heappop",),
    # Lazy prune of release-heap pairs whose entry was dropped or
    # re-allocated (mem/mshr.py next_release_cycle docstring).
    "MSHRFile.next_release_cycle": ("heapq.heappop",),
    # Dropping a ready list that holds only dead entries — the list is
    # semantically empty either way (core/issue_queue.py).
    "IssueQueue.next_ready_cycle": ("ready",),
}

#: The fixed structure-owned horizon queries (module, qualname); policy
#: ``skip_horizon`` implementations are discovered by name under
#: ``policies/``.
HORIZON_FUNCTIONS: Tuple[Tuple[str, str], ...] = (
    ("core/pipeline.py", "SMTPipeline._next_event_cycle"),
    ("core/issue_queue.py", "IssueQueue.next_ready_cycle"),
    ("core/fu.py", "FUPool.next_release_cycle"),
    ("mem/mshr.py", "MSHRFile.next_release_cycle"),
    ("mem/hierarchy.py", "MemoryHierarchy.next_fill_cycle"),
)

MACRO_SOURCE = ("core/pipeline.py", "SMTPipeline._macro_dispatch")


# -------------------------------------------------------------- mutations

def _receiver_spelling(node: ast.AST) -> Optional[str]:
    """Dotted spelling of a mutation target/receiver, if it has one."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return dotted(node)


def fresh_locals(body: Sequence[ast.stmt]) -> Set[str]:
    """Names bound to containers created inside the region itself."""
    fresh: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_fresh = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                          ast.ListComp, ast.DictComp,
                                          ast.SetComp))
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Name) \
                    and value.func.id in ("list", "dict", "set",
                                          "deque", "sorted"):
                is_fresh = True
            if isinstance(value, ast.Subscript) or not is_fresh:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    fresh.add(target.id)
    return fresh


def statement_mutations(stmt: ast.stmt) -> List[Tuple[int, str]]:
    """``(line, spelling)`` of each mutation site this statement itself
    performs (compound statements contribute only their header
    expression — their bodies are separate CFG nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        exprs: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        exprs = [stmt.iter]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        return []
    else:
        exprs = [stmt]
    sites: List[Tuple[int, str]] = []
    for root in exprs:
        for node in ast.walk(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                                 ast.Delete)):
                targets = getattr(node, "targets", None)
                if targets is None:
                    targets = [node.target]
                for target in targets:
                    for leaf in _flatten_targets(target):
                        if isinstance(leaf, (ast.Attribute, ast.Subscript)):
                            spelling = _receiver_spelling(leaf)
                            sites.append((leaf.lineno,
                                          spelling or "<computed>"))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in MUTATOR_METHODS:
                    spelling = _receiver_spelling(func.value)
                    sites.append((node.lineno, spelling or "<computed>"))
                else:
                    full = dotted(func)
                    if full in MUTATOR_FUNCTIONS and node.args:
                        spelling = _receiver_spelling(node.args[0])
                        sites.append((node.lineno, full if spelling is None
                                      else f"{full}({spelling})"))
    return sites


def _flatten_targets(target: ast.AST):
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    else:
        yield target


def classify(spelling: str, fresh: Set[str]) -> str:
    root = spelling.split(".", 1)[0].split("(", 1)[0]
    if any(slot in spelling for slot in _ABORT_SLOTS) or root == "causes":
        return "abort"
    if root in ("plan", "plans") or ".macro_plans" in spelling \
            or spelling.endswith("macro_plans"):
        return "plan"
    if root in fresh:
        return "local"
    if "." not in spelling and "(" not in spelling:
        # A subscript/attribute store through a bare local name whose
        # object we cannot see being created: conservatively machine.
        return "machine"
    return "machine"


def _is_abort_site(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        spelling = dotted(stmt.value.func)
        return bool(spelling) and spelling.endswith("_macro_abort")
    if isinstance(stmt, ast.AugAssign):
        spelling = dotted(stmt.target)
        return bool(spelling) and spelling.endswith("macro_guard_aborts")
    return False


def check_macro_region(body: Sequence[ast.stmt], path: str, label: str,
                       rule_name: str,
                       line_of=None) -> List[Finding]:
    """Flag machine mutations from which an abort is still reachable."""
    graph = cfg.build(list(body))
    aborts = {nid for nid, stmt in graph.nodes.items()
              if _is_abort_site(stmt)}
    if not aborts:
        return []
    fresh = fresh_locals(body)
    reach = cfg.reaches_forward(graph, aborts)
    findings: List[Finding] = []
    seen: Set[Tuple[int, str]] = set()
    for nid in sorted(reach & set(graph.nodes)):
        stmt = graph.nodes[nid]
        for lineno, spelling in statement_mutations(stmt):
            if classify(spelling, fresh) != "machine":
                continue
            key = (lineno, spelling)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                rule=rule_name, path=path,
                line=lineno if line_of is None else line_of(lineno),
                message=(f"machine-state mutation {spelling!r} in "
                         f"{label} is reachable before a macro-guard "
                         "abort — the macro contract is guards-then-"
                         "mutations, abort = fall-through, never "
                         "rollback; move the mutation below the last "
                         "guard or guard it explicitly")))
    return findings


def check_horizon_function(node: ast.AST, path: str, qualname: str,
                           rule_name: str) -> List[Finding]:
    findings: List[Finding] = []
    benign = BENIGN_MUTATIONS.get(qualname, ())
    fresh = fresh_locals(node.body)
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.stmt):
            continue
        for lineno, spelling in statement_mutations(stmt):
            if classify(spelling, fresh) != "machine":
                continue
            if any(spelling.startswith(tolerated) for tolerated in benign):
                continue
            findings.append(Finding(
                rule=rule_name, path=path, line=lineno,
                message=(f"side effect {spelling!r} in horizon query "
                         f"{qualname!r} — skip_horizon/next_*_cycle "
                         "implementations must be pure (a skipped "
                         "cycle must be unobservable); compute the "
                         "horizon without mutating, or document a "
                         "benign lazy prune in analysis/effects.py "
                         "BENIGN_MUTATIONS")))
    return findings


def _kernel_macro_bodies(source: str) -> List[Tuple[int, List[ast.stmt]]]:
    """The macro-speculation block(s) of one generated kernel: the
    ``while plan is not None`` loops (line, body)."""
    tree = ast.parse(source)
    regions: List[Tuple[int, List[ast.stmt]]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.While) \
                and isinstance(node.test, ast.Compare) \
                and isinstance(node.test.left, ast.Name) \
                and node.test.left.id == "plan" \
                and any(isinstance(op, ast.IsNot)
                        for op in node.test.ops):
            regions.append((node.lineno, node.body))
    return regions


@rule
class GuardPurityRule(Rule):
    name = "guard-purity"
    description = ("macro-dispatch guards must precede every machine "
                   "mutation (abort = fall-through) and horizon "
                   "queries must be side-effect free — in the python "
                   "tier and in every generated kernel")

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_source_macro(ctx))
        findings.extend(self._check_horizons(ctx))
        findings.extend(self._check_kernels(ctx))
        return findings

    def _check_source_macro(self, ctx: LintContext) -> List[Finding]:
        relpath, qualname = MACRO_SOURCE
        source = ctx.file(relpath)
        if source is None:
            return []
        node = dict(iter_functions(source.tree)).get(qualname)
        if node is None:
            return [Finding(
                rule=self.name, path=relpath, line=1,
                message=(f"{qualname!r} not found — update "
                         "analysis/effects.py MACRO_SOURCE when moving "
                         "the macro-dispatch layer"))]
        return check_macro_region(node.body, relpath, f"{qualname}",
                                  self.name)

    def _check_horizons(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for relpath, qualname in HORIZON_FUNCTIONS:
            source = ctx.file(relpath)
            if source is None:
                continue
            node = dict(iter_functions(source.tree)).get(qualname)
            if node is None:
                findings.append(Finding(
                    rule=self.name, path=relpath, line=1,
                    message=(f"horizon query {qualname!r} not found in "
                             f"{relpath} — update analysis/effects.py "
                             "HORIZON_FUNCTIONS when renaming it")))
                continue
            findings.extend(check_horizon_function(
                node, relpath, qualname, self.name))
        for source in ctx.files():
            if not source.relpath.startswith("policies/"):
                continue
            for qualname, node in iter_functions(source.tree):
                if qualname.split(".")[-1] == "skip_horizon":
                    findings.extend(check_horizon_function(
                        node, source.relpath, qualname, self.name))
        return findings

    def _check_kernels(self, ctx: LintContext) -> List[Finding]:
        if ctx.file(KERNEL_GEN) is None:
            return []
        try:
            kernels = generated_kernels(ctx)
        except KernelGenError as exc:
            return [Finding(rule=self.name, path=KERNEL_GEN, line=1,
                            message=str(exc))]
        findings: List[Finding] = []
        for label, key, source in kernels:
            if not key.macro_spec:
                continue
            regions = _kernel_macro_bodies(source)
            if not regions:
                findings.append(Finding(
                    rule=self.name, path=KERNEL_GEN, line=1,
                    message=(f"generated kernel [{label}] has "
                             "macro_spec=True but no recognizable "
                             "macro block (`while plan is not None`) "
                             "— the structural anchor moved; update "
                             "analysis/effects.py")))
                continue
            for lineno, body in regions:
                findings.extend(check_macro_region(
                    body, KERNEL_GEN,
                    f"generated kernel [{label}] macro block "
                    f"(generated line {lineno})", self.name))
        return findings
