"""The lint engine: rules x tree -> :class:`~repro.analysis.model.LintReport`.

``run_lint`` is the single entry point used by the CLI, the CI gate and
the test-suite: build a :class:`LintContext` over one package root
(default: the installed ``repro`` package itself), run the selected
rules, fold in per-line suppressions, and return a deterministic,
sorted report.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from .model import Finding, LintContext, LintOptions, LintReport
from .registry import create_rules
from .suppressions import apply_suppressions

# Import the rule modules for their registration side effect.
from . import determinism as _determinism      # noqa: F401
from . import digests as _digests              # noqa: F401
from . import effects as _effects              # noqa: F401
from . import fingerprint as _fingerprint      # noqa: F401
from . import hooks as _hooks                  # noqa: F401
from . import hotpath as _hotpath              # noqa: F401
from . import tiersync as _tiersync            # noqa: F401


def default_root() -> str:
    """The installed ``repro`` package directory — the tree `repro lint`
    certifies unless ``--root`` points elsewhere."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint(root: Optional[str] = None,
             options: Optional[LintOptions] = None) -> LintReport:
    """Lint ``root`` (default: the live ``repro`` package) and report."""
    if root is None:
        root = default_root()
    if options is None:
        options = LintOptions()
    ctx = LintContext(root, options)
    rules = create_rules(options.rules)
    findings: List[Finding] = []
    rule_stats: Dict[str, Dict] = {}
    for rule_instance in rules:
        started = time.perf_counter()
        produced: List[Finding] = []
        try:
            produced = rule_instance.run(ctx)
        except SyntaxError as exc:
            relpath = os.path.relpath(exc.filename or root,
                                      ctx.root).replace(os.sep, "/")
            produced = [Finding(
                rule=rule_instance.name, path=relpath,
                line=exc.lineno or 1,
                message=(f"file does not parse ({exc.msg}) — an "
                         "unparsable tree cannot be certified"))]
        findings.extend(produced)
        rule_stats[rule_instance.name] = {
            "findings": len(produced),
            "seconds": time.perf_counter() - started,
        }
    findings, suppressed = apply_suppressions(
        findings, ctx.files(), [r.name for r in rules])
    findings.sort(key=Finding.sort_key)
    return LintReport(
        root=ctx.root,
        rules=[r.name for r in rules],
        files_scanned=len(ctx.files()),
        findings=findings,
        suppressed=suppressed,
        repinned=ctx.repinned,
        rule_stats=rule_stats,
        fragment_coverage=getattr(ctx, "fragment_coverage", None),
    )
