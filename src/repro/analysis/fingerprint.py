"""Rule ``salt-fingerprint``: the salt-bump policy, machine-checked.

``CODE_VERSION_SALT`` participates in every result-cache key and
``EXHIBIT_RENDER_SALT`` in every render-cache key (see
:mod:`repro.sim.store`).  The policy — *bump the salt whenever the
simulator could produce a different result for an existing key* — used
to live only in a docstring; a forgotten bump meant every shared store
silently served stale results.  This rule turns the policy into a gate:

* every **salt-scoped module** (the packages whose semantics decide what
  a cell produces, :data:`CODE_SCOPE_DIRS`/:data:`CODE_SCOPE_FILES`, and
  the renderer packages :data:`RENDER_SCOPE_DIRS` for the render salt)
  has a **normalized-AST sha256 fingerprint** — docstrings and comments
  do not participate, code structure does;
* the accepted baseline is pinned in ``analysis/fingerprints.json``;
* a fingerprint drift is an **error** unless the governing salt was
  bumped in the same tree (render-scope modules may alternatively bump
  an exhibit's class-level ``version`` attribute, matching the
  per-exhibit invalidation escape documented in ``sim/store.py``);
* after a salt bump, a **warning** reminds until the baseline is
  re-pinned via ``repro lint --accept-fingerprints``.

The fingerprint is deliberately conservative: it cannot tell a
semantics-preserving refactor from a behaviour change, so some drifts
will demand a bump (or an explicit re-pin) that bit-identity did not
strictly require.  That is the documented trade-off of the salt policy
itself — the cost of a false bump is one cold campaign; the cost of a
missed one is a wrong figure.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from .model import Finding, LintContext, SourceFile
from .registry import Rule, rule

#: Directories (relpath prefixes) under the code salt: their semantics
#: decide what a simulation cell produces for a given key.
CODE_SCOPE_DIRS = ("core/", "mem/", "trace/", "policies/", "branch/")

#: Individual modules under the code salt: the ISA tables, the config
#: encoding (both inputs to every cell), the cache-key derivation and
#: the run loops that drive a cell to completion.
CODE_SCOPE_FILES = ("isa.py", "config.py", "sim/store.py", "sim/fame.py",
                    "sim/runner.py", "sim/kernels.py")

#: Directories under the render salt: everything that turns cached runs
#: into exhibit documents (renderers and the derived-metric helpers).
RENDER_SCOPE_DIRS = ("experiments/", "metrics/")

#: Where the salts themselves are declared (parsed statically from the
#: linted tree, never imported).
SALT_MODULE = "sim/store.py"
SALT_NAMES = {"code": "CODE_VERSION_SALT", "render": "EXHIBIT_RENDER_SALT"}

PINS_VERSION = 1


def module_scope(relpath: str) -> Optional[str]:
    """``"code"``/``"render"`` for salt-scoped modules, else None."""
    if relpath.startswith(CODE_SCOPE_DIRS) or relpath in CODE_SCOPE_FILES:
        return "code"
    if relpath.startswith(RENDER_SCOPE_DIRS):
        return "render"
    return None


def normalized_fingerprint(text: str) -> str:
    """sha256 of the docstring-stripped AST dump of ``text``.

    Comments never reach the AST; docstrings are replaced with ``pass``
    so documentation work can never demand a salt bump.  Everything
    else — names, control flow, constants, annotations, statement
    order — participates: if the dump moved, the module's semantics
    *may* have moved, and the salt policy says "when in doubt, bump".
    """
    tree = ast.parse(text)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if body and isinstance(body[0], ast.Expr) \
                    and isinstance(body[0].value, ast.Constant) \
                    and isinstance(body[0].value.value, str):
                body[0] = ast.Pass()
    dump = ast.dump(tree, annotate_fields=False, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def exhibit_versions(tree: ast.Module) -> Dict[str, int]:
    """Class-level ``version = <const>`` assignments, per class name.

    A render-scope module may bump one exhibit's ``version`` instead of
    the global render salt (the per-exhibit invalidation escape); the
    pin records these so that escape is visible to the rule.
    """
    versions: Dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id == "version" \
                    and isinstance(stmt.value, ast.Constant):
                versions[node.name] = stmt.value.value
    return versions


def extract_salts(source: SourceFile
                  ) -> Tuple[Dict[str, str], Dict[str, int]]:
    """The salt constants (and their lines) declared in ``sim/store.py``."""
    wanted = {name: scope for scope, name in SALT_NAMES.items()}
    salts: Dict[str, str] = {}
    lines: Dict[str, int] = {}
    for node in source.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id in wanted \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            scope = wanted[node.targets[0].id]
            salts[scope] = node.value.value
            lines[scope] = node.lineno
    return salts, lines


def compute_baseline(ctx: LintContext) -> Optional[Dict]:
    """The tree's current fingerprint baseline (the shape of the pins
    file), or None when the salts cannot be located."""
    salt_source = ctx.file(SALT_MODULE)
    if salt_source is None:
        return None
    salts, _lines = extract_salts(salt_source)
    if set(salts) != {"code", "render"}:
        return None
    modules: Dict[str, Dict] = {}
    for source in ctx.files():
        scope = module_scope(source.relpath)
        if scope is None:
            continue
        record: Dict = {"scope": scope,
                        "sha256": normalized_fingerprint(source.text)}
        if scope == "render":
            record["versions"] = exhibit_versions(source.tree)
        modules[source.relpath] = record
    return {"version": PINS_VERSION, "salts": salts, "modules": modules}


def _changed_modules(pins_path: str, baseline: Dict) -> List[str]:
    """The module relpaths whose pin an ``--accept-fingerprints`` run
    actually moves: drifted fingerprints, new modules, and removed pins.
    An unreadable/absent baseline pins everything for the first time."""
    try:
        with open(pins_path, "r", encoding="utf-8") as handle:
            pins = json.load(handle)
    except (OSError, ValueError):
        return sorted(baseline["modules"])
    pinned = pins.get("modules", {})
    changed = []
    for relpath, record in baseline["modules"].items():
        old = pinned.get(relpath)
        if old is None or old.get("sha256") != record["sha256"] \
                or old.get("versions") != record.get("versions"):
            changed.append(relpath)
    changed.extend(relpath for relpath in pinned
                   if relpath not in baseline["modules"])
    return sorted(changed)


def write_pins(path: str, baseline: Dict) -> None:
    """Atomically (re-)pin the fingerprint baseline."""
    from ..sim.store import atomic_write_json
    atomic_write_json(path, baseline, indent=2, trailing_newline=True)


@rule
class FingerprintRule(Rule):
    name = "salt-fingerprint"
    description = ("semantic drift in a salt-scoped module requires a "
                   "CODE_VERSION_SALT/EXHIBIT_RENDER_SALT bump or an "
                   "explicit `repro lint --accept-fingerprints` re-pin")

    def run(self, ctx: LintContext) -> List[Finding]:
        baseline = compute_baseline(ctx)
        if baseline is None:
            return [Finding(
                rule=self.name, path=SALT_MODULE, line=1,
                message=(f"cannot locate {SALT_NAMES['code']} / "
                         f"{SALT_NAMES['render']} string constants in "
                         f"{SALT_MODULE} — the fingerprint rule needs "
                         "the declared salts to judge drift"))]
        pins_path = ctx.fingerprints_path
        if ctx.options.accept_fingerprints:
            changed = _changed_modules(pins_path, baseline)
            write_pins(pins_path, baseline)
            ctx.repinned = {"path": pins_path,
                            "modules": len(baseline["modules"]),
                            "changed": changed,
                            "salts": baseline["salts"]}
            return []
        try:
            with open(pins_path, "r", encoding="utf-8") as handle:
                pins = json.load(handle)
        except (OSError, ValueError):
            return [Finding(
                rule=self.name,
                path=os.path.relpath(pins_path, ctx.root).replace(
                    os.sep, "/"),
                line=1,
                message=("no readable fingerprint baseline — run "
                         "`repro lint --accept-fingerprints` to pin "
                         "the current tree"))]
        return self._compare(ctx, baseline, pins)

    def _compare(self, ctx: LintContext, baseline: Dict,
                 pins: Dict) -> List[Finding]:
        findings: List[Finding] = []
        pinned_salts = pins.get("salts", {})
        pinned_modules = pins.get("modules", {})
        salts = baseline["salts"]
        salt_bumped = {scope: salts[scope] != pinned_salts.get(scope)
                       for scope in salts}

        _salt_source = ctx.file(SALT_MODULE)
        _, salt_lines = extract_salts(_salt_source)
        for scope in sorted(salt_bumped):
            if salt_bumped[scope]:
                findings.append(Finding(
                    rule=self.name, path=SALT_MODULE,
                    line=salt_lines.get(scope, 1), severity="warning",
                    message=(f"{SALT_NAMES[scope]} changed "
                             f"({pinned_salts.get(scope)!r} -> "
                             f"{salts[scope]!r}) but the fingerprint "
                             "baseline still pins the old salt — run "
                             "`repro lint --accept-fingerprints` in "
                             "the same change")))

        bump_hint = {
            "code": (f"bump {SALT_NAMES['code']} in {SALT_MODULE} (stale "
                     "store entries must miss, not serve old results)"),
            "render": (f"bump {SALT_NAMES['render']} in {SALT_MODULE} "
                       "or the touched exhibit's `version` attribute"),
        }
        for relpath in sorted(set(baseline["modules"]) |
                              set(pinned_modules)):
            current = baseline["modules"].get(relpath)
            pinned = pinned_modules.get(relpath)
            if current is None:
                scope = pinned.get("scope", "code")
                if not salt_bumped.get(scope):
                    findings.append(Finding(
                        rule=self.name, path=relpath, line=1,
                        message=("salt-scoped module was removed or "
                                 "renamed without a "
                                 f"{SALT_NAMES[scope]} bump — "
                                 f"{bump_hint[scope]}, or re-pin with "
                                 "`repro lint --accept-fingerprints`")))
                continue
            scope = current["scope"]
            if pinned is None:
                if not salt_bumped.get(scope):
                    findings.append(Finding(
                        rule=self.name, path=relpath, line=1,
                        message=("new salt-scoped module is not pinned "
                                 "— run `repro lint "
                                 "--accept-fingerprints` (and "
                                 f"{bump_hint[scope]} if it changes "
                                 "what existing cells produce)")))
                continue
            if current["sha256"] == pinned.get("sha256"):
                continue
            if salt_bumped.get(scope):
                continue   # drift covered by the salt bump
            if scope == "render" and current.get("versions") \
                    != pinned.get("versions"):
                continue   # per-exhibit version bump is the escape
            findings.append(Finding(
                rule=self.name, path=relpath, line=1,
                message=("normalized-AST fingerprint drifted from the "
                         "pinned baseline with no "
                         f"{SALT_NAMES[scope]} bump — semantic changes "
                         "here can make shared caches serve stale "
                         f"results; {bump_hint[scope]}, or — for a "
                         "verified bit-identical refactor — re-pin "
                         "with `repro lint --accept-fingerprints`")))
        return findings
