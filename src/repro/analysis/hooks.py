"""Rule ``hook-conformance``: the runtime auto-veto opt-ins, made static.

Two pipeline fast paths are gated on policy opt-in declarations (see
:mod:`repro.core.hookspec`): a policy that overrides ``on_cycle`` must
(re)declare ``skip_horizon`` at or below the override, and one that
overrides either accounting hook (``on_cycle`` /
``on_l2_miss_detected``) must (re)declare ``macro_step_ok``.  At run
time a missing declaration merely disables the fast path — safe but
silently slow, and invisible until someone profiles.  This rule makes
the contract a build-time failure instead.

The verdicts come from the *same classifier* the pipeline constructor
uses (:func:`repro.core.hookspec.contract_covers`) — the rule only
swaps the runtime MRO for a definition chain derived from the policy
sources' AST, and ``tests/test_lint.py`` pins that both agree on every
registered policy.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..core import hookspec
from .model import Finding, LintContext
from .registry import Rule, rule

#: Where the policy hierarchy lives, and the class that roots it.
POLICY_DIR = "policies/"
ROOT_CLASS = "FetchPolicy"


class _ClassInfo:
    __slots__ = ("name", "relpath", "line", "bases", "defined")

    def __init__(self, name: str, relpath: str, line: int,
                 bases: List[str], defined: Set[str]) -> None:
        self.name = name
        self.relpath = relpath
        self.line = line
        self.bases = bases
        self.defined = defined


def _scan_classes(ctx: LintContext) -> Dict[str, _ClassInfo]:
    """Every class defined under ``policies/``, by (unqualified) name."""
    table: Dict[str, _ClassInfo] = {}
    for source in ctx.files():
        if not source.relpath.startswith(POLICY_DIR):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            defined = {
                stmt.name for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))}
            defined.update(
                target.id for stmt in node.body
                if isinstance(stmt, ast.Assign)
                for target in stmt.targets
                if isinstance(target, ast.Name))
            table[node.name] = _ClassInfo(node.name, source.relpath,
                                          node.lineno, bases, defined)
    return table


def _definition_chain(info: _ClassInfo, table: Dict[str, _ClassInfo]
                      ) -> Optional[List[_ClassInfo]]:
    """The class chain from ``info`` down to ``FetchPolicy``, or None
    when the hierarchy never reaches it (not a policy).

    Bases are linearized depth-first, left to right — equivalent to the
    MRO for the package's single-inheritance policy tree, and a sound
    approximation (first definition wins) if diamonds ever appear.
    """
    chain: List[_ClassInfo] = []
    seen: Set[str] = set()

    def visit(name: str) -> bool:
        if name in seen:
            return False
        seen.add(name)
        node = table.get(name)
        if node is None:
            return False
        chain.append(node)
        if name == ROOT_CLASS:
            return True
        return any(visit(base) for base in node.bases)

    return chain if visit(info.name) else None


def policy_verdicts(ctx: LintContext) -> Dict[str, Dict[str, bool]]:
    """Static conformance verdicts per policy class name.

    ``{"PolicyName": {"horizon": bool, "macro": bool}}`` — computed with
    :func:`repro.core.hookspec.contract_covers` over the AST-derived
    definition chain.  Exposed for the runtime-agreement test.
    """
    table = _scan_classes(ctx)
    verdicts: Dict[str, Dict[str, bool]] = {}
    for name in sorted(table):
        chain = _definition_chain(table[name], table)
        if chain is None:
            continue
        defined_chain = [node.defined for node in chain]
        verdicts[name] = {
            "horizon": hookspec.contract_covers(
                defined_chain, hookspec.HORIZON_CONTRACT,
                hookspec.HORIZON_TRIGGERS),
            "macro": hookspec.contract_covers(
                defined_chain, hookspec.MACRO_CONTRACT,
                hookspec.MACRO_TRIGGERS),
        }
    return verdicts


@rule
class HookConformanceRule(Rule):
    name = "hook-conformance"
    description = ("a policy overriding on_cycle/on_l2_miss_detected "
                   "must (re)declare skip_horizon/macro_step_ok at or "
                   "below the override")

    def run(self, ctx: LintContext) -> List[Finding]:
        table = _scan_classes(ctx)
        findings: List[Finding] = []
        for name in sorted(table):
            info = table[name]
            chain = _definition_chain(info, table)
            if chain is None:
                continue
            defined_chain = [node.defined for node in chain]
            if not hookspec.contract_covers(
                    defined_chain, hookspec.HORIZON_CONTRACT,
                    hookspec.HORIZON_TRIGGERS):
                findings.append(Finding(
                    rule=self.name, path=info.relpath, line=info.line,
                    message=(f"policy {name!r} overrides on_cycle "
                             "without (re)declaring skip_horizon at or "
                             "below the override — the pipeline "
                             "disables cycle skipping for it; declare "
                             "the wakeup contract (see "
                             "FetchPolicy.skip_horizon)")))
            if not hookspec.contract_covers(
                    defined_chain, hookspec.MACRO_CONTRACT,
                    hookspec.MACRO_TRIGGERS):
                findings.append(Finding(
                    rule=self.name, path=info.relpath, line=info.line,
                    message=(f"policy {name!r} overrides accounting "
                             "hooks (on_cycle/on_l2_miss_detected) "
                             "without (re)declaring macro_step_ok — "
                             "REPRO_SPECULATE=auto vetoes fused "
                             "dispatch for it; declare the macro-step "
                             "contract (see FetchPolicy.macro_step_ok)")))
        return findings
