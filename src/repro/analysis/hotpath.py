"""Rule ``hot-path-hygiene``: keep the inlined fast paths fast.

PR 3/4 bought their 2-3x on the simulator core with a specific
discipline inside the per-instruction hot functions: no
raise-and-catch control flow (``try`` bodies cost a setup per entry and
an exception per miss), no per-iteration closure allocation, and no
attribute chain resolved twice in the same loop when a local would do.
Nothing enforced that discipline — a well-meaning edit could quietly
hand back the win.  This rule pins it for the functions on the
:data:`HOT_FUNCTIONS` list (the PR 3/4 inlined fast paths; extend the
list when a new fast path lands):

* a ``try`` statement anywhere in a hot function;
* a ``lambda``/nested ``def`` inside one of its loops (a fresh function
  object per iteration);
* the same >=2-hop attribute chain (``self.mem.data_access_packed``)
  loaded more than once inside one loop — hoist it to a local before
  the loop, as every surrounding fast path already does.

The rule is a guard for *listed* functions only: code off the hot list
may trade these points for readability freely.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from .astutil import dotted, iter_functions
from .model import Finding, LintContext
from .registry import Rule, rule
from .tiersync import KERNEL_GEN, KernelGenError, generated_kernels

#: The guarded fast paths: (module relpath, dotted qualname).  These are
#: the PR 3/4 per-instruction/per-cycle workhorses — the functions the
#: bench matrix times and the macro-step layer fuses over.
HOT_FUNCTIONS: Tuple[Tuple[str, str], ...] = (
    ("core/pipeline.py", "SMTPipeline.step"),
    ("core/pipeline.py", "SMTPipeline._process_events"),
    ("core/pipeline.py", "SMTPipeline._commit_thread"),
    ("core/pipeline.py", "SMTPipeline._issue_stage"),
    ("core/pipeline.py", "SMTPipeline._dispatch_stage"),
    ("core/pipeline.py", "SMTPipeline._macro_dispatch"),
    ("core/pipeline.py", "SMTPipeline._dispatch"),
    ("core/pipeline.py", "SMTPipeline._fetch_stage"),
    ("core/pipeline.py", "SMTPipeline._fetch_thread"),
    ("core/pipeline.py", "SMTPipeline._skip_target"),
    ("core/issue_queue.py", "IssueQueue.has_ready"),
    ("core/issue_queue.py", "IssueQueue.take_ready"),
    ("core/issue_queue.py", "IssueQueue.next_ready_cycle"),
    ("mem/cache.py", "Cache.lookup"),
    ("mem/hierarchy.py", "MemoryHierarchy.data_access_packed"),
    ("mem/mshr.py", "MSHRFile.expire"),
    ("branch/perceptron.py", "PerceptronPredictor.predict"),
    ("core/thread.py", "ThreadContext.next_inst"),
    ("sim/fame.py", "fame_run"),
    # The kernel-tier entry points: the portable FAME loop and the
    # emitters whose *output* is the specialized per-cycle body (keeping
    # the generators clean keeps the generated loops clean).
    ("sim/kernels.py", "python_run_loop"),
    ("sim/kernels.py", "resolve_run_loop"),
    ("core/kernel_cache.py", "specialized_run_loop"),
)

#: Minimum attribute hops for the re-resolution check: ``obj.attr`` is
#: one lookup a local rarely beats; ``obj.attr.attr`` re-walks two
#: dictionaries per resolution.
_MIN_HOPS = 2


def _chain_hops(node: ast.Attribute) -> int:
    hops = 0
    while isinstance(node, ast.Attribute):
        hops += 1
        node = node.value
    return hops if isinstance(node, ast.Name) else 0


class _LoopChains(ast.NodeVisitor):
    """Collect loaded attribute-chain spellings per loop subtree."""

    def __init__(self) -> None:
        self.loops: List[Tuple[ast.AST, Dict[str, List[int]]]] = []
        self.closures: List[ast.AST] = []
        self._stack: List[Dict[str, List[int]]] = []

    def _enter_loop(self, node: ast.AST) -> None:
        chains: Dict[str, List[int]] = {}
        self.loops.append((node, chains))
        self._stack.append(chains)
        self.generic_visit(node)
        self._stack.pop()

    visit_For = visit_While = _enter_loop

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._stack and isinstance(node.ctx, ast.Load) \
                and _chain_hops(node) >= _MIN_HOPS:
            spelling = dotted(node)
            if spelling is not None:
                for chains in self._stack:
                    chains.setdefault(spelling, []).append(node.lineno)
                # Only the outermost chain counts; inner Attribute
                # nodes are part of this spelling, not new loads.
                return
        self.generic_visit(node)

    def _enter_closure(self, node: ast.AST) -> None:
        if self._stack:
            self.closures.append(node)
        # Still walk the body: chains inside a closure inside a loop
        # are that closure's problem, not the loop's — skip them.

    visit_Lambda = _enter_closure
    visit_FunctionDef = _enter_closure
    visit_AsyncFunctionDef = _enter_closure


def check_function(rule_name: str, relpath: str, qualname: str,
                   node: ast.AST) -> List[Finding]:
    """The three hygiene checks over one function body.

    Module-level so the same discipline can be applied to code that is
    not a file of the linted tree — the generated kernels are checked
    with ``relpath=core/kernel_gen.py`` and a ``generated kernel [...]``
    qualname (their line numbers are generated-source lines, quoted in
    the message rather than the anchor).
    """
    findings: List[Finding] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Try) and child is not node:
            findings.append(Finding(
                rule=rule_name, path=relpath, line=child.lineno,
                message=(f"try block inside hot function "
                         f"{qualname!r} — the fast paths are "
                         "exception-free by design (PR 3/4); "
                         "restructure with a membership/size test")))
    collector = _LoopChains()
    for stmt in node.body:
        collector.visit(stmt)
    for closure in collector.closures:
        label = getattr(closure, "name", "<lambda>")
        findings.append(Finding(
            rule=rule_name, path=relpath, line=closure.lineno,
            message=(f"closure {label!r} allocated inside a loop of "
                     f"hot function {qualname!r} — a fresh function "
                     "object per iteration; hoist it out of the "
                     "loop")))
    reported = set()
    for loop, chains in collector.loops:
        # "Hoist it to a local before the loop" is only actionable when
        # the chain's base is loop-invariant.  A base assigned inside
        # the loop (the iteration variable, or a per-item rebinding like
        # `file = int_file if ... else fp_file`) names a different
        # object each time — the repeated spelling is one resolution
        # per binding, not a redundant re-walk.
        rebound = {child.id for child in ast.walk(loop)
                   if isinstance(child, ast.Name)
                   and isinstance(child.ctx, (ast.Store, ast.Del))}
        for spelling in sorted(chains):
            if spelling.split(".", 1)[0] in rebound:
                continue
            lines = chains[spelling]
            if len(lines) >= 2 and spelling not in reported:
                reported.add(spelling)
                findings.append(Finding(
                    rule=rule_name, path=relpath, line=lines[0],
                    message=(f"attribute chain {spelling!r} "
                             f"resolved {len(lines)}x inside one "
                             f"loop of hot function {qualname!r} "
                             "(lines "
                             f"{', '.join(map(str, lines))}) — "
                             "hoist it to a local before the "
                             "loop")))
    return findings


@rule
class HotPathRule(Rule):
    name = "hot-path-hygiene"
    description = ("hot-listed fast paths may not contain try blocks, "
                   "per-iteration closures, or re-resolved attribute "
                   "chains in their loops")

    def run(self, ctx: LintContext) -> List[Finding]:
        hot_list = ctx.options.hot_list
        if hot_list is None:
            hot_list = HOT_FUNCTIONS
        findings: List[Finding] = []
        by_file: Dict[str, List[str]] = {}
        for relpath, qualname in hot_list:
            by_file.setdefault(relpath, []).append(qualname)
        for relpath in sorted(by_file):
            source = ctx.file(relpath)
            if source is None:
                findings.append(Finding(
                    rule=self.name, path=relpath, line=1,
                    message=(f"hot-list module {relpath!r} not found — "
                             "update analysis/hotpath.py HOT_FUNCTIONS "
                             "when moving a fast path")))
                continue
            functions = dict(iter_functions(source.tree))
            for qualname in sorted(by_file[relpath]):
                node = functions.get(qualname)
                if node is None:
                    findings.append(Finding(
                        rule=self.name, path=relpath, line=1,
                        message=(f"hot-list function {qualname!r} not "
                                 f"found in {relpath} — update "
                                 "analysis/hotpath.py HOT_FUNCTIONS "
                                 "when renaming a fast path")))
                    continue
                findings.extend(
                    check_function(self.name, source.relpath, qualname,
                                   node))
        findings.extend(self._check_kernels(ctx))
        return findings

    def _check_kernels(self, ctx: LintContext) -> List[Finding]:
        """The generated kernels are hot paths too — feed each coverage
        class's emitted source through the same three checks, so an
        emitter edit that would generate a sloppy loop fails here even
        though the sloppy code never exists as a file."""
        if ctx.file(KERNEL_GEN) is None:
            return []
        try:
            kernels = generated_kernels(ctx)
        except KernelGenError as exc:
            return [Finding(rule=self.name, path=KERNEL_GEN, line=1,
                            message=str(exc))]
        findings: List[Finding] = []
        for label, _key, source in kernels:
            tree = ast.parse(source)
            for qualname, node in iter_functions(tree):
                findings.extend(check_function(
                    self.name, KERNEL_GEN,
                    f"generated kernel [{label}] {qualname}", node))
        return findings
