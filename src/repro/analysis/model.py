"""Data model of the static-analysis subsystem.

A lint run is a pure function of a *source tree*: :class:`LintContext`
discovers the ``.py`` files under one package root (normally the
installed ``repro`` package; tests point it at fixture trees), parses
each at most once, and hands the cached ASTs to the rules.  Rules emit
:class:`Finding` records; the engine folds in suppressions and wraps
everything in a :class:`LintReport`.

Everything here is deliberately runtime-import-free with respect to the
*linted* tree: rules read source and ASTs, never import the modules they
check, so `repro lint` can judge a tree that is broken, foreign, or
mid-edit.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

#: Finding severities.  Only errors affect the exit code; warnings are
#: advisory (e.g. "salt bumped, fingerprints not yet re-pinned").
SEVERITIES = ("error", "warning")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line of the linted tree."""

    rule: str
    path: str          # package-relative posix path, e.g. "sim/store.py"
    line: int
    message: str
    severity: str = "error"

    def to_dict(self) -> Dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "severity": self.severity}

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.severity}: "
                f"[{self.rule}] {self.message}")


class SourceFile:
    """One ``.py`` file of the linted tree, parsed lazily and once."""

    def __init__(self, root: str, relpath: str) -> None:
        self.relpath = relpath               # posix separators
        self.path = os.path.join(root, *relpath.split("/"))
        self._text: Optional[str] = None
        self._tree: Optional[ast.Module] = None

    @property
    def text(self) -> str:
        if self._text is None:
            with open(self.path, "r", encoding="utf-8") as handle:
                self._text = handle.read()
        return self._text

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    @property
    def tree(self) -> ast.Module:
        """The parsed module (raises ``SyntaxError`` on an unparsable
        file — a tree that cannot parse cannot be certified either)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.path)
        return self._tree


@dataclasses.dataclass
class LintOptions:
    """Knobs of one lint run (fixture overrides live here).

    ``None`` for any field means "the rule's built-in default" — the
    defaults describe the real repo; tests linting synthetic trees pass
    their own hot list / entry points / pins path.
    """

    #: Rule names to run (None = every registered rule).
    rules: Optional[Sequence[str]] = None
    #: Re-pin ``analysis/fingerprints.json`` instead of checking it.
    accept_fingerprints: bool = False
    #: Hot-function list for hot-path-hygiene: (relpath, qualname) pairs.
    hot_list: Optional[Sequence[Tuple[str, str]]] = None
    #: Module relpaths allowed to read ``os.environ`` (the declared
    #: config entry points of the determinism rule).
    environ_entry_points: Optional[Sequence[str]] = None
    #: Path of the fingerprint pins file (default:
    #: ``<root>/analysis/fingerprints.json``).
    fingerprints_path: Optional[str] = None


class LintContext:
    """The linted tree plus per-run options, shared by every rule."""

    def __init__(self, root: str,
                 options: Optional[LintOptions] = None) -> None:
        self.root = os.path.abspath(root)
        self.options = options if options is not None else LintOptions()
        #: Set by the fingerprint rule when --accept-fingerprints re-pins.
        self.repinned: Optional[Dict] = None
        self._files: Optional[List[SourceFile]] = None
        self._by_relpath: Dict[str, SourceFile] = {}

    def files(self) -> List[SourceFile]:
        """Every ``.py`` file under the root, in sorted relpath order."""
        if self._files is None:
            found: List[str] = []
            for dirpath, dirnames, filenames in os.walk(self.root):
                dirnames[:] = sorted(
                    name for name in dirnames
                    if not name.startswith(".") and name != "__pycache__")
                rel = os.path.relpath(dirpath, self.root)
                prefix = "" if rel == "." else rel.replace(os.sep, "/") + "/"
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(prefix + filename)
            self._files = [SourceFile(self.root, relpath)
                           for relpath in found]
            self._by_relpath = {f.relpath: f for f in self._files}
        return self._files

    def file(self, relpath: str) -> Optional[SourceFile]:
        """The tree's file at ``relpath``, or None if absent."""
        self.files()
        return self._by_relpath.get(relpath)

    @property
    def fingerprints_path(self) -> str:
        if self.options.fingerprints_path:
            return self.options.fingerprints_path
        return os.path.join(self.root, "analysis", "fingerprints.json")


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    rules: List[str]
    files_scanned: int
    findings: List[Finding]
    suppressed: int = 0
    repinned: Optional[Dict] = None   # set by --accept-fingerprints
    #: Per-rule execution stats from the engine:
    #: ``{rule: {"findings": int, "seconds": float}}``.
    rule_stats: Optional[Dict[str, Dict]] = None
    #: Tier-sync fragment coverage (set when the tier-sync rule ran):
    #: ``{"fragments": int, "functions": [...], "lines_covered": int}``.
    fragment_coverage: Optional[Dict] = None

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_dict(self) -> Dict:
        """The machine-readable report (the CI gate validates this shape)."""
        document = {
            "version": 1,
            "root": self.root,
            "rules": list(self.rules),
            "files": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "summary": self._summary(),
        }
        if self.repinned is not None:
            document["repinned"] = self.repinned
        return document

    def _summary(self) -> Dict:
        summary: Dict = {"errors": self.errors, "warnings": self.warnings,
                         "suppressed": self.suppressed}
        if self.rule_stats is not None:
            summary["rules"] = {
                name: {"findings": stats["findings"],
                       "seconds": round(stats["seconds"], 6)}
                for name, stats in sorted(self.rule_stats.items())}
        if self.fragment_coverage is not None:
            summary["fragment_coverage"] = self.fragment_coverage
        return summary

    def render_text(self) -> str:
        out = [finding.render() for finding in self.findings]
        if self.repinned is not None:
            for relpath in self.repinned.get("changed") or ():
                out.append(f"re-pinned: {relpath}")
            changed = len(self.repinned.get("changed") or ())
            out.append(
                f"re-pinned {self.repinned['modules']} fingerprint(s) "
                f"({changed} changed) -> {self.repinned['path']}")
        out.append(
            f"repro lint: {self.errors} error(s), {self.warnings} "
            f"warning(s), {self.suppressed} suppressed — "
            f"{len(self.rules)} rule(s) over {self.files_scanned} "
            f"file(s)")
        return "\n".join(out)
