"""Rule registration, mirroring the policies/exhibits/executors registries.

A rule is a class with a ``name``, a one-line ``description``, and a
``run(ctx) -> List[Finding]`` method; the :func:`rule` decorator
registers it under its name.  ``repro lint`` runs every registered rule
by default; ``--rules`` (or :class:`~repro.analysis.model.LintOptions`)
selects a subset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..errors import ReproError
from .model import Finding, LintContext


class LintRuleError(ReproError):
    """An unknown rule name, or an internally inconsistent rule setup."""


class Rule:
    """Base rule: subclasses define ``name``/``description`` and ``run``."""

    name: str = ""
    description: str = ""

    def run(self, ctx: LintContext) -> List[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule under ``cls.name``."""
    if not cls.name:
        raise LintRuleError(f"rule class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise LintRuleError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def rule_names() -> Tuple[str, ...]:
    """All registered rule names, sorted."""
    return tuple(sorted(_REGISTRY))


def rule_descriptions() -> Dict[str, str]:
    return {name: _REGISTRY[name].description for name in rule_names()}


def create_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (default: all), in name order."""
    if names is None:
        names = rule_names()
    rules = []
    for name in names:
        try:
            rules.append(_REGISTRY[name]())
        except KeyError:
            raise LintRuleError(
                f"unknown lint rule {name!r} (known: "
                f"{', '.join(rule_names())})") from None
    return rules
