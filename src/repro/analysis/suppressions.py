"""Per-line lint suppressions: ``# lint: disable=<rule>[,<rule>...]``.

A finding is suppressed when the line it anchors to carries a disable
comment naming its rule.  Suppressions are deliberately per-line and
per-rule — there is no file- or block-scope form, so every accepted
hazard is visible exactly where it lives (the ``time.time()`` prune
defaults in ``sim/store.py`` are the canonical example).

Every suppression must earn its keep: one that matches no finding of a
rule that actually ran is itself reported (rule ``unused-suppression``),
so stale disables cannot outlive the hazard they excused.  Suppressions
naming rules that did not run this invocation are ignored, not counted
as unused.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set, Tuple

from .model import Finding, SourceFile

#: The rule name findings about suppressions themselves are filed under.
UNUSED_RULE = "unused-suppression"

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s-]+)")


def file_suppressions(source: SourceFile) -> Dict[int, Set[str]]:
    """Map 1-based line number -> rule names disabled on that line."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.lines, start=1):
        match = _DISABLE_RE.search(line)
        if match is None:
            continue
        names = {name.strip() for name in match.group(1).split(",")}
        table[lineno] = {name for name in names if name}
    return table


def apply_suppressions(findings: List[Finding],
                       sources: Sequence[SourceFile],
                       ran_rules: Sequence[str],
                       ) -> Tuple[List[Finding], int]:
    """Drop suppressed findings; report unused suppressions.

    Returns ``(kept_findings, suppressed_count)`` where ``kept``
    includes one ``unused-suppression`` error per disable entry that
    matched nothing (for rules in ``ran_rules`` only).
    """
    tables = {source.relpath: file_suppressions(source)
              for source in sources}
    ran = set(ran_rules)
    kept: List[Finding] = []
    used: Set[Tuple[str, int, str]] = set()
    suppressed = 0
    for finding in findings:
        rules_here = tables.get(finding.path, {}).get(finding.line, set())
        if finding.rule in rules_here:
            used.add((finding.path, finding.line, finding.rule))
            suppressed += 1
        else:
            kept.append(finding)
    for relpath in sorted(tables):
        for lineno in sorted(tables[relpath]):
            for rule_name in sorted(tables[relpath][lineno]):
                if rule_name not in ran:
                    continue
                if (relpath, lineno, rule_name) not in used:
                    kept.append(Finding(
                        rule=UNUSED_RULE, path=relpath, line=lineno,
                        message=(f"suppression for {rule_name!r} matched "
                                 f"no finding — remove it (stale "
                                 f"disables hide future hazards)")))
    return kept, suppressed
