"""Rule ``tier-sync``: the kernel tier must *transcribe* the python tier.

PR 8's specializing kernel tier (:mod:`repro.core.kernel_gen`) is a
hand-maintained transcription of the pipeline hot loop — the largest
correctness hazard in the tree: an edit to ``core/pipeline.py`` that is
not mirrored in the generator silently diverges the two tiers, and only
the golden digests catch it, at runtime, for the shapes they exercise.

This module machine-checks the transcription *statically*.  The
generator declares, next to its emitters, a ``FRAGMENTS`` table: which
source function each emitter transcribes and the exact **substitution
algebra** relating the two spellings (shape attributes folded to
``KernelKey`` literals, pre-bound helper names, inlined helper bodies,
dead branches eliminated under key constants, declared structural
rewrites for the restructured regions).  The engine

* parses the python tier (pure AST — the linted tree, never imported),
* executes the *linted* ``core/kernel_gen.py`` and captures each
  emitter's output for the declared representative ``TIERSYNC_KEY``,
* applies the declared substitutions to the source side, normalizes
  both ASTs (docstring strip, constant folding, ``AnnAssign`` decay),
* and reports any residual structural difference as an error carrying a
  unified diff of the two normalized forms, naming both ``file:line``
  sides.

Soundness of the algebra: every declared operation either (a) is a
semantics-preserving rewrite under the key constants (renames, literal
folds, dead-branch elimination), (b) splices the *current* helper body
from the linted tree (``inline`` — so helper edits flow into the
comparison), or (c) is a **concrete rewrite** whose pattern pins the
source text and whose replacement must equal the emitted kernel
(checked by the final comparison), with ``guard`` entries pinning any
helper body the concrete form absorbed.  In every case an unmirrored
edit to either tier breaks a pattern match, a guard, or the final
comparison — there is no silent path through.

Substitution operations (applied in declared order, source side unless
stated):

``("rename", old, new)``
    Rename every ``Name`` occurrence.
``("expr", old, new)`` / ``("kexpr", old, new)``
    Structural expression rewrite (kernel side for ``kexpr``); ``__X__``
    metavariables match any expression and bind by structure.
``("stmt", pattern, replacement)`` / ``("kstmt", ...)``
    Consecutive-statement rewrite; ``__REST__``/``__BODY__`` bind
    statement runs.  An empty replacement deletes (hoist elision).
``("inline", (relpath, qualname), pattern, template, opts)``
    Replace the matched call site with ``template``, whose
    ``__INLINE__`` marker becomes the helper's current body with
    ``opts["bind"]`` parameter bindings applied and each ``return``
    handled by the positional ``opts["returns"]`` spec (``"break"``,
    ``"continue"``, ``"delete"``, ``"else-rest"``, or
    ``"stmts:<code>"`` with ``__RET__`` bound to the returned value).
``("unroll", var, iterations)``
    Unroll the ``for <var> in ...`` loop; each iteration dict maps
    names to replacement expressions for that copy.
``("guard", relpath, qualname, expected)``
    Pin a helper's normalized body text — the declared license for a
    concrete rewrite that absorbed it.  A mismatch is the
    "undeclared substitution" error.

The rule also exposes :func:`generated_kernels` — one compiled
representative kernel per coverage class — consumed by
``hot-path-hygiene`` and ``guard-purity`` so *emitted* loops inherit
the fast-path and guard disciplines, not just the emitters.
"""

from __future__ import annotations

import ast
import copy
import difflib
import importlib.util
import os
import re
import textwrap
from typing import Dict, List, Optional, Sequence, Tuple

from .astutil import iter_functions
from .model import Finding, LintContext
from .registry import Rule, rule

KERNEL_GEN = "core/kernel_gen.py"

#: Cap on the unified-diff excerpt embedded in a finding message.
_DIFF_LINES = 80


class SubstitutionError(Exception):
    """A declared substitution failed to apply (tier drift signal)."""


class KernelGenError(Exception):
    """The linted kernel generator could not be executed or queried."""


# ------------------------------------------------------------------ parsing

def parse_stmts(code: str) -> List[ast.stmt]:
    return ast.parse(textwrap.dedent(code)).body


def parse_expr(code: str) -> ast.expr:
    return ast.parse(code, mode="eval").body


_METAVAR = re.compile(r"^__[A-Z][A-Z0-9_]*__$")
_WILDCARD_PREFIXES = ("__REST", "__BODY", "__STMTS")


def _is_metavar(name: str) -> bool:
    return bool(_METAVAR.match(name)) \
        and not name.startswith(_WILDCARD_PREFIXES)


def _stmt_wildcard(stmt: ast.stmt) -> Optional[str]:
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Name) \
            and stmt.value.id.startswith(_WILDCARD_PREFIXES):
        return stmt.value.id
    return None


def _dump(node) -> str:
    if isinstance(node, list):
        return "; ".join(_dump(item) for item in node)
    return ast.dump(node, annotate_fields=False, include_attributes=False)


# ----------------------------------------------------------------- matching

_SKIP_FIELDS = ("ctx", "type_comment", "type_ignores")
_STMT_LIST_FIELDS = ("body", "orelse", "finalbody")


def _match(pattern, node, bindings: Dict) -> bool:
    if isinstance(pattern, ast.Name) and _is_metavar(pattern.id):
        if not isinstance(node, ast.AST):
            return False
        seen = bindings.get(pattern.id)
        if seen is not None:
            return _dump(seen) == _dump(node)
        bindings[pattern.id] = node
        return True
    if type(pattern) is not type(node):
        return False
    if isinstance(pattern, ast.Constant):
        return pattern.value == node.value \
            and type(pattern.value) is type(node.value)
    for field in pattern._fields:
        if field in _SKIP_FIELDS:
            continue
        pv = getattr(pattern, field, None)
        nv = getattr(node, field, None)
        if isinstance(pv, list):
            if not isinstance(nv, list):
                return False
            if field in _STMT_LIST_FIELDS and \
                    (not pv or isinstance(pv[0], ast.stmt)):
                if not _match_seq(pv, nv, bindings):
                    return False
            else:
                if len(pv) != len(nv):
                    return False
                for p, n in zip(pv, nv):
                    if isinstance(p, ast.AST):
                        if not _match(p, n, bindings):
                            return False
                    elif p != n:
                        return False
        elif isinstance(pv, ast.AST):
            if not isinstance(nv, ast.AST) or not _match(pv, nv, bindings):
                return False
        elif pv != nv:
            return False
    return True


def _match_seq(patterns: Sequence[ast.stmt], stmts: Sequence[ast.stmt],
               bindings: Dict) -> bool:
    consumed = _match_seq_prefix(patterns, stmts, bindings)
    return consumed is not None and consumed == len(stmts)


def _match_seq_prefix(patterns: Sequence[ast.stmt],
                      stmts: Sequence[ast.stmt],
                      bindings: Dict) -> Optional[int]:
    """Match ``patterns`` against a prefix of ``stmts``; consumed count."""
    if not patterns:
        return 0
    head = patterns[0]
    wildcard = _stmt_wildcard(head)
    if wildcard is not None:
        prior = bindings.get(wildcard)
        if prior is not None:
            n = len(prior)
            if len(stmts) >= n and _dump(list(stmts[:n])) == _dump(prior):
                rest = _match_seq_prefix(patterns[1:], stmts[n:], bindings)
                if rest is not None:
                    return n + rest
            return None
        for n in range(len(stmts), -1, -1):     # greedy first
            trial = dict(bindings)
            trial[wildcard] = list(stmts[:n])
            rest = _match_seq_prefix(patterns[1:], stmts[n:], trial)
            if rest is not None:
                bindings.clear()
                bindings.update(trial)
                return n + rest
        return None
    if not stmts:
        return None
    trial = dict(bindings)
    if _match(head, stmts[0], trial):
        rest = _match_seq_prefix(patterns[1:], stmts[1:], trial)
        if rest is not None:
            bindings.clear()
            bindings.update(trial)
            return 1 + rest
    return None


# ------------------------------------------------------------- substitution

def _substitute(node, bindings: Dict):
    """Deep copy with metavariables replaced from ``bindings``."""
    if isinstance(node, ast.Name) and node.id in bindings:
        replacement = bindings[node.id]
        if isinstance(replacement, list):
            raise SubstitutionError(
                f"statement wildcard {node.id!r} used in expression position")
        return copy.deepcopy(replacement)
    if not isinstance(node, ast.AST):
        return node
    fields = {}
    for field, value in ast.iter_fields(node):
        if isinstance(value, list):
            if field in _STMT_LIST_FIELDS and \
                    (not value or isinstance(value[0], ast.stmt)):
                fields[field] = _substitute_stmts(value, bindings)
            else:
                fields[field] = [
                    _substitute(item, bindings)
                    if isinstance(item, ast.AST) else item
                    for item in value]
        elif isinstance(value, ast.AST):
            fields[field] = _substitute(value, bindings)
        else:
            fields[field] = value
    return type(node)(**fields)


def _substitute_stmts(stmts: Sequence[ast.stmt],
                      bindings: Dict) -> List[ast.stmt]:
    out: List[ast.stmt] = []
    for stmt in stmts:
        wildcard = _stmt_wildcard(stmt)
        if wildcard is not None and wildcard in bindings:
            out.extend(copy.deepcopy(bindings[wildcard]))
        else:
            out.append(_substitute(stmt, bindings))
    return out


def _walk_stmt_lists(stmts: List[ast.stmt], fn) -> None:
    """Call ``fn`` on every statement list reachable from ``stmts``."""
    fn(stmts)
    for stmt in stmts:
        for field in _STMT_LIST_FIELDS:
            sub = getattr(stmt, field, None)
            if sub:
                _walk_stmt_lists(sub, fn)
        for handler in getattr(stmt, "handlers", None) or []:
            _walk_stmt_lists(handler.body, fn)


def apply_rename(stmts: List[ast.stmt], old: str, new: str) -> int:
    count = 0
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == old:
                node.id = new
                count += 1
    return count


def apply_expr_rewrite(stmts: List[ast.stmt], pattern: ast.expr,
                       replacement: ast.expr) -> int:
    count = 0

    def visit(node: ast.AST) -> None:
        nonlocal count
        for field, value in ast.iter_fields(node):
            if isinstance(value, ast.AST):
                if isinstance(value, ast.expr):
                    bindings: Dict = {}
                    if _match(pattern, value, bindings):
                        new = _substitute(replacement, bindings)
                        if hasattr(value, "ctx") and hasattr(new, "ctx"):
                            new.ctx = value.ctx
                        setattr(node, field, new)
                        count += 1
                        continue
                visit(value)
            elif isinstance(value, list):
                for index, item in enumerate(value):
                    if not isinstance(item, ast.AST):
                        continue
                    if isinstance(item, ast.expr):
                        bindings = {}
                        if _match(pattern, item, bindings):
                            new = _substitute(replacement, bindings)
                            if hasattr(item, "ctx") and hasattr(new, "ctx"):
                                new.ctx = item.ctx
                            value[index] = new
                            count += 1
                            continue
                    visit(item)

    for stmt in stmts:
        visit(stmt)
    return count


def apply_stmt_rewrite(stmts: List[ast.stmt],
                       pattern: Sequence[ast.stmt],
                       replacement: Sequence[ast.stmt]) -> int:
    count = 0

    def scan(block: List[ast.stmt]) -> None:
        nonlocal count
        index = 0
        while index < len(block):
            bindings: Dict = {}
            consumed = _match_seq_prefix(pattern, block[index:], bindings)
            if consumed is not None and consumed > 0:
                new = _substitute_stmts(replacement, bindings)
                block[index:index + consumed] = new
                count += 1
                index += len(new)
            else:
                index += 1

    _walk_stmt_lists(stmts, scan)
    return count


# -------------------------------------------------------------- inline op

def _collect_returns(stmts: Sequence[ast.stmt],
                     out: List[ast.Return]) -> None:
    for stmt in stmts:
        if isinstance(stmt, ast.Return):
            out.append(stmt)
            continue
        for field in _STMT_LIST_FIELDS:
            sub = getattr(stmt, field, None)
            if sub:
                _collect_returns(sub, out)
        for handler in getattr(stmt, "handlers", None) or []:
            _collect_returns(handler.body, out)


def _return_stmts(spec: str, value: Optional[ast.expr]) -> List[ast.stmt]:
    if spec == "break":
        return [ast.Break()]
    if spec == "continue":
        return [ast.Continue()]
    if spec == "delete":
        return []
    if spec.startswith("stmts:"):
        bindings = {"__RET__": value} if value is not None else {}
        return _substitute_stmts(parse_stmts(spec[len("stmts:"):]), bindings)
    raise SubstitutionError(f"unknown return spec {spec!r}")


def _apply_return_specs(stmts: List[ast.stmt],
                        specs: Dict[int, str]) -> List[ast.stmt]:
    out: List[ast.stmt] = []
    index = 0
    while index < len(stmts):
        stmt = stmts[index]
        if isinstance(stmt, ast.Return):
            spec = specs.get(id(stmt))
            if spec is None:
                raise SubstitutionError(
                    "inline return without a declared spec")
            out.extend(_return_stmts(spec, stmt.value))
            index += 1
            continue
        tail = None
        if isinstance(stmt, ast.If) and stmt.body \
                and isinstance(stmt.body[-1], ast.Return) \
                and specs.get(id(stmt.body[-1])) == "else-rest":
            # ``return`` at the tail of an if body: drop it before the
            # recursion below sees it; the rest of this block becomes
            # the else branch (guard nesting).
            tail = stmt.body[-1]
            stmt.body = stmt.body[:-1] or [ast.Pass()]
        for field in _STMT_LIST_FIELDS:
            sub = getattr(stmt, field, None)
            if sub:
                setattr(stmt, field, _apply_return_specs(sub, specs))
        if tail is not None:
            if stmt.orelse:
                raise SubstitutionError(
                    "else-rest return spec needs an empty else branch")
            stmt.orelse = _apply_return_specs(list(stmts[index + 1:]), specs)
            out.append(stmt)
            return out
        out.append(stmt)
        index += 1
    return out


def _function_body(tree: ast.Module, qualname: str) -> List[ast.stmt]:
    for name, node in iter_functions(tree):
        if name == qualname:
            body = copy.deepcopy(node.body)
            if body and isinstance(body[0], ast.Expr) \
                    and isinstance(body[0].value, ast.Constant) \
                    and isinstance(body[0].value.value, str):
                body = body[1:]
            return body
    raise SubstitutionError(f"helper {qualname!r} not found")


def apply_inline(ctx: LintContext, stmts: List[ast.stmt],
                 target: Tuple[str, str], pattern_code: str,
                 template_code: str, opts: Dict) -> int:
    relpath, qualname = target
    source = ctx.file(relpath)
    if source is None:
        raise SubstitutionError(f"inline source module {relpath!r} not found")
    body = _function_body(source.tree, qualname)

    prelude: List[ast.stmt] = []
    for param, spec in (opts.get("bind") or {}).items():
        if isinstance(spec, tuple):
            local, expr_code = spec
            prelude.append(ast.parse(f"{local} = {expr_code}").body[0])
            if local != param:
                apply_rename(body, param, local)
        elif spec != param:
            apply_expr_rewrite(body, ast.Name(id=param, ctx=ast.Load()),
                               parse_expr(spec))
    for old, new in (opts.get("rename") or {}).items():
        apply_rename(body, old, new)

    returns: List[ast.Return] = []
    _collect_returns(body, returns)
    specs = list(opts.get("returns") or ())
    if len(returns) != len(specs):
        raise SubstitutionError(
            f"inline of {qualname!r}: helper has {len(returns)} return "
            f"statements but {len(specs)} specs are declared — the helper "
            "body changed; update the fragment declaration")
    spec_of = {id(node): spec for node, spec in zip(returns, specs)}
    body = _apply_return_specs(body, spec_of)
    body = prelude + body
    if opts.get("prelude"):
        body = parse_stmts(opts["prelude"]) + body
    if opts.get("tail"):
        body = body + parse_stmts(opts["tail"])

    pattern = parse_stmts(pattern_code)
    template = parse_stmts(template_code)
    count = 0

    def scan(block: List[ast.stmt]) -> None:
        nonlocal count
        index = 0
        while index < len(block):
            bindings: Dict = {}
            consumed = _match_seq_prefix(pattern, block[index:], bindings)
            if consumed is not None and consumed > 0:
                spliced = _substitute_stmts(
                    copy.deepcopy(body), bindings)
                marked: List[ast.stmt] = []
                for stmt in _substitute_stmts(template, bindings):
                    marked.append(stmt)
                new: List[ast.stmt] = []

                def expand(seq: List[ast.stmt]) -> List[ast.stmt]:
                    result: List[ast.stmt] = []
                    for stmt in seq:
                        if isinstance(stmt, ast.Expr) \
                                and isinstance(stmt.value, ast.Name) \
                                and stmt.value.id == "__INLINE__":
                            result.extend(copy.deepcopy(spliced))
                            continue
                        for field in _STMT_LIST_FIELDS:
                            sub = getattr(stmt, field, None)
                            if sub:
                                setattr(stmt, field, expand(sub))
                        result.append(stmt)
                    return result

                new = expand(marked)
                block[index:index + consumed] = new
                count += 1
                index += len(new)
            else:
                index += 1

    _walk_stmt_lists(stmts, scan)
    return count


def apply_unroll(stmts: List[ast.stmt], var: str,
                 iterations: Sequence[Dict[str, str]]) -> int:
    count = 0

    def scan(block: List[ast.stmt]) -> None:
        nonlocal count
        for index, stmt in enumerate(block):
            if isinstance(stmt, ast.For) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == var:
                copies: List[ast.stmt] = []
                for subs in iterations:
                    body = copy.deepcopy(stmt.body)
                    for name, expr_code in subs.items():
                        apply_expr_rewrite(
                            body, ast.Name(id=name, ctx=ast.Load()),
                            parse_expr(expr_code))
                    copies.extend(body)
                block[index:index + 1] = copies
                count += 1
                return

    _walk_stmt_lists(stmts, scan)
    return count


# ---------------------------------------------------------- normalization

class _Normalizer(ast.NodeTransformer):
    """Strip docstrings, decay AnnAssign, fold constant branches."""

    def visit_Expr(self, node: ast.Expr):
        self.generic_visit(node)
        if isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            return None
        return node

    def visit_AnnAssign(self, node: ast.AnnAssign):
        self.generic_visit(node)
        if node.value is None:
            return None
        return ast.copy_location(
            ast.Assign(targets=[node.target], value=node.value), node)

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not) \
                and isinstance(node.operand, ast.Constant) \
                and isinstance(node.operand.value, bool):
            return ast.copy_location(
                ast.Constant(value=not node.operand.value), node)
        return node

    def visit_BoolOp(self, node: ast.BoolOp):
        self.generic_visit(node)
        is_and = isinstance(node.op, ast.And)
        values: List[ast.expr] = []
        for value in node.values:
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, bool):
                if value.value is is_and:
                    continue            # neutral element: drop
                return ast.copy_location(
                    ast.Constant(value=not is_and), node)
            values.append(value)
        if not values:
            return ast.copy_location(ast.Constant(value=is_and), node)
        if len(values) == 1:
            return values[0]
        node.values = values
        return node

    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        if isinstance(node.test, ast.Constant) \
                and isinstance(node.test.value, bool):
            return node.body if node.test.value else node.orelse
        if not node.body:
            node.body = [ast.Pass()]
        return node


def normalize(stmts: Sequence[ast.stmt]) -> List[ast.stmt]:
    module = ast.Module(body=copy.deepcopy(list(stmts)), type_ignores=[])
    module = _Normalizer().visit(module)
    ast.fix_missing_locations(module)
    return module.body


def normalized_text(stmts: Sequence[ast.stmt]) -> str:
    module = ast.Module(body=list(stmts), type_ignores=[])
    ast.fix_missing_locations(module)
    return ast.unparse(module)


# --------------------------------------------------- linted generator load

def _load_kernel_gen(ctx: LintContext):
    """Execute the linted ``core/kernel_gen.py`` (memoized on the context).

    The only place lint *executes* linted code: emitter output is a pure
    function of the generator's code and the key, so running the linted
    module is exactly what makes edits to the emitters observable.
    Relative imports resolve against the installed ``repro.core``
    package (emitters only need the shared constant tables from there).
    """
    cached = getattr(ctx, "_tiersync_module", None)
    if cached is not None:
        if isinstance(cached, str):
            raise KernelGenError(cached)
        return cached
    path = os.path.join(ctx.root, KERNEL_GEN)
    try:
        spec = importlib.util.spec_from_file_location(
            "repro.core._tiersync_kernel_gen", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    except Exception as exc:                       # pragma: no cover - defensive
        message = (f"cannot execute {KERNEL_GEN} for tier-sync: "
                   f"{type(exc).__name__}: {exc}")
        ctx._tiersync_module = message
        raise KernelGenError(message) from exc
    ctx._tiersync_module = module
    return module


def emit_fragment(module, key, emitter_name: str) -> str:
    emitter = getattr(module, emitter_name, None)
    if emitter is None:
        raise KernelGenError(
            f"fragment emitter {emitter_name!r} not found in {KERNEL_GEN}")
    lines: List[str] = []
    emitter(key, lines.append)
    return textwrap.dedent("\n".join(lines) + "\n")


def generated_kernels(ctx: LintContext):
    """One ``(label, key, source)`` per kernel coverage class, memoized.

    The classes mirror the key facts that gate whole regions of emitted
    code: runahead on/off, macro speculation on/off, and the minimal
    single-thread shape — together they exercise every emitter branch
    worth keeping hygienic.
    """
    cached = getattr(ctx, "_tiersync_kernels", None)
    if cached is not None:
        return cached
    module = _load_kernel_gen(ctx)
    key = getattr(module, "TIERSYNC_KEY", None)
    if key is None:
        raise KernelGenError(
            f"{KERNEL_GEN} declares no TIERSYNC_KEY representative key")
    variants = (
        ("full", key),
        ("no-runahead", key._replace(uses_runahead=False, ra_fp_inval=False,
                                     num_threads=2)),
        ("macro-off", key._replace(macro_spec=False, has_macro_ok=False)),
        ("minimal", key._replace(num_threads=1, uses_runahead=False,
                                 ra_fp_inval=False, macro_spec=False,
                                 has_on_cycle=False, has_macro_ok=False,
                                 skip_enabled=False)),
    )
    kernels = []
    for label, variant in variants:
        source = module.emit_kernel_source(variant)
        compile(source, f"<kernel:{label}>", "exec")
        kernels.append((label, variant, source))
    ctx._tiersync_kernels = kernels
    return kernels


# ------------------------------------------------------------------- rule

def _op_summary(op: Tuple) -> str:
    kind = op[0]
    if kind in ("rename", "expr", "kexpr"):
        return f"{kind} {op[1]!r} -> {op[2]!r}"
    if kind in ("stmt", "kstmt"):
        snippet = textwrap.dedent(op[1]).strip().splitlines()
        head = snippet[0] if snippet else ""
        return f"{kind} rewrite starting {head!r}"
    if kind == "inline":
        return f"inline {op[1][1]}"
    if kind == "unroll":
        return f"unroll over {op[1]!r}"
    if kind == "guard":
        return f"guard on {op[2]}"
    return kind


def _apply_ops(ctx: LintContext, frag: Dict, src_stmts: List[ast.stmt],
               ker_stmts: List[ast.stmt]) -> None:
    for index, op in enumerate(frag.get("subs", ())):
        kind = op[0]
        count = 1
        if kind == "rename":
            count = apply_rename(src_stmts, op[1], op[2])
        elif kind == "expr":
            count = apply_expr_rewrite(src_stmts, parse_expr(op[1]),
                                       parse_expr(op[2]))
        elif kind == "kexpr":
            count = apply_expr_rewrite(ker_stmts, parse_expr(op[1]),
                                       parse_expr(op[2]))
        elif kind == "stmt":
            count = apply_stmt_rewrite(src_stmts, parse_stmts(op[1]),
                                       parse_stmts(op[2]))
        elif kind == "kstmt":
            count = apply_stmt_rewrite(ker_stmts, parse_stmts(op[1]),
                                       parse_stmts(op[2]))
        elif kind == "inline":
            count = apply_inline(ctx, src_stmts, op[1], op[2], op[3],
                                 op[4] if len(op) > 4 else {})
        elif kind == "unroll":
            count = apply_unroll(src_stmts, op[1], op[2])
        elif kind == "guard":
            _check_guard(ctx, op[1], op[2], op[3])
        else:
            raise SubstitutionError(f"unknown substitution kind {kind!r}")
        if count == 0:
            raise SubstitutionError(
                f"declared substitution #{index} ({_op_summary(op)}) no "
                "longer matches the python tier — the source changed "
                "without a mirrored emitter/declaration update")


def _check_guard(ctx: LintContext, relpath: str, qualname: str,
                 expected: str) -> None:
    source = ctx.file(relpath)
    if source is None:
        raise SubstitutionError(f"guard module {relpath!r} not found")
    body = normalize(_function_body(source.tree, qualname))
    actual = normalized_text(body)
    wanted = textwrap.dedent(expected).strip("\n")
    if actual.strip() != wanted.strip():
        diff = "\n".join(difflib.unified_diff(
            wanted.strip().splitlines(), actual.strip().splitlines(),
            lineterm="", fromfile=f"declared {qualname}",
            tofile=f"current {qualname}"))
        raise SubstitutionError(
            f"guarded helper {relpath}:{qualname} drifted from the body "
            "the fragment's concrete rewrite transcribes — an undeclared "
            "substitution; mirror the change in the emitter and update "
            f"the guard:\n{diff}")


@rule
class TierSyncRule(Rule):
    name = "tier-sync"
    description = ("every kernel_gen emitter must be a declared-"
                   "substitution transcription of its pipeline source "
                   "fragment (FRAGMENTS table)")

    def run(self, ctx: LintContext) -> List[Finding]:
        try:
            module = _load_kernel_gen(ctx)
        except KernelGenError as exc:
            return [Finding(rule=self.name, path=KERNEL_GEN, line=1,
                            message=str(exc))]
        fragments = getattr(module, "FRAGMENTS", None)
        key = getattr(module, "TIERSYNC_KEY", None)
        if not fragments or key is None:
            return [Finding(
                rule=self.name, path=KERNEL_GEN, line=1,
                message=("kernel generator declares no FRAGMENTS/"
                         "TIERSYNC_KEY table — the kernel tier is "
                         "untracked by tier-sync"))]
        gen_source = ctx.file(KERNEL_GEN)
        emitter_lines = {name: node.lineno
                         for name, node in iter_functions(gen_source.tree)}
        findings: List[Finding] = []
        lines_covered = 0
        functions_covered = set()
        for frag in fragments:
            findings.extend(self._check_fragment(
                ctx, module, key, frag, emitter_lines))
            for relpath, qualname in frag.get("covers", ()):
                covered = ctx.file(relpath)
                if covered is None:
                    continue
                for name, node in iter_functions(covered.tree):
                    if name == qualname:
                        span = (node.end_lineno or node.lineno) - node.lineno + 1
                        if (relpath, qualname) not in functions_covered:
                            lines_covered += span
                        functions_covered.add((relpath, qualname))
        ctx.fragment_coverage = {
            "fragments": len(fragments),
            "functions": sorted(f"{path}:{name}"
                                for path, name in functions_covered),
            "lines_covered": lines_covered,
        }
        return findings

    def _check_fragment(self, ctx: LintContext, module, key, frag: Dict,
                        emitter_lines: Dict[str, int]) -> List[Finding]:
        name = frag.get("name", "?")
        emitter = frag.get("emitter", "?")
        src_rel, src_qual = frag["source"]
        source = ctx.file(src_rel)
        src_line = 1
        gen_line = emitter_lines.get(emitter, 1)
        if source is None:
            return [Finding(rule=self.name, path=src_rel, line=1,
                            message=(f"tier-sync fragment {name!r}: source "
                                     f"module {src_rel!r} not found"))]
        src_node = dict(iter_functions(source.tree)).get(src_qual)
        if src_node is None:
            return [Finding(
                rule=self.name, path=src_rel, line=1,
                message=(f"tier-sync fragment {name!r}: source function "
                         f"{src_qual!r} not found in {src_rel} — update "
                         "the FRAGMENTS declaration"))]
        src_line = src_node.lineno
        both = (f"{src_rel}:{src_line} ({src_qual}) vs "
                f"{KERNEL_GEN}:{gen_line} ({emitter})")
        try:
            kernel_text = emit_fragment(module, key, emitter)
            ker_stmts = ast.parse(kernel_text).body
        except (KernelGenError, SyntaxError) as exc:
            return [Finding(rule=self.name, path=KERNEL_GEN, line=gen_line,
                            message=(f"tier-sync fragment {name!r}: cannot "
                                     f"capture emitter output: {exc}"))]
        src_stmts = _function_body(source.tree, src_qual)
        try:
            _apply_ops(ctx, frag, src_stmts, ker_stmts)
        except SubstitutionError as exc:
            return [Finding(
                rule=self.name, path=src_rel, line=src_line,
                message=(f"tier-sync fragment {name!r} ({both}): {exc}"))]
        if frag.get("wrap"):
            wrapper = parse_stmts(frag["wrap"])
            src_stmts = _substitute_stmts(wrapper, {"__BODY__": src_stmts})
        src_norm = normalize(src_stmts)
        ker_norm = normalize(ker_stmts)
        if _dump(src_norm) == _dump(ker_norm):
            return []
        src_text = normalized_text(src_norm).splitlines()
        ker_text = normalized_text(ker_norm).splitlines()
        diff = list(difflib.unified_diff(
            src_text, ker_text, lineterm="",
            fromfile=f"{src_rel}:{src_line} {src_qual} (normalized)",
            tofile=f"{KERNEL_GEN}:{gen_line} {emitter} (emitted, "
                   f"normalized)"))
        shown = "\n".join(diff[:_DIFF_LINES])
        if len(diff) > _DIFF_LINES:
            shown += f"\n... ({len(diff) - _DIFF_LINES} more diff lines)"
        return [Finding(
            rule=self.name, path=src_rel, line=src_line,
            message=(f"tier-sync fragment {name!r}: residual structural "
                     f"difference between {both} after declared "
                     f"substitutions — mirror the edit or update the "
                     f"fragment declaration:\n{shown}"))]
