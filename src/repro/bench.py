"""The ``repro bench`` harness: wall-clock timing of representative cells.

The benchmark matrix covers 1/2/4-thread workloads from the ILP/MEM/MIX
classes under the policies that matter for the paper (ICOUNT, STALL,
FLUSH, RaT).  Each cell is timed end to end through
:meth:`SMTProcessor.run` (construction and functional warmup excluded,
trace generation memoized outside the timer), once with the event-driven
cycle-skipping fast path enabled and once with it disabled, so every
report carries its own skip-attribution.

Reports are JSON documents (``BENCH_<rev>.json``) with a *calibration
constant* — the wall time of a fixed pure-Python integer loop on the
same interpreter — so two reports from different machines can be
compared through their calibration-normalized times instead of raw
seconds.  ``repro bench --check BASELINE`` does exactly that and fails
when cells regress beyond the tolerance; CI runs it against the
committed baseline (see ``benchmarks/``).

The headline cell for the cycle-skipping work is ``mem2-stall``: a
MEM-heavy 2-thread workload whose threads spend most of their time
blocked on L2 misses — exactly the stretches the fast path jumps over.
The runahead-heavy cells (``mem2-rat``, ``mem4-rat``) are the opposite
regime and the headline for the intra-thread skip + hot-loop work: a
RaT machine is busy nearly every cycle, so they gate the per-structure
horizon fast path and the per-instruction hot paths; both are in the
``--quick`` matrix so CI exercises them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional

from .config import KERNEL_ENV_VAR, baseline, kernel_mode
from .core.processor import SMTProcessor
from .trace.generator import generate_trace

#: Report schema identifier.
BENCH_SCHEMA = "repro-bench-v1"

#: Calibration constants further apart than this make normalized
#: comparisons suspect (PR 6 recorded ~124 -> 70-93 ms drift across
#: machine states of one box); --check/--compare warn past it.
CALIBRATION_DRIFT_RATIO = 1.25

#: The acceptance-criterion cell (MEM-heavy, 2 threads, memory-blocked).
HEADLINE_CELL = "mem2-stall"

#: Environment override for the revision stamped into the report name.
REV_ENV_VAR = "REPRO_BENCH_REV"

#: Calibration loop iterations (~40 ms on a 2020s x86 core).
_CALIBRATION_N = 2_000_000


@dataclasses.dataclass(frozen=True)
class BenchCell:
    """One timed configuration."""

    id: str
    klass: str
    benchmarks: tuple
    policy: str
    trace_len: int = 3000
    min_passes: int = 1
    quick: bool = False      # included in --quick runs

    @property
    def threads(self) -> int:
        return len(self.benchmarks)


#: The benchmark matrix (workload tuples from Table 2).
BENCH_CELLS = (
    # 1 thread — the runahead-origin single-thread cases.
    BenchCell("mem1-icount", "SINGLE", ("mcf",), "icount"),
    BenchCell("mem1-rat", "SINGLE", ("mcf",), "rat"),
    BenchCell("ilp1-icount", "SINGLE", ("gzip",), "icount"),
    # 2 threads — every policy on the MEM-heavy pair, plus class spread.
    BenchCell("ilp2-icount", "ILP2", ("gzip", "bzip2"), "icount",
              quick=True),
    BenchCell("mem2-icount", "MEM2", ("art", "mcf"), "icount"),
    BenchCell("mem2-stall", "MEM2", ("art", "mcf"), "stall", quick=True),
    BenchCell("mem2-flush", "MEM2", ("art", "mcf"), "flush"),
    BenchCell("mem2-rat", "MEM2", ("art", "mcf"), "rat", quick=True),
    BenchCell("mix2-stall", "MIX2", ("bzip2", "mcf"), "stall", quick=True),
    BenchCell("mix2-rat", "MIX2", ("bzip2", "mcf"), "rat"),
    # 4 threads — the heavy end of Table 2.
    BenchCell("ilp4-icount", "ILP4", ("gzip", "bzip2", "eon", "gcc"),
              "icount"),
    BenchCell("mem4-stall", "MEM4", ("applu", "art", "mcf", "twolf"),
              "stall"),
    # quick=True: the runahead-heavy cells gate the intra-thread skip
    # fast path in CI (mem2-rat above is quick already).
    BenchCell("mem4-rat", "MEM4", ("applu", "art", "mcf", "twolf"), "rat",
              quick=True),
    BenchCell("mix4-rat", "MIX4", ("ammp", "applu", "apsi", "eon"), "rat"),
)


def bench_cells(quick: bool = False) -> List[BenchCell]:
    """The matrix, or its CI-sized ``--quick`` subset."""
    if quick:
        return [cell for cell in BENCH_CELLS if cell.quick]
    return list(BENCH_CELLS)


def calibrate(repeats: int = 5) -> float:
    """Wall time of a fixed pure-Python loop (machine speed constant).

    Dividing a cell's seconds by this constant yields a dimensionless
    cost that transfers between machines far better than raw seconds,
    which is what ``--check`` compares.
    """
    return calibration_detail(repeats)["median_seconds"]


def calibration_detail(repeats: int = 5) -> Dict:
    """Median-of-K calibration with its own noise accounting.

    PR 6 recorded the best-of-3 constant drifting ~124 -> 70-93 ms
    across machine states, poisoning every normalized comparison made
    through it.  The median of K runs is robust to a slow outlier *and*
    to a single lucky turbo burst (which best-of-K is not); the spread
    ``(max - min) / median`` is embedded in the report so a reader of
    any future comparison can judge how trustworthy the constant was.
    """
    repeats = max(1, repeats)
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        total = 0
        for value in range(_CALIBRATION_N):
            total += value & 7
        samples.append(time.perf_counter() - started)
        if total < 0:  # pragma: no cover - keeps the loop un-eliminable
            raise AssertionError
    samples.sort()
    median = samples[len(samples) // 2]
    return {
        "repeats": repeats,
        "median_seconds": median,
        "spread": ((samples[-1] - samples[0]) / median
                   if median > 0 else 0.0),
        "samples": samples,
    }


def calibration_drift_warning(report: Dict, reference: Dict,
                              threshold: float = CALIBRATION_DRIFT_RATIO
                              ) -> Optional[str]:
    """A loud warning when two reports' calibration constants diverge.

    Returns None while the constants are within ``threshold`` of each
    other; past it, every normalized ratio between the two reports
    carries the drift as a hidden factor, so ``--check``/``--compare``
    print this instead of letting the numbers look authoritative.
    """
    ours = report.get("calibration_seconds")
    theirs = reference.get("calibration_seconds")
    if not ours or not theirs or ours <= 0 or theirs <= 0:
        return None
    ratio = ours / theirs if ours >= theirs else theirs / ours
    if ratio <= threshold:
        return None
    return (f"[bench] WARNING: calibration constants differ "
            f"{ratio:.2f}x (this run {ours * 1e3:.1f} ms, reference "
            f"{theirs * 1e3:.1f} ms > {threshold:.2f}x apart) — "
            f"normalized comparisons between these reports absorb "
            f"that machine-speed drift; re-baseline on this machine "
            f"state before trusting ratios near the tolerance")


def time_cell(cell: BenchCell, cycle_skip: bool = True,
              repeats: int = 3, kernel: Optional[str] = None) -> Dict:
    """Best-of-``repeats`` wall time for one cell.

    Returns the timing plus the run's simulation statistics (cycle
    counts and skip accounting from the final repeat — every repeat is
    bit-identical, so any of them is representative).  ``kernel`` pins
    the run-loop tier for this timing by setting ``REPRO_KERNEL``
    around the runs (restored afterwards) — the bench harness is
    outside the determinism scope that bars env reads, and the knob
    cannot change results, only speed.
    """
    traces = [generate_trace(name, cell.trace_len, 1)
              for name in cell.benchmarks]
    config = baseline().with_policy(cell.policy)
    best = float("inf")
    result = None
    pipeline = None
    saved_kernel = os.environ.get(KERNEL_ENV_VAR)
    if kernel is not None:
        os.environ[KERNEL_ENV_VAR] = kernel
    try:
        # Warm the per-process kernel cache before timing so the first
        # repeat does not carry the one-off source-emission + compile
        # cost of the specialized tier.
        warm = SMTProcessor(config, traces)
        warm.pipeline.cycle_skip = cycle_skip
        warm.run(min_passes=cell.min_passes)
        for _ in range(max(1, repeats)):
            processor = SMTProcessor(config, traces)
            processor.pipeline.cycle_skip = cycle_skip
            started = time.perf_counter()
            result = processor.run(min_passes=cell.min_passes)
            best = min(best, time.perf_counter() - started)
            pipeline = processor.pipeline
    finally:
        if kernel is not None:
            if saved_kernel is None:
                os.environ.pop(KERNEL_ENV_VAR, None)
            else:
                os.environ[KERNEL_ENV_VAR] = saved_kernel
    gstats = pipeline.gstats
    return {
        "seconds": best,
        "cycles": result.cycles,
        "committed": result.total_committed,
        "skipped_cycles": pipeline.skipped_cycles,
        "skip_jumps": pipeline.skip_jumps,
        "macro_steps": gstats.macro_steps,
        "macro_insts": gstats.macro_insts,
        "macro_guard_aborts": gstats.macro_guard_aborts,
        "macro_abort_causes": dict(gstats.macro_abort_causes),
    }


def current_revision() -> str:
    """Short revision for the report name (env override, else git)."""
    rev = os.environ.get(REV_ENV_VAR)
    if rev:
        return rev
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def run_bench(quick: bool = False, repeats: int = 3,
              measure_noskip: bool = True, compare_kernels: bool = False,
              progress=None) -> Dict:
    """Run the matrix and return the report document.

    ``compare_kernels`` additionally times every cell under the forced
    ``python`` run-loop tier and records ``seconds_python`` /
    ``kernel_speedup`` per cell — the specialized-vs-python evidence
    must come from one machine session, not from diffing two reports
    whose calibration constants may have drifted apart.
    """
    cells = bench_cells(quick)
    calibration_info = calibration_detail()
    calibration = calibration_info["median_seconds"]
    report: Dict = {
        "schema": BENCH_SCHEMA,
        "revision": current_revision(),
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "calibration_seconds": calibration,
        "calibration": calibration_info,
        "kernel": kernel_mode(),
        "cells": {},
    }
    for cell in cells:
        timed = time_cell(cell, cycle_skip=True, repeats=repeats)
        seconds = timed["seconds"]
        cycles = timed["cycles"]
        entry = {
            "klass": cell.klass,
            "benchmarks": list(cell.benchmarks),
            "policy": cell.policy,
            "threads": cell.threads,
            "trace_len": cell.trace_len,
            "seconds": seconds,
            "normalized": seconds / calibration,
            "cycles": cycles,
            "committed": timed["committed"],
            "skipped_cycles": timed["skipped_cycles"],
            "skip_jumps": timed["skip_jumps"],
            # Guarded ratios: a degenerate cell (0 simulated cycles, or a
            # wall time below timer resolution) must produce a report, not
            # a ZeroDivisionError.
            "skip_fraction": (timed["skipped_cycles"] / cycles
                              if cycles > 0 else 0.0),
            "sim_cycles_per_second": (cycles / seconds
                                      if seconds > 0 else 0.0),
            # Macro-step speculation accounting (zeros under
            # REPRO_SPECULATE=off or policies without the opt-in hook).
            "macro_steps": timed["macro_steps"],
            "macro_insts": timed["macro_insts"],
            "macro_guard_aborts": timed["macro_guard_aborts"],
            "macro_abort_causes": timed["macro_abort_causes"],
        }
        if measure_noskip:
            reference = time_cell(cell, cycle_skip=False, repeats=repeats)
            entry["seconds_noskip"] = reference["seconds"]
            entry["speedup_vs_noskip"] = (reference["seconds"] / seconds
                                          if seconds > 0 else 0.0)
        if compare_kernels:
            forced = time_cell(cell, cycle_skip=True, repeats=repeats,
                               kernel="python")
            entry["seconds_python"] = forced["seconds"]
            entry["kernel_speedup"] = (forced["seconds"] / seconds
                                       if seconds > 0 else 0.0)
        report["cells"][cell.id] = entry
        if progress is not None:
            note = (f"  {cell.id}: {entry['seconds']:.3f}s "
                    f"({entry['skip_fraction']:.0%} cycles skipped")
            if entry["macro_steps"]:
                note += (f", {entry['macro_insts']} insts in "
                         f"{entry['macro_steps']} macro-steps, "
                         f"{entry['macro_guard_aborts']} guard aborts")
            if measure_noskip:
                note += f", {entry['speedup_vs_noskip']:.2f}x vs no-skip"
            if compare_kernels:
                note += f", {entry['kernel_speedup']:.2f}x vs python tier"
            progress(note + ")")
    return report


def render_report(report: Dict) -> str:
    """Human-readable table of a report."""
    lines = [f"repro bench @ {report['revision']} "
             f"(python {report['python']}, "
             f"calibration {report['calibration_seconds'] * 1e3:.1f} ms, "
             f"best of {report['repeats']})",
             f"{'cell':14s} {'policy':7s} {'thr':>3s} {'seconds':>8s} "
             f"{'Mcyc/s':>7s} {'skipped':>8s} {'macro':>7s} {'aborts':>7s} "
             f"{'vs-noskip':>9s}"]
    for cell_id, entry in report["cells"].items():
        speedup = entry.get("speedup_vs_noskip")
        # Reports predating the speculation layer lack the macro columns.
        macro_insts = entry.get("macro_insts")
        aborts = entry.get("macro_guard_aborts")
        lines.append(
            f"{cell_id:14s} {entry['policy']:7s} {entry['threads']:3d} "
            f"{entry['seconds']:8.3f} "
            f"{entry['sim_cycles_per_second'] / 1e6:7.2f} "
            f"{entry['skip_fraction']:8.0%} "
            + (f"{macro_insts:7d} " if macro_insts is not None
               else f"{'-':>7s} ")
            + (f"{aborts:7d} " if aborts is not None else f"{'-':>7s} ")
            + (f"{speedup:8.2f}x" if speedup is not None else
               f"{'-':>9s}"))
    return "\n".join(lines)


def check_report(report: Dict, reference: Dict,
                 tolerance: float = 2.0) -> List[str]:
    """Compare calibration-normalized cell times against a reference.

    Returns a list of failure messages (empty when every shared cell is
    within ``tolerance`` times its reference cost).  Ratios below 1 are
    speedups; only slowdowns can fail the check.
    """
    failures = []
    for cell_id, entry in report["cells"].items():
        ref = reference.get("cells", {}).get(cell_id)
        if ref is None or "normalized" not in ref:
            continue
        if ref["normalized"] <= 0:
            # A zero/negative reference cost can only come from a corrupt
            # or hand-edited baseline; fail with a message, not a
            # ZeroDivisionError.
            failures.append(
                f"{cell_id}: reference normalized cost is "
                f"{ref['normalized']!r} (corrupt baseline?)")
            continue
        ratio = entry["normalized"] / ref["normalized"]
        if ratio > tolerance:
            failures.append(
                f"{cell_id}: {ratio:.2f}x the reference cost "
                f"(now {entry['seconds']:.3f}s normalized "
                f"{entry['normalized']:.2f}, reference normalized "
                f"{ref['normalized']:.2f}, tolerance {tolerance:.2f}x)")
    return failures


def compare_summary(report: Dict, reference: Dict) -> List[str]:
    """Per-cell speedup lines against a reference report.

    Only the intersection of the two cell sets is diffed: a reference
    recorded before a cell was added to the matrix (or a --quick report
    diffed against a full one) yields a warning line per side, never a
    lookup error.
    """
    lines = []
    ref_cells = reference.get("cells", {})
    missing_ref = [cell_id for cell_id in report["cells"]
                   if cell_id not in ref_cells]
    missing_here = [cell_id for cell_id in ref_cells
                    if cell_id not in report["cells"]]
    if missing_ref:
        lines.append(f"  [compare] {len(missing_ref)} cell(s) absent "
                     f"from the reference, skipped: "
                     f"{', '.join(sorted(missing_ref))}")
    if missing_here:
        lines.append(f"  [compare] {len(missing_here)} reference cell(s) "
                     f"not in this run, skipped: "
                     f"{', '.join(sorted(missing_here))}")
    for cell_id, entry in report["cells"].items():
        ref = ref_cells.get(cell_id)
        if ref is None or "normalized" not in ref:
            continue
        if entry["normalized"] <= 0:
            lines.append(f"  {cell_id}: current normalized cost is "
                         f"{entry['normalized']!r}; no speedup computable")
            continue
        speedup = ref["normalized"] / entry["normalized"]
        lines.append(f"  {cell_id}: {speedup:.2f}x vs reference "
                     f"({ref['normalized']:.2f} -> "
                     f"{entry['normalized']:.2f} calibrated units)")
    return lines


def write_report(report: Dict, path: Optional[str] = None) -> str:
    """Write ``BENCH_<rev>.json`` (or ``path``); returns the path.

    Uses the store's atomic temp-file + replace protocol so an
    interrupted bench run can never leave a torn report where CI's
    ``--check`` would read it.
    """
    if path is None:
        path = f"BENCH_{report['revision']}.json"
    from .sim.store import atomic_write_json
    atomic_write_json(path, report, indent=2, trailing_newline=True)
    return path


def load_report(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} report")
    return report
