"""Branch prediction substrate (Table 1 specifies a perceptron predictor)."""

from .perceptron import PerceptronPredictor
from .btb import BranchTargetBuffer

__all__ = ["PerceptronPredictor", "BranchTargetBuffer"]
