"""Branch target buffer.

Targets themselves come from the trace (the simulator always knows where
the thread goes next); the BTB models only the *timing* cost of target
misses: a taken branch whose PC is absent from the BTB redirects fetch one
cycle late.  Capacity pressure therefore penalizes benchmarks with large
branch footprints (gcc, vortex, perl) without affecting tight loops.
"""

from __future__ import annotations

from collections import OrderedDict


class BranchTargetBuffer:
    """Fully-tagged BTB with LRU replacement over a bounded entry count."""

    __slots__ = ("capacity", "_entries", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("BTB capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup_and_insert(self, pc: int) -> bool:
        """Probe the BTB for a taken branch at ``pc``; insert on miss.

        Returns True on hit (no redirect bubble).
        """
        if pc in self._entries:
            self._entries.move_to_end(pc)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[pc] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0
