"""Perceptron branch predictor (Jiménez & Lin, HPCA 2001), as in Table 1.

Each predictor entry is a weight vector; the prediction is the sign of the
bias weight plus the dot product of the weights with the thread's global
history (encoded ±1).  Training bumps weights toward the outcome whenever
the prediction was wrong or under-confident (|output| <= θ), with the
standard threshold θ = ⌊1.93·h + 14⌋.

Trace-driven simplifications (documented in DESIGN.md §5): the global
history is updated with the *actual* outcome at prediction time (so history
never needs repair on a squash), and training is applied immediately.  Both
are standard practice in trace simulators and slightly flatter — equally —
every policy under test.
"""

from __future__ import annotations

from operator import mul
from typing import List


class PerceptronPredictor:
    """Shared perceptron table with per-thread global histories.

    Weights and histories are plain Python int lists: the vectors are a
    dozen elements, where interpreter-level loops beat numpy's per-call
    dispatch overhead by an order of magnitude — this sits on the fetch
    hot path (one call per fetched branch).  The bias lives in its own
    table so the dot product runs entirely through ``sum(map(mul, ...))``
    (a C-level loop) with no per-call slicing.
    """

    __slots__ = ("entries", "history_bits", "theta", "_weight_clip",
                 "_bias", "_weights", "_histories", "predictions",
                 "mispredictions")

    def __init__(self, entries: int, history_bits: int,
                 num_threads: int) -> None:
        if entries < 1 or history_bits < 1 or num_threads < 1:
            raise ValueError("entries, history_bits, num_threads must be >= 1")
        self.entries = entries
        self.history_bits = history_bits
        self.theta = int(1.93 * history_bits + 14)
        self._weight_clip = self.theta + 1
        #: Per-entry bias weight; ``_weights[i]`` pair with history bits.
        self._bias: List[int] = [0] * entries
        self._weights: List[List[int]] = [
            [0] * history_bits for _ in range(entries)]
        self._histories: List[List[int]] = [
            [-1] * history_bits for _ in range(num_threads)]
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, thread_id: int, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc`` and train on the actual outcome.

        Returns True if the prediction matched ``taken``.
        """
        index = (pc >> 2) % self.entries
        weights = self._weights[index]
        history = self._histories[thread_id]
        output = self._bias[index] + sum(map(mul, weights, history))
        predicted_taken = output >= 0
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1

        if not correct or (-output if output < 0 else output) <= self.theta:
            step = 1 if taken else -1
            clip = self._weight_clip
            self._bias[index] = self._clip(self._bias[index] + step)
            weights[:] = [
                clip if updated > clip
                else (-clip if updated < -clip else updated)
                for updated in (map(int.__add__, weights, history) if taken
                                else map(int.__sub__, weights, history))]

        # Shift the actual outcome into this thread's global history.
        del history[0]
        history.append(1 if taken else -1)
        return correct

    def _clip(self, value: int) -> int:
        return max(-self._weight_clip, min(self._weight_clip, value))

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_history(self, thread_id: int) -> None:
        """Clear one thread's global history (context switch)."""
        self._histories[thread_id][:] = [-1] * self.history_bits
