"""Command-line interface: regenerate any table or figure.

Examples::

    python -m repro table1
    python -m repro figure1 --workloads-per-class 3 --trace-len 2000
    python -m repro all --jobs 0 --cache-dir ~/.cache/repro-smt
    python -m repro all --format json --output results/
    repro-smt figure6 --classes MEM2 MEM4 --format csv
    repro-smt plan all --workloads-per-class 1 > manifest.json
    repro-smt all --shard 1/3 --cache-dir /shared/cache   # machine 1
    repro-smt all --shard 2/3 --cache-dir /shared/cache   # machine 2
    repro-smt all --shard 3/3 --cache-dir /shared/cache   # machine 3
    repro-smt all --cache-dir /shared/cache               # assemble union
    repro-smt bench --quick --check benchmarks/BENCH_baseline.json
    repro-smt cache stats --cache-dir ~/.cache/repro-smt
    repro-smt cache prune --cache-dir ~/.cache/repro-smt --stale-salts
    repro-smt lint --format json
    repro-smt lint --accept-fingerprints

Besides the exhibit names, four maintenance subcommands exist:
``plan`` emits a campaign's JSON manifest without running anything (see
:mod:`repro.sim.manifest`), ``bench`` times representative simulation
cells and emits a ``BENCH_<rev>.json`` report (see :mod:`repro.bench`),
``cache`` inspects or prunes a ``--cache-dir`` result store (see
:mod:`repro.sim.store`), and ``lint`` statically checks the package's
reproducibility invariants (see :mod:`repro.analysis`).

However many exhibits are requested, their planned simulation cells are
unioned into **one** deduplicated batch (costliest cells first), so
``repro all --jobs N`` fills the worker pool exactly once and shared
cells are simulated a single time.  ``--jobs N`` fans cells out over N
workers of the chosen ``--backend`` (``process`` pools by default;
``thread`` avoids pickling — see the GIL caveat in
:mod:`repro.sim.executors`); ``--cache-dir PATH`` persists every result
on disk so a repeated (or extended) campaign only simulates what it has
never measured before, and additionally caches each exhibit's rendered
output keyed by its planned cell set, so untouched figures skip even
assembly.  ``--shard K/N`` turns the invocation into the execute-only
stage of a distributed campaign: it simulates only the deterministic
K-of-N slice of the batch into the shared store and renders nothing —
run every shard (any machines, any order), then assemble with a final
unsharded invocation.  Results are bit-identical whichever backend,
shard split or cache served them.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import List, Optional

from .config import KERNEL_ENV_VAR, SPECULATE_ENV_VAR, baseline
from .errors import ManifestError
from .experiments import Campaign, ExhibitContext, exhibit_names
from .experiments.common import RENDER_FORMATS
from .experiments.report import manifest_summary
from .sim.engine import (ProcessPoolBackend, SerialBackend, SimEngine,
                         set_engine)
from .sim.executors import ShardSpec, ShardedExecutor, get_executor
from .sim.runner import RunSpec, default_spec
from .sim.store import (EXHIBIT_DIR, DiskStore, ExhibitRenderCache,
                        MemoryStore)
from .trace.workloads import WORKLOAD_CLASSES

#: File extension per --format value.
FORMAT_EXTENSIONS = {"text": "txt", "json": "json", "csv": "csv"}

#: Executors selectable via --backend ('sharded' wraps these, via --shard).
BACKEND_CHOICES = ("serial", "process", "thread")


def _jobs(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError("--jobs must be >= 0")
    return jobs


def _shard(value: str) -> ShardSpec:
    try:
        return ShardSpec.parse(value)
    except ManifestError as error:
        raise argparse.ArgumentTypeError(str(error))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt",
        description="Reproduce 'Runahead Threads to Improve SMT "
                    "Performance' (HPCA 2008): regenerate its tables "
                    "and figures on the bundled simulator.",
        epilog="Maintenance subcommands: 'repro-smt plan --help' "
               "(emit a campaign's JSON manifest), 'repro-smt bench "
               "--help' (wall-clock benchmark harness), 'repro-smt "
               "cache --help' (result-store stats / pruning), "
               "'repro-smt lint --help' (static reproducibility "
               "checks).")
    parser.add_argument("exhibit",
                        choices=sorted(exhibit_names()) + ["all"],
                        help="which exhibit to regenerate ('all' plans "
                             "every exhibit and simulates their union "
                             "as one deduplicated batch)")
    parser.add_argument("--trace-len", type=int, default=None,
                        help="instructions per thread trace "
                             "(default: RunSpec default)")
    parser.add_argument("--seed", type=int, default=None,
                        help="trace generation seed")
    parser.add_argument("--workloads-per-class", type=int, default=None,
                        help="cap workloads per class for a quick look "
                             "(default: full Table 2)")
    parser.add_argument("--classes", nargs="+", default=None,
                        choices=list(WORKLOAD_CLASSES),
                        help="restrict to specific workload classes")
    parser.add_argument("--jobs", "-j", type=_jobs, default=1,
                        help="workers for independent simulation cells "
                             "(default: 1 = serial; 0 = auto-detect, "
                             "one per CPU core; results are identical "
                             "either way)")
    parser.add_argument("--backend", choices=BACKEND_CHOICES,
                        default=None,
                        help="executor running the cells: 'process' "
                             "(worker processes, the --jobs default), "
                             "'thread' (no pickling/spawn; see the GIL "
                             "caveat in repro.sim.executors), or "
                             "'serial' (default: serial when --jobs is "
                             "1, process otherwise)")
    parser.add_argument("--shard", type=_shard, default=None,
                        metavar="K/N",
                        help="execute-only: simulate the deterministic "
                             "K-of-N slice of the campaign into the "
                             "shared --cache-dir (required) and render "
                             "nothing; run all N shards, then assemble "
                             "with a final unsharded invocation")
    parser.add_argument("--cache-dir", default=None,
                        help="directory persisting simulation results "
                             "and rendered exhibits across invocations "
                             "(content-addressed; safe to share between "
                             "concurrent runs, including --shard "
                             "executors)")
    parser.add_argument("--format", choices=RENDER_FORMATS,
                        default="text", dest="format",
                        help="output rendering: 'text' (the paper's "
                             "ASCII tables), machine-readable 'json', "
                             "or 'csv' (default: text)")
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="also write each exhibit to "
                             "DIR/<exhibit>.<ext> in the chosen format")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress per-cell progress output")
    _add_speculate_argument(parser)
    _add_kernel_argument(parser)
    return parser


def _add_speculate_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--speculate", choices=("on", "off", "auto"),
                        default=None,
                        help="macro-step speculation over the dispatch "
                             "hot loop: 'auto' (default; on, with a "
                             "conservative veto for policies without "
                             "the macro_step_ok opt-in), 'on' (trust "
                             "the bit-identity contract even for opaque "
                             "policies), 'off' (per-stage path only). "
                             "Sets REPRO_SPECULATE for this invocation, "
                             "workers included; results are "
                             "bit-identical in every mode")


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", choices=("auto", "python", "specialized"),
                        default=None,
                        help="run-loop tier driving each cell: 'auto' "
                             "(default; the config-folded specialized "
                             "kernel where the machine shape is covered, "
                             "the portable loop elsewhere), 'python' "
                             "(portable loop always), 'specialized' "
                             "(request the compiled kernel; uncovered "
                             "shapes still fall back, never error). "
                             "Sets REPRO_KERNEL for this invocation, "
                             "workers included; results are "
                             "bit-identical in every tier")


def _apply_speculate(args: argparse.Namespace) -> None:
    """Propagate --speculate / --kernel through the environment knobs.

    Both switches are env vars rather than SMTConfig fields (see
    :func:`repro.config.speculation_mode` /
    :func:`repro.config.kernel_mode`), so exporting them here covers
    the in-process engine and every spawned --jobs worker alike.
    """
    if getattr(args, "speculate", None):
        os.environ[SPECULATE_ENV_VAR] = args.speculate
    if getattr(args, "kernel", None):
        os.environ[KERNEL_ENV_VAR] = args.kernel


def make_spec(args: argparse.Namespace) -> RunSpec:
    spec = default_spec()
    overrides = {}
    if args.trace_len is not None:
        overrides["trace_len"] = args.trace_len
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec


def make_engine(args: argparse.Namespace) -> SimEngine:
    """Build the engine the whole invocation runs on.

    The backend comes from the executor registry: an explicit
    ``--backend``, else ``serial``/``process`` picked from ``--jobs``.
    A ``--shard K/N`` wraps the chosen executor in a
    :class:`~repro.sim.executors.ShardedExecutor`.
    """
    name = args.backend
    if name is None:
        name = "serial" if args.jobs == 1 else "process"
    backend = get_executor(name, args.jobs if args.jobs > 0 else None)
    shard = getattr(args, "shard", None)
    if shard is not None:
        backend = ShardedExecutor(shard, backend)
    if args.cache_dir:
        store = DiskStore(args.cache_dir)
    else:
        store = MemoryStore()
    return SimEngine(backend=backend, store=store)


def make_render_cache(args: argparse.Namespace
                      ) -> Optional[ExhibitRenderCache]:
    """The exhibit-render cache living inside ``--cache-dir``, if any."""
    if not args.cache_dir:
        return None
    return ExhibitRenderCache(os.path.join(args.cache_dir, EXHIBIT_DIR))


class ProgressPrinter:
    """Per-cell campaign progress on stderr.

    This is the single sink of the engine's progress callback — every
    backend (serial, process, thread, sharded) reports through
    ``SimEngine``'s ``(done, total, cached)`` callback, so the rendering
    is uniform however the cells execute.  The line always carries the
    campaign-level totals, and a sharded invocation adds its slice:
    ``[campaign] cell 12/32 (shard 2/4 of 96-cell campaign, ...)``.

    On a terminal the line updates in place; otherwise milestones are
    printed one per line (start, every ~10%, and completion), so CI logs
    stay readable.
    """

    def __init__(self, name: str, stream=None,
                 shard: Optional[ShardSpec] = None,
                 campaign_cells: Optional[int] = None) -> None:
        self.name = name
        self.stream = stream if stream is not None else sys.stderr
        self.shard = shard
        self.campaign_cells = campaign_cells
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_milestone = -1
        self._last_width = 0
        self._wrote = False

    def __call__(self, done: int, total: int, cached: int) -> None:
        running = total - done
        context = ""
        if self.shard is not None:
            campaign = (f" of {self.campaign_cells}-cell campaign"
                        if self.campaign_cells is not None else "")
            context = f"shard {self.shard}{campaign}, "
        line = (f"[{self.name}] cell {done}/{total} "
                f"({context}{cached} cached, {done - cached} simulated, "
                f"{running} running)")
        if self._tty:
            # Pad to the previous line's width so shrinking fields
            # (e.g. "100 running" -> "99 running") leave no residue.
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            self.stream.write("\r" + padded)
            self.stream.flush()
            self._wrote = True
        else:
            milestone = (10 * done) // total if total else 10
            if milestone != self._last_milestone or done == total:
                self._last_milestone = milestone
                print(line, file=self.stream, flush=True)

    def finish(self) -> None:
        if self._tty and self._wrote:
            self.stream.write("\n")
            self.stream.flush()


def _write_output(directory: str, name: str, fmt: str, text: str,
                  status) -> None:
    path = os.path.join(directory, f"{name}.{FORMAT_EXTENSIONS[fmt]}")
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print(f"[wrote {path}]", file=status)


def build_plan_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt plan",
        description="Emit a campaign's JSON manifest — the serializable "
                    "plan of every content-addressed simulation cell "
                    "the requested exhibits derive from — without "
                    "executing anything.  The manifest round-trips "
                    "through repro.sim.manifest.CampaignManifest and "
                    "is what --shard K/N invocations split.")
    parser.add_argument("exhibit",
                        choices=sorted(exhibit_names()) + ["all"],
                        help="which exhibit(s) to plan")
    parser.add_argument("--trace-len", type=int, default=None,
                        help="instructions per thread trace")
    parser.add_argument("--seed", type=int, default=None,
                        help="trace generation seed")
    parser.add_argument("--workloads-per-class", type=int, default=None,
                        help="cap workloads per class")
    parser.add_argument("--classes", nargs="+", default=None,
                        choices=list(WORKLOAD_CLASSES),
                        help="restrict to specific workload classes")
    parser.add_argument("--shard", type=_shard, default=None,
                        metavar="K/N",
                        help="emit only the deterministic K-of-N slice "
                             "of the manifest")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the manifest to PATH instead of "
                             "stdout")
    return parser


def plan_main(argv: List[str]) -> int:
    args = build_plan_parser().parse_args(argv)
    names = (sorted(exhibit_names()) if args.exhibit == "all"
             else [args.exhibit])
    ctx = ExhibitContext.make(baseline(), make_spec(args), args.classes,
                              args.workloads_per_class)
    manifest = Campaign(names, ctx=ctx, engine=SimEngine()).plan()
    if args.shard is not None:
        manifest = manifest.filter_shard(args.shard)
    print(manifest_summary(manifest), file=sys.stderr)
    text = manifest.to_json()
    if args.output:
        directory = os.path.dirname(args.output)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"[wrote {args.output}]", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt bench",
        description="Time representative simulation cells (1/2/4-thread "
                    "ILP/MEM/MIX workloads under icount/stall/flush/rat) "
                    "and emit a BENCH_<rev>.json report.")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized subset of the cell matrix")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell; best is kept "
                             "(default: 3)")
    parser.add_argument("--no-noskip", action="store_true",
                        help="skip the cycle-skip-disabled reference "
                             "timings (halves the runtime)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="report path (default: BENCH_<rev>.json)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare calibration-normalized times "
                             "against a baseline report; non-zero exit "
                             "on regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="max allowed cost ratio vs the baseline "
                             "(default: 2.0)")
    parser.add_argument("--compare", default=None, metavar="REPORT",
                        help="also print per-cell speedups against "
                             "another report (informational)")
    parser.add_argument("--compare-kernels", action="store_true",
                        help="additionally time every cell under the "
                             "forced 'python' run-loop tier and record "
                             "seconds_python/kernel_speedup per cell "
                             "(same-session evidence for the "
                             "specialized tier)")
    _add_speculate_argument(parser)
    _add_kernel_argument(parser)
    return parser


def bench_main(argv: List[str]) -> int:
    from . import bench
    args = build_bench_parser().parse_args(argv)
    _apply_speculate(args)
    print(f"[bench] timing {len(bench.bench_cells(args.quick))} cells "
          f"(repeats={args.repeats}"
          f"{', quick' if args.quick else ''})", file=sys.stderr)
    report = bench.run_bench(
        quick=args.quick, repeats=args.repeats,
        measure_noskip=not args.no_noskip,
        compare_kernels=args.compare_kernels,
        progress=lambda line: print(line, file=sys.stderr))
    path = bench.write_report(report, args.output)
    print(bench.render_report(report))
    print(f"[wrote {path}]", file=sys.stderr)

    for label, reference_path in (("compare", args.compare),
                                  ("check", args.check)):
        if not reference_path:
            continue
        try:
            reference = bench.load_report(reference_path)
        except (OSError, ValueError) as error:
            print(f"repro-smt bench: bad --{label} report: {error}",
                  file=sys.stderr)
            return 2
        drift = bench.calibration_drift_warning(report, reference)
        if drift:
            print(drift, file=sys.stderr)
        for line in bench.compare_summary(report, reference):
            print(line)
        if label == "check":
            failures = bench.check_report(report, reference,
                                          args.tolerance)
            if failures:
                for failure in failures:
                    print(f"REGRESSION {failure}", file=sys.stderr)
                return 1
            print(f"[check ok: no cell exceeds {args.tolerance:.2f}x "
                  f"the baseline cost]")
    return 0


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt cache",
        description="Inspect or prune a --cache-dir result store.")
    parser.add_argument("action", choices=("stats", "prune"),
                        help="'stats' summarizes entries per code-version "
                             "salt; 'prune' deletes stale entries")
    parser.add_argument("--cache-dir", required=True,
                        help="the store directory to operate on")
    parser.add_argument("--stale-salts", action="store_true",
                        help="prune: drop entries from other code-version "
                             "salts (incl. corrupt payloads)")
    parser.add_argument("--older-than-days", type=float, default=None,
                        metavar="DAYS",
                        help="prune: drop entries older than DAYS")
    parser.add_argument("--dry-run", action="store_true",
                        help="prune: report what would be removed only")
    return parser


def cache_main(argv: List[str]) -> int:
    args = build_cache_parser().parse_args(argv)
    if not os.path.isdir(args.cache_dir):
        print(f"repro-smt cache: no such cache directory: "
              f"{args.cache_dir}", file=sys.stderr)
        return 2
    store = DiskStore(args.cache_dir)
    # The exhibit-render pool lives beside the result fan-out; operate
    # on it only when it exists so stats/prune never create it.
    exhibit_root = os.path.join(args.cache_dir, EXHIBIT_DIR)
    render_cache = (ExhibitRenderCache(exhibit_root)
                    if os.path.isdir(exhibit_root) else None)
    if args.action == "stats":
        for label, pool in (("cache", store), ("render cache",
                                               render_cache)):
            if pool is None:
                continue
            stats = pool.stats()
            print(f"{label} {stats['root']}: {stats['entries']} entries, "
                  f"{stats['bytes'] / 1024:.1f} KiB "
                  f"(current salt: {stats['current_salt']})")
            for salt in sorted(stats["by_salt"]):
                bucket = stats["by_salt"][salt]
                marker = (" (current)"
                          if salt == stats["current_salt"] else "")
                print(f"  {salt}{marker}: {bucket['entries']} entries, "
                      f"{bucket['bytes'] / 1024:.1f} KiB")
        if render_cache is None:
            print("render cache: none")
        return 0
    if not args.stale_salts and args.older_than_days is None:
        print("repro-smt cache prune: nothing to do — pass "
              "--stale-salts and/or --older-than-days DAYS",
              file=sys.stderr)
        return 2
    verb = "would remove" if args.dry_run else "removed"
    outcome = store.prune(stale_salts=args.stale_salts,
                          older_than_days=args.older_than_days,
                          dry_run=args.dry_run)
    print(f"prune: {verb} {outcome.removed} of {outcome.examined} "
          f"entries ({outcome.bytes_freed / 1024:.1f} KiB), "
          f"kept {outcome.kept}")
    if render_cache is not None:
        rendered = render_cache.prune(
            stale_salts=args.stale_salts,
            older_than_days=args.older_than_days,
            dry_run=args.dry_run)
        print(f"prune (render cache): {verb} {rendered.removed} of "
              f"{rendered.examined} entries "
              f"({rendered.bytes_freed / 1024:.1f} KiB), "
              f"kept {rendered.kept}")
    return 0


def lint_main(argv: List[str]) -> int:
    from .analysis.cli import lint_main as run
    return run(argv)


#: Maintenance subcommands dispatched ahead of the exhibit interface.
SUBCOMMANDS = {"plan": plan_main, "bench": bench_main,
               "cache": cache_main, "lint": lint_main}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    args = build_parser().parse_args(argv)
    _apply_speculate(args)
    if args.shard is not None and not args.cache_dir:
        print("repro-smt: error: --shard needs a shared --cache-dir — "
              "a shard's results are only useful in a store the "
              "assembling invocation can read", file=sys.stderr)
        return 2
    spec = make_spec(args)
    config = baseline()
    try:
        engine = make_engine(args)
        cache = make_render_cache(args)
    except OSError as error:
        print(f"repro-smt: error: unusable --cache-dir "
              f"{args.cache_dir!r}: {error}", file=sys.stderr)
        return 2
    previous = set_engine(engine)
    names = (sorted(exhibit_names()) if args.exhibit == "all"
             else [args.exhibit])
    single = len(names) == 1
    fmt = args.format
    # In machine-readable formats stdout carries *only* the payload, so
    # stats and bookkeeping move to stderr.
    status = sys.stdout if fmt == "text" else sys.stderr
    try:
        ctx = ExhibitContext.make(config, spec, args.classes,
                                  args.workloads_per_class)
        campaign = Campaign(names, ctx=ctx, engine=engine)
        label = names[0] if single else "campaign"
        manifest = campaign.plan()

        if args.shard is not None:
            # Execute-only: simulate this shard's slice into the shared
            # store; a later unsharded invocation assembles the union.
            progress = None
            if not args.no_progress:
                progress = ProgressPrinter(
                    label, shard=args.shard,
                    campaign_cells=len(manifest))
            started = time.time()
            report = engine.execute_cells(manifest.cells(),
                                          progress=progress)
            if progress is not None:
                progress.finish()
            print(f"[{label} shard {args.shard}: executed "
                  f"{report.owned} of {report.planned} cells | "
                  f"simulated={report.simulated}, "
                  f"cache_hits={report.cached}, "
                  f"other_shards={report.skipped} | "
                  f"{time.time() - started:.1f}s]", file=status)
            return 0

        progress = None
        if not args.no_progress:
            progress = ProgressPrinter(label)
        started = time.time()
        before = engine.counters.snapshot()
        results, regen = campaign.regenerate(cache=cache,
                                             progress=progress)
        if progress is not None:
            progress.finish()
        batch_delta = engine.counters.since(before)
        elapsed = time.time() - started

        # Write --output files before emitting to stdout: a downstream
        # consumer closing the pipe early must not cost the files.
        if args.output:
            for name in names:
                _write_output(args.output, name, fmt,
                              results[name].render(fmt), status)

        if not single:
            print(f"[campaign: {len(names)} exhibits -> {len(manifest)} "
                  f"unique cells planned, {regen.cells_executed} in the "
                  f"batch | simulated={batch_delta.simulated}, "
                  f"cache_hits={batch_delta.store_hits}, "
                  f"reused={batch_delta.memo_hits} | "
                  f"{len(regen.assembled)} assembled, "
                  f"{len(regen.from_cache)} from render cache | "
                  f"{elapsed:.1f}s]", file=status)

        if fmt == "json" and not single:
            document = {name: results[name].to_dict() for name in names}
            print(json.dumps(document, indent=2, sort_keys=True))
        elif fmt == "csv" and not single:
            print("\n".join(results[name].render("csv")
                            for name in names), end="")
        else:
            for name in names:
                result = results[name]
                text = result.render(fmt)
                print(text, end="" if text.endswith("\n") else "\n")
                if single:
                    source = (" from render cache"
                              if name in regen.from_cache else "")
                    print(f"[{name} regenerated in {elapsed:.1f}s"
                          f"{source} | "
                          f"simulated={batch_delta.simulated}, "
                          f"cache_hits={batch_delta.store_hits}, "
                          f"reused={batch_delta.memo_hits}]", file=status)
                elif name in regen.from_cache:
                    print(f"[{name} served from the render cache]",
                          file=status)
                else:
                    print(f"[{name} assembled from the shared batch]",
                          file=status)
                if fmt == "text":
                    print()

    except BrokenPipeError:
        # Downstream consumer (head, jq -e, ...) closed stdout early;
        # that is its prerogative, not an error worth a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        set_engine(previous)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
