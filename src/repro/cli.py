"""Command-line interface: regenerate any table or figure.

Examples::

    python -m repro table1
    python -m repro figure1 --workloads-per-class 3 --trace-len 2000
    python -m repro all --jobs 4 --cache-dir ~/.cache/repro-smt
    repro-smt figure6 --classes MEM2 MEM4

``--jobs N`` fans independent simulation cells out over N worker
processes; ``--cache-dir PATH`` persists every result on disk so a
repeated (or extended) campaign only simulates what it has never
measured before.  Results are bit-identical whichever backend or cache
served them.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List, Optional

from .config import baseline
from .experiments import EXHIBITS
from .sim.engine import (ProcessPoolBackend, SerialBackend, SimEngine,
                         set_engine)
from .sim.runner import RunSpec, default_spec
from .sim.store import DiskStore, MemoryStore
from .trace.workloads import WORKLOAD_CLASSES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt",
        description="Reproduce 'Runahead Threads to Improve SMT "
                    "Performance' (HPCA 2008): regenerate its tables "
                    "and figures on the bundled simulator.")
    parser.add_argument("exhibit",
                        choices=sorted(EXHIBITS) + ["all"],
                        help="which exhibit to regenerate")
    parser.add_argument("--trace-len", type=int, default=None,
                        help="instructions per thread trace "
                             "(default: RunSpec default)")
    parser.add_argument("--seed", type=int, default=None,
                        help="trace generation seed")
    parser.add_argument("--workloads-per-class", type=int, default=None,
                        help="cap workloads per class for a quick look "
                             "(default: full Table 2)")
    parser.add_argument("--classes", nargs="+", default=None,
                        choices=list(WORKLOAD_CLASSES),
                        help="restrict to specific workload classes")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for independent "
                             "simulation cells (default: 1 = serial; "
                             "results are identical either way)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory persisting simulation results "
                             "across invocations (content-addressed; "
                             "safe to share between concurrent runs)")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress per-cell progress output")
    return parser


def make_spec(args: argparse.Namespace) -> RunSpec:
    spec = default_spec()
    overrides = {}
    if args.trace_len is not None:
        overrides["trace_len"] = args.trace_len
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec


def make_engine(args: argparse.Namespace) -> SimEngine:
    """Build the engine the whole invocation runs on."""
    if args.jobs and args.jobs > 1:
        backend = ProcessPoolBackend(args.jobs)
    else:
        backend = SerialBackend()
    if args.cache_dir:
        store = DiskStore(args.cache_dir)
    else:
        store = MemoryStore()
    return SimEngine(backend=backend, store=store)


class ProgressPrinter:
    """Per-cell campaign progress on stderr.

    On a terminal the line updates in place; otherwise milestones are
    printed one per line (start, every ~10%, and completion), so CI logs
    stay readable.
    """

    def __init__(self, name: str, stream=None) -> None:
        self.name = name
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_milestone = -1
        self._last_width = 0
        self._wrote = False

    def __call__(self, done: int, total: int, cached: int) -> None:
        running = total - done
        line = (f"[{self.name}] cells {done}/{total} "
                f"({cached} cached, {done - cached} simulated, "
                f"{running} running)")
        if self._tty:
            # Pad to the previous line's width so shrinking fields
            # (e.g. "100 running" -> "99 running") leave no residue.
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            self.stream.write("\r" + padded)
            self.stream.flush()
            self._wrote = True
        else:
            milestone = (10 * done) // total if total else 10
            if milestone != self._last_milestone or done == total:
                self._last_milestone = milestone
                print(line, file=self.stream, flush=True)

    def finish(self) -> None:
        if self._tty and self._wrote:
            self.stream.write("\n")
            self.stream.flush()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = make_spec(args)
    config = baseline()
    try:
        engine = make_engine(args)
    except OSError as error:
        print(f"repro-smt: error: unusable --cache-dir "
              f"{args.cache_dir!r}: {error}", file=sys.stderr)
        return 2
    previous = set_engine(engine)
    names = sorted(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    try:
        for name in names:
            driver = EXHIBITS[name]
            progress = None
            if not args.no_progress:
                progress = ProgressPrinter(name)
                engine.progress = progress
            before = engine.counters.snapshot()
            started = time.time()
            result = driver(config=config, spec=spec,
                            classes=args.classes,
                            workloads_per_class=args.workloads_per_class,
                            engine=engine)
            elapsed = time.time() - started
            if progress is not None:
                progress.finish()
                engine.progress = None
            delta = engine.counters.since(before)
            print(result.render())
            print(f"[{name} regenerated in {elapsed:.1f}s | "
                  f"simulated={delta.simulated}, "
                  f"cache_hits={delta.store_hits}, "
                  f"reused={delta.memo_hits}]")
            print()
    finally:
        set_engine(previous)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
