"""Command-line interface: regenerate any table or figure.

Examples::

    python -m repro table1
    python -m repro figure1 --workloads-per-class 3 --trace-len 2000
    python -m repro all
    repro-smt figure6 --classes MEM2 MEM4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .config import baseline
from .experiments import EXHIBITS
from .sim.runner import RunSpec, default_spec
from .trace.workloads import WORKLOAD_CLASSES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt",
        description="Reproduce 'Runahead Threads to Improve SMT "
                    "Performance' (HPCA 2008): regenerate its tables "
                    "and figures on the bundled simulator.")
    parser.add_argument("exhibit",
                        choices=sorted(EXHIBITS) + ["all"],
                        help="which exhibit to regenerate")
    parser.add_argument("--trace-len", type=int, default=None,
                        help="instructions per thread trace "
                             "(default: RunSpec default)")
    parser.add_argument("--seed", type=int, default=None,
                        help="trace generation seed")
    parser.add_argument("--workloads-per-class", type=int, default=None,
                        help="cap workloads per class for a quick look "
                             "(default: full Table 2)")
    parser.add_argument("--classes", nargs="+", default=None,
                        choices=list(WORKLOAD_CLASSES),
                        help="restrict to specific workload classes")
    return parser


def make_spec(args: argparse.Namespace) -> RunSpec:
    spec = default_spec()
    overrides = {}
    if args.trace_len is not None:
        overrides["trace_len"] = args.trace_len
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        import dataclasses
        spec = dataclasses.replace(spec, **overrides)
    return spec


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = make_spec(args)
    config = baseline()
    names = sorted(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        driver = EXHIBITS[name]
        started = time.time()
        result = driver(config=config, spec=spec,
                        classes=args.classes,
                        workloads_per_class=args.workloads_per_class)
        print(result.render())
        print(f"[{name} regenerated in {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
