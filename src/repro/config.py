"""Processor configuration (the paper's Table 1) and experiment knobs.

:class:`SMTConfig` collects every parameter of the simulated SMT processor.
``SMTConfig()`` with no arguments *is* the paper's baseline configuration:

===========================  =============================
Processor depth              10 stages
Processor width              8-way
Reorder buffer               512 shared entries
INT / FP physical registers  320 / 320
INT / FP / LS issue queues   64 / 64 / 64 entries
INT / FP / LdSt units        6 / 3 / 4
Branch predictor             perceptron
I-cache                      64 KB, 4-way, 1-cycle, pipelined
D-cache                      64 KB, 4-way, 3-cycle
L2 cache                     1 MB, 8-way, 20-cycle
Line size                    64 bytes
Main memory                  400 cycles
===========================  =============================

The remaining fields configure the fetch policy, the Runahead Threads
mechanism and its ablations (paper §6), and measurement parameters.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Tuple

from .errors import ConfigError

#: Environment switch for the macro-step speculation layer (the guarded
#: software-JIT fast path over the dispatch hot loop; see
#: :mod:`repro.core.pipeline`).  Values: ``on`` / ``off`` / ``auto``.
SPECULATE_ENV_VAR = "REPRO_SPECULATE"

_SPECULATE_MODES = ("on", "off", "auto")


def speculation_mode() -> str:
    """Resolve the macro-step speculation switch: ``on|off|auto``.

    * ``off`` — the layer is disabled; every instruction takes the
      per-stage path (the CI fallback leg pins this).
    * ``auto`` (default) — enabled, except for *opaque* policies (ones
      that override per-cycle/event accounting without declaring the
      :meth:`~repro.policies.base.FetchPolicy.macro_step_ok` contract),
      which get a conservative veto.
    * ``on`` — enabled even for opaque policies (the fused path is
      bit-identical by construction; this trusts that over the opt-in).

    Deliberately an environment knob rather than an :class:`SMTConfig`
    field: the frozen config's ``to_dict`` is the canonical cache-key
    encoding, and a new field would re-key every cached cell for a
    switch that — by the bit-identity contract — cannot change any
    result.  No cache salt bump is needed for the same reason.
    """
    value = os.environ.get(SPECULATE_ENV_VAR, "auto").strip().lower()
    if value not in _SPECULATE_MODES:
        raise ConfigError(
            f"{SPECULATE_ENV_VAR} must be one of {_SPECULATE_MODES}, "
            f"got {value!r}")
    return value

#: Environment switch for the simulation-kernel tier (which
#: implementation of the pipeline run loop drives a cell; see
#: :mod:`repro.sim.kernels`).  Values: ``auto`` / ``python`` /
#: ``specialized``.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_KERNEL_MODES = ("auto", "python", "specialized")


def kernel_mode() -> str:
    """Resolve the kernel-tier switch: ``auto|python|specialized``.

    * ``python`` — the portable pure-Python run loop (the fallback tier
      every other tier must match bit for bit).
    * ``specialized`` — request the source-generating specializer
      (:mod:`repro.core.kernel_gen`): a run loop compiled per (config
      shape x policy class) with the machine constants folded in.  A
      policy/config the generator does not cover still falls back to
      the python tier — selection is a request, never an error.
    * ``auto`` (default) — ``specialized`` where covered, ``python``
      elsewhere.

    Deliberately an environment knob rather than an :class:`SMTConfig`
    field, exactly like :func:`speculation_mode`: the frozen config's
    ``to_dict`` is the canonical cache-key encoding, and a new field
    would re-key every cached cell for a switch that — by the
    bit-identity contract — cannot change any result.  No cache salt
    bump is needed for the same reason.
    """
    value = os.environ.get(KERNEL_ENV_VAR, "auto").strip().lower()
    if value not in _KERNEL_MODES:
        raise ConfigError(
            f"{KERNEL_ENV_VAR} must be one of {_KERNEL_MODES}, "
            f"got {value!r}")
    return value

#: Paper §5.1/§5.2 evaluate ICOUNT with 2 threads fetching up to 8
#: instructions per cycle (the classic ICOUNT.2.8 configuration).
DEFAULT_FETCH_THREADS = 2


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc

    def to_dict(self) -> Dict[str, int]:
        """Canonical JSON-ready form (stable field order via sort_keys)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CacheConfig":
        return cls(**data)

    def validate(self, name: str) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"{name}: sizes must be positive")
        if self.size_bytes % self.line_bytes != 0:
            raise ConfigError(f"{name}: size not a multiple of line size")
        if self.num_lines % self.assoc != 0:
            raise ConfigError(f"{name}: lines not divisible by associativity")
        sets = self.num_sets
        if sets & (sets - 1) != 0:
            raise ConfigError(f"{name}: number of sets ({sets}) not a power of 2")
        if self.latency < 0:
            raise ConfigError(f"{name}: negative latency")


@dataclasses.dataclass(frozen=True)
class SMTConfig:
    """Full configuration of the simulated SMT processor.

    Defaults reproduce the paper's Table 1 baseline.  Frozen so a config can
    be hashed and used as a cache key for single-thread reference runs.
    """

    # --- processor core (Table 1) -------------------------------------
    pipeline_depth: int = 10
    width: int = 8
    rob_size: int = 512
    int_regs: int = 320
    fp_regs: int = 320
    int_iq_size: int = 64
    fp_iq_size: int = 64
    ls_iq_size: int = 64
    int_units: int = 6
    fp_units: int = 3
    ldst_units: int = 4

    # --- front end ------------------------------------------------------
    fetch_threads: int = DEFAULT_FETCH_THREADS
    fetch_buffer_size: int = 32
    #: Cycles from a fetch redirect (mispredict, flush, runahead exit) until
    #: the first corrected-path instruction re-enters the fetch buffer.
    #: Roughly the front-end half of the 10-stage pipe.
    redirect_penalty: int = 5

    # --- branch predictor -------------------------------------------------
    predictor_entries: int = 1024
    predictor_history: int = 24
    btb_entries: int = 2048

    # --- memory subsystem (Table 1) ----------------------------------
    icache: CacheConfig = CacheConfig(64 * 1024, 4, 64, 1)
    dcache: CacheConfig = CacheConfig(64 * 1024, 4, 64, 3)
    l2: CacheConfig = CacheConfig(1024 * 1024, 8, 64, 20)
    memory_latency: int = 400
    mshr_entries: int = 32

    # --- policy -----------------------------------------------------------
    #: Fetch/resource policy name, resolved via repro.policies.registry.
    policy: str = "icount"

    # --- Runahead Threads (paper §3) ------------------------------------
    #: Invalidate FP instructions at decode during runahead (§3.3).
    rat_fp_invalidation: bool = True
    #: Model the runahead cache for store->load validity forwarding.  The
    #: paper measured no significant impact and left it out (§3.3); we default
    #: off but keep it for the ablation bench.
    rat_runahead_cache: bool = False
    rat_runahead_cache_bytes: int = 4096
    #: Figure 4 "Prefetching" ablation: when False, runahead loads/ifetches
    #: do not touch L2/memory (no prefetch benefit), and loads that would
    #: have missed do not re-trigger runahead after recovery.
    rat_prefetch: bool = True
    #: Figure 4 "Resource availability" ablation: when True, a runahead
    #: thread stops fetching once an L2-missing load is seen in runahead
    #: mode, isolating the early-resource-release benefit.
    rat_stop_fetch_in_runahead: bool = False

    # --- STALL/FLUSH policy details (Tullsen & Brown [17]) ----------------
    #: Number of outstanding L2 misses a thread may have before the
    #: long-latency handler (stall/flush/runahead trigger) engages.
    long_latency_threshold: int = 1

    # --- DCRA ---------------------------------------------------------------
    dcra_slow_weight: float = 2.0
    dcra_sample_interval: int = 64

    # --- Hill climbing ------------------------------------------------------
    hill_epoch_cycles: int = 512
    hill_delta: float = 0.10
    hill_min_share: float = 0.10

    # --- MLP-aware policy (related work [15], extension) --------------------
    mlp_predictor_entries: int = 256
    mlp_max_extra: int = 64

    # --- measurement ---------------------------------------------------------
    #: Hard cap on simulated cycles (deadlock guard).
    max_cycles: int = 5_000_000
    #: Functionally warm caches, BTB and branch predictor with one trace
    #: pass before the timed run, so short traces measure steady-state
    #: behaviour rather than pure cold-start (the paper measures 300M-
    #: instruction SimPoint slices, which are self-warming).
    warmup: bool = True

    def validate(self) -> "SMTConfig":
        """Raise :class:`ConfigError` if any field is inconsistent.

        Returns self so calls can be chained.
        """
        if self.pipeline_depth < 5:
            raise ConfigError("pipeline_depth must be >= 5")
        if self.width < 1:
            raise ConfigError("width must be >= 1")
        if self.rob_size < self.width:
            raise ConfigError("rob_size must be >= width")
        for name in ("int_regs", "fp_regs"):
            value = getattr(self, name)
            if value < 64:
                # 32 architectural registers per thread; fewer than 2
                # threads' worth of registers cannot run any Table 2 workload.
                raise ConfigError(f"{name} must be >= 64 (got {value})")
        for name in (
            "int_iq_size", "fp_iq_size", "ls_iq_size",
            "int_units", "fp_units", "ldst_units",
            "fetch_threads", "fetch_buffer_size",
            "predictor_entries", "predictor_history",
            "memory_latency", "mshr_entries", "max_cycles",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.redirect_penalty < 0:
            raise ConfigError("redirect_penalty must be >= 0")
        if self.long_latency_threshold < 1:
            raise ConfigError("long_latency_threshold must be >= 1")
        if not 0.0 < self.hill_delta < 1.0:
            raise ConfigError("hill_delta must be in (0, 1)")
        if not 0.0 < self.hill_min_share <= 1.0 / 2:
            raise ConfigError("hill_min_share must be in (0, 0.5]")
        if self.dcra_slow_weight < 1.0:
            raise ConfigError("dcra_slow_weight must be >= 1.0")
        self.icache.validate("icache")
        self.dcache.validate("dcache")
        self.l2.validate("l2")
        if not (self.icache.line_bytes == self.dcache.line_bytes
                == self.l2.line_bytes):
            raise ConfigError("all cache levels must share one line size")
        return self

    def with_policy(self, policy: str, **overrides) -> "SMTConfig":
        """Return a copy with a different policy (and optional overrides)."""
        return dataclasses.replace(self, policy=policy, **overrides)

    def with_registers(self, int_regs: int, fp_regs: int = -1) -> "SMTConfig":
        """Return a copy with a different register file size (Figure 6)."""
        if fp_regs < 0:
            fp_regs = int_regs
        return dataclasses.replace(self, int_regs=int_regs, fp_regs=fp_regs)

    def to_dict(self) -> Dict:
        """Canonical nested-dict form, suitable for JSON and cache keying.

        Every field is a JSON scalar or a :class:`CacheConfig` dict, so
        ``json.dumps(config.to_dict(), sort_keys=True)`` is a stable
        canonical encoding: equal configs always serialize identically.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SMTConfig":
        data = dict(data)
        for level in ("icache", "dcache", "l2"):
            if isinstance(data.get(level), dict):
                data[level] = CacheConfig.from_dict(data[level])
        return cls(**data)

    def max_threads(self) -> int:
        """Threads supportable given architectural-state register reservation.

        With N logical registers per thread, N physical registers per thread
        are reserved for precise state (paper §6.2); a small margin of
        renaming registers beyond that is required for any forward progress
        at all, so the Figure 6 sweep clamps tiny register files with
        :func:`min_registers_for`.
        """
        per_thread = 32
        margin = 16
        return min((self.int_regs - margin) // per_thread,
                   (self.fp_regs - margin) // per_thread)

    def table1_rows(self) -> Tuple[Tuple[str, str], ...]:
        """The configuration as (parameter, value) rows, mirroring Table 1."""
        def _kb(byte_count: int) -> str:
            if byte_count % (1024 * 1024) == 0:
                return f"{byte_count // (1024 * 1024)} MB"
            return f"{byte_count // 1024} KB"

        return (
            ("Processor depth", f"{self.pipeline_depth} stages"),
            ("Processor width", f"{self.width} way"),
            ("Reorder buffer size", f"{self.rob_size} shared entries"),
            ("INT/FP registers", f"{self.int_regs} / {self.fp_regs}"),
            ("INT/FP/LS issue queues",
             f"{self.int_iq_size} / {self.fp_iq_size} / {self.ls_iq_size}"),
            ("INT/FP/LdSt units",
             f"{self.int_units} / {self.fp_units} / {self.ldst_units}"),
            ("Branch predictor", "Perceptron"),
            ("Icache",
             f"{_kb(self.icache.size_bytes)}, {self.icache.assoc}-way, "
             f"{self.icache.latency} cyc pipelined"),
            ("Dcache",
             f"{_kb(self.dcache.size_bytes)}, {self.dcache.assoc}-way, "
             f"{self.dcache.latency} cyc latency"),
            ("L2 Cache",
             f"{_kb(self.l2.size_bytes)}, {self.l2.assoc}-way, "
             f"{self.l2.latency} cyc latency"),
            ("Caches line size", f"{self.l2.line_bytes} bytes"),
            ("Main memory latency", f"{self.memory_latency} cycles"),
        )


def baseline() -> SMTConfig:
    """The paper's Table 1 baseline configuration, validated."""
    return SMTConfig().validate()


def min_registers_for(num_threads: int, margin: int = 16) -> int:
    """Smallest register-file size that can run ``num_threads`` threads.

    32 architectural registers per thread are reserved; ``margin`` renaming
    registers keep dispatch from deadlocking.  The Figure 6 sweep clamps
    requested sizes with this (documented in EXPERIMENTS.md): e.g. a
    4-thread workload cannot run with 64 or 128 physical registers in this
    model, so those points are measured at 144.
    """
    if num_threads < 1:
        raise ConfigError("num_threads must be >= 1")
    return 32 * num_threads + margin
