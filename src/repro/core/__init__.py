"""The SMT processor core.

Implements the paper's simulated machine (Table 1): an 8-wide, 10-stage SMT
pipeline with full dynamic resource sharing — shared reorder buffer, shared
physical register files with true renaming, shared issue queues and
functional units — plus the Runahead Threads mechanism of §3.
"""

from .dyninst import DynInst, InstState
from .regfile import PhysRegFile
from .rename import RenameState
from .rob import SharedROB
from .issue_queue import IssueQueue
from .fu import FUPool
from .thread import ThreadContext, ThreadMode
from .processor import SMTProcessor, SimResult
from .stats import ThreadStats, GlobalStats

__all__ = [
    "DynInst", "InstState", "PhysRegFile", "RenameState", "SharedROB",
    "IssueQueue", "FUPool", "ThreadContext", "ThreadMode",
    "SMTProcessor", "SimResult", "ThreadStats", "GlobalStats",
]
