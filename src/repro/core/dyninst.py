"""Dynamic (in-flight) instruction state.

A :class:`DynInst` is created at fetch from one trace row and carries all
per-instance pipeline state: renamed operands, readiness, validity (the INV
bit of runahead execution), and lifecycle bookkeeping.  These objects are
the hot allocation of the simulator, hence ``__slots__`` and plain
attributes throughout.
"""

from __future__ import annotations

import enum

from ..isa import (
    IS_BRANCH_BY_CODE,
    IS_FP_BY_CODE,
    IS_LOAD_BY_CODE,
    IS_MEM_BY_CODE,
    IS_STORE_BY_CODE,
    NO_REG,
    OpClass,
)


class InstState(enum.IntEnum):
    """Lifecycle of a dynamic instruction."""

    FETCHED = 0      # waiting in the per-thread fetch queue
    DISPATCHED = 1   # renamed, in ROB; waiting for operands in an IQ
    READY = 2        # all operands available; eligible for issue
    ISSUED = 3       # executing on a functional unit / memory access
    COMPLETED = 4    # result produced (possibly invalid)
    RETIRED = 5      # committed (normal) or pseudo-retired (runahead)
    SQUASHED = 6     # cancelled by misprediction, flush, or runahead exit


#: (is_load, is_store, is_mem, is_branch, is_fp) per op code — a single
#: index + unpack in the constructor instead of five table reads.
_OP_FLAGS = tuple(
    (IS_LOAD_BY_CODE[code], IS_STORE_BY_CODE[code], IS_MEM_BY_CODE[code],
     IS_BRANCH_BY_CODE[code], IS_FP_BY_CODE[code])
    for code in range(len(IS_LOAD_BY_CODE)))


class DynInst:
    """One in-flight instruction instance."""

    __slots__ = (
        "tid", "seq", "gseq", "trace_index", "pass_no",
        "op", "pc", "addr",
        "dest_arch", "src1_arch", "src2_arch",
        "pdest", "psrc1", "psrc2", "old_pdest",
        "state", "invalid", "runahead", "replay",
        "pending_srcs", "in_iq", "counted", "l2_counted",
        "src_inv_mask",
        "complete_cycle", "l2_miss", "mispredicted", "taken",
        "is_load", "is_store", "is_mem", "is_branch", "is_fp",
    )

    def __init__(self, tid: int, seq: int, trace_index: int, pass_no: int,
                 op: int, pc: int, addr: int, dest_arch: int,
                 src1_arch: int, src2_arch: int, taken: bool) -> None:
        self.tid = tid
        self.seq = seq
        self.gseq = 0  # global fetch order, assigned by the pipeline
        self.trace_index = trace_index
        self.pass_no = pass_no
        self.op = op
        self.pc = pc
        self.addr = addr
        self.dest_arch = dest_arch
        self.src1_arch = src1_arch
        self.src2_arch = src2_arch
        self.taken = taken

        self.pdest = NO_REG
        self.psrc1 = NO_REG
        self.psrc2 = NO_REG
        self.old_pdest = NO_REG

        self.state = InstState.FETCHED
        self.invalid = False        # runahead INV bit of the *result*
        self.runahead = False       # fetched while its thread ran ahead
        self.replay = False         # ready load deferred on a full MSHR file
        self.pending_srcs = 0
        self.in_iq = False
        self.counted = False        # contributes to ICOUNT
        self.l2_counted = False     # contributes to pending_l2_misses
        self.src_inv_mask = 0       # bit0/bit1: src1/src2 known-INV at dispatch
        self.complete_cycle = -1
        self.l2_miss = False        # detected long-latency (L2) miss
        self.mispredicted = False

        (self.is_load, self.is_store, self.is_mem, self.is_branch,
         self.is_fp) = _OP_FLAGS[op]

    @property
    def active(self) -> bool:
        """Still owns pipeline resources (not retired or squashed)."""
        return self.state < InstState.RETIRED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DynInst t{self.tid} #{self.seq} {OpClass(self.op).name} "
                f"idx={self.trace_index} {InstState(self.state).name}"
                f"{' INV' if self.invalid else ''}"
                f"{' RA' if self.runahead else ''}>")
