"""Functional unit pools.

Table 1 specifies 6 INT, 3 FP and 4 load/store units.  Units are fully
pipelined, so a pool is simply a per-cycle issue budget (one instruction
can begin on each unit every cycle); multi-cycle latency is carried by the
instruction's completion event, not by unit occupancy.  (The paper does not
describe unpipelined units; FDIV being pipelined here is a documented
simplification shared equally by all policies.)
"""

from __future__ import annotations

from ..isa import FUKind, OP_FU_BY_CODE


class FUPool:
    """Per-cycle issue budgets for the three unit kinds."""

    __slots__ = ("_capacity", "_available", "issued")

    def __init__(self, int_units: int, fp_units: int, ldst_units: int) -> None:
        if min(int_units, fp_units, ldst_units) < 1:
            raise ValueError("each FU pool needs at least one unit")
        self._capacity = [0, 0, 0]
        self._capacity[FUKind.INT] = int_units
        self._capacity[FUKind.FP] = fp_units
        self._capacity[FUKind.LDST] = ldst_units
        self._available = list(self._capacity)
        self.issued = [0, 0, 0]

    def new_cycle(self) -> None:
        """Refresh budgets at the start of a cycle."""
        self._available[0] = self._capacity[0]
        self._available[1] = self._capacity[1]
        self._available[2] = self._capacity[2]

    def capacity(self, kind: FUKind) -> int:
        return self._capacity[kind]

    def available(self, kind: FUKind) -> int:
        return self._available[kind]

    def acquire(self, op: int) -> bool:
        """Claim a unit for this cycle; False if the pool is exhausted."""
        kind = OP_FU_BY_CODE[op]
        if self._available[kind] <= 0:
            return False
        self._available[kind] -= 1
        self.issued[kind] += 1
        return True

    def next_release_cycle(self, now: int) -> int:
        """Earliest future cycle at which a unit becomes available.

        Part of the per-structure skip-horizon contract (see
        :meth:`SMTPipeline._skip_target
        <repro.core.pipeline.SMTPipeline._skip_target>`).  Units are
        fully pipelined, so every budget refreshes at the next cycle
        boundary: a pool can never stall the machine across more than
        one cycle.  An instruction starved by an exhausted pool implies
        another instruction issued this cycle, which already pins the
        skip target via the activity precheck — so this horizon never
        constrains a quiescent window in practice; it exists so the
        contract is stated by the structure that owns it rather than
        assumed by the pipeline.
        """
        return now + 1
