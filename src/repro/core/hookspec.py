"""The policy opt-in hook contracts, as one shared classifier.

Two pipeline fast paths are gated on *opt-in declarations* from the
fetch policy:

* **cycle skipping** (:meth:`SMTPipeline.advance
  <repro.core.pipeline.SMTPipeline.advance>`) trusts a policy's
  :meth:`~repro.policies.base.FetchPolicy.skip_horizon` only when
  whoever last overrode :meth:`~repro.policies.base.FetchPolicy.on_cycle`
  also (re)declared the horizon — otherwise skipping could jump over
  cycles the policy needed to observe;
* **macro-step speculation** (``SMTPipeline._macro_dispatch`` under
  ``REPRO_SPECULATE=auto``) trusts
  :meth:`~repro.policies.base.FetchPolicy.macro_step_ok` only when
  whoever last overrode the accounting hooks (:meth:`on_cycle` /
  :meth:`on_l2_miss_detected`) also (re)declared the macro contract.

Both are the same question over a class hierarchy: *walking from the
most-derived class towards the base, does a contract declaration appear
at or before the first trigger override?*  :func:`contract_covers`
answers it over an abstract definition chain, so the exact same logic
serves two consumers:

* the **runtime auto-veto** at pipeline construction, which feeds it the
  real MRO (:func:`mro_defined_chain`); and
* the **static** ``hook-conformance`` lint rule
  (:mod:`repro.analysis.hooks`), which feeds it a chain derived from the
  AST of the policy sources.

``tests/test_lint.py`` pins that the two agree on every registered
policy.  Keep this module import-light (stdlib only): it is imported by
both the simulator core and the static-analysis package.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

#: Contract / trigger attribute names for the cycle-skipping opt-in.
HORIZON_CONTRACT: Tuple[str, ...] = ("skip_horizon",)
HORIZON_TRIGGERS: Tuple[str, ...] = ("on_cycle",)

#: Contract / trigger attribute names for the macro-step opt-in.
MACRO_CONTRACT: Tuple[str, ...] = ("macro_step_ok",)
MACRO_TRIGGERS: Tuple[str, ...] = ("on_cycle", "on_l2_miss_detected")


def contract_covers(defined_chain: Iterable[Set[str]],
                    contract: Tuple[str, ...],
                    triggers: Tuple[str, ...]) -> bool:
    """Does a contract declaration cover every trigger override?

    ``defined_chain`` is the per-class sets of attribute names a
    hierarchy defines, ordered from the most-derived class to the base.
    Walking it in order, a ``contract`` name seen at or before the first
    ``triggers`` name means whoever last changed the triggered behaviour
    also declared (or re-declared) the contract — the declaration is
    *at or below* every live override.  A trigger seen first means the
    most recent behaviour change carries no declaration, so the
    conservative answer is False.  ``FetchPolicy`` itself defines both
    contract and triggers, so hierarchies without overrides are
    trivially covered (and an exhausted chain answers True).
    """
    for defined in defined_chain:
        for name in contract:
            if name in defined:
                return True
        for name in triggers:
            if name in defined:
                return False
    return True


def mro_defined_chain(policy_type: type) -> List[Set[str]]:
    """The runtime definition chain: one attribute set per MRO class."""
    return [set(vars(klass)) for klass in policy_type.__mro__]


def horizon_covers_on_cycle(policy_type: type) -> bool:
    """May the cycle-skip fast path trust this policy's ``skip_horizon``?"""
    return contract_covers(mro_defined_chain(policy_type),
                           HORIZON_CONTRACT, HORIZON_TRIGGERS)


def macro_covers_policy(policy_type: type) -> bool:
    """May fused dispatch run for this policy under ``REPRO_SPECULATE=auto``?"""
    return contract_covers(mro_defined_chain(policy_type),
                           MACRO_CONTRACT, MACRO_TRIGGERS)


#: Package whose policy classes the specialized kernel tier was
#: validated against (the bit-identity suites run over the registry).
KERNEL_POLICY_PACKAGE = "repro.policies"

#: Hook/attribute surface the specialized kernel generator folds or
#: hoists at generation time.  If any of these is (re)defined outside
#: :data:`KERNEL_POLICY_PACKAGE`, the generated kernel may disagree with
#: the author's intent (e.g. an instance-level ``uses_runahead`` flip),
#: so coverage is refused and selection falls back to the python tier.
KERNEL_HOOK_SURFACE: Tuple[str, ...] = (
    "attach", "fetch_order", "on_cycle", "on_l2_miss_detected",
    "macro_step_ok", "skip_horizon", "uses_runahead",
)


def kernel_covers_policy(policy_type: type) -> bool:
    """May the specialized kernel tier drive a cell with this policy?

    Same conservative philosophy as the macro auto-veto: a third-party
    subclass is never an error, it simply keeps the portable python run
    loop.  Coverage requires that every class defining (or overriding)
    a name in :data:`KERNEL_HOOK_SURFACE` lives inside
    :data:`KERNEL_POLICY_PACKAGE` — the set of classes the bit-identity
    suites actually exercise against the generated kernels.
    """
    package = KERNEL_POLICY_PACKAGE
    prefix = package + "."
    for name in KERNEL_HOOK_SURFACE:
        for klass in policy_type.__mro__:
            if name in vars(klass):
                module = getattr(klass, "__module__", "")
                if module != package and not module.startswith(prefix):
                    return False
                break
    return True
