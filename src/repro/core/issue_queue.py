"""Issue queues with event-driven wakeup.

Each of the three queues (INT/FP/LS, Table 1) holds dispatched instructions
until their operands are ready.  Wakeup is event-driven: instructions with
outstanding sources register as waiters on the producing physical register,
and completion moves them to the queue's ready list — so per-cycle cost
scales with completions, not queue size.

Occupancy accounting is explicit (``size``): an instruction occupies its
queue entry from dispatch until it issues, folds, or is squashed, and the
counter is the resource the dispatch stage and the DCRA/hill-climbing
policies arbitrate over.
"""

from __future__ import annotations

import operator
from typing import List

from ..errors import SimulationError
from .dyninst import DynInst, InstState


class IssueQueue:
    """One issue queue: bounded occupancy plus a ready list."""

    __slots__ = ("name", "capacity", "size", "_ready", "per_thread")

    def __init__(self, name: str, capacity: int, num_threads: int) -> None:
        if capacity < 1:
            raise ValueError("issue queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.size = 0
        self._ready: List[DynInst] = []
        self.per_thread = [0] * num_threads

    @property
    def free_entries(self) -> int:
        return self.capacity - self.size

    def is_full(self) -> bool:
        return self.size >= self.capacity

    def insert(self, inst: DynInst) -> None:
        """Account a dispatched instruction's queue entry."""
        if self.is_full():
            raise SimulationError(f"{self.name} issue queue overflow")
        self.size += 1
        self.per_thread[inst.tid] += 1
        inst.in_iq = True

    def remove(self, inst: DynInst) -> None:
        """Release an entry (issue, fold, or squash)."""
        if not inst.in_iq:
            return
        inst.in_iq = False
        self.size -= 1
        self.per_thread[inst.tid] -= 1
        if self.size < 0:
            raise SimulationError(f"{self.name} issue queue underflow")

    def mark_ready(self, inst: DynInst) -> None:
        """All operands available: eligible for selection."""
        self._ready.append(inst)

    def take_ready(self, limit: int) -> List[DynInst]:
        """Select up to ``limit`` ready instructions, oldest first.

        Squashed and folded entries are purged in passing.  Instructions
        not selected this cycle stay in the ready list.
        """
        if not self._ready:
            return []
        live = [inst for inst in self._ready
                if inst.state == InstState.READY]
        if len(live) != len(self._ready):
            self._ready = live
        if not live:
            return []
        if len(live) > limit:
            live.sort(key=_inst_age)
            selected = live[:limit]
            self._ready = live[limit:]
        else:
            selected = live
            self._ready = []
        return selected

    def requeue(self, inst: DynInst) -> None:
        """Put an instruction back (e.g. memory access rejected by MSHRs)."""
        self._ready.append(inst)

    def has_ready(self) -> bool:
        """Any entry currently issueable?

        Used by the cycle-skipping fast path after every stepped cycle:
        a live ready entry means next cycle's issue stage has work, so
        idle cycles cannot be jumped over.  Allocation-free on purpose —
        a busy machine calls this every cycle and bails on the first
        live entry; a fully-stale list (everything squashed or folded)
        is cleared in passing.
        """
        ready = self._ready
        if not ready:
            return False
        for inst in ready:
            if inst.state == InstState.READY:
                return True
        ready.clear()
        return False

    def ready_count(self) -> int:
        return sum(1 for inst in self._ready
                   if inst.state == InstState.READY)


#: Global fetch order approximates true age across threads.
_inst_age = operator.attrgetter("gseq")
