"""Issue queues with event-driven wakeup.

Each of the three queues (INT/FP/LS, Table 1) holds dispatched instructions
until their operands are ready.  Wakeup is event-driven: instructions with
outstanding sources register as waiters on the producing physical register,
and completion moves them to the queue's ready list — so per-cycle cost
scales with completions, not queue size.

Occupancy accounting is explicit (``size``): an instruction occupies its
queue entry from dispatch until it issues, folds, or is squashed, and the
counter is the resource the dispatch stage and the DCRA/hill-climbing
policies arbitrate over.

Readiness is also a *skip horizon*: :meth:`IssueQueue.next_ready_cycle`
tells the event-driven fast path whether the selection logic could issue
from this queue next cycle, or whether every ready entry is a demand load
replaying against a full MSHR file — in which case the queue wakes no
earlier than the memory system's next fill (see
:meth:`~repro.mem.hierarchy.MemoryHierarchy.next_fill_cycle`).  The
replay population is tracked incrementally at requeue/selection/removal
time (``_replay_blocked``), not by scanning the ready list.
"""

from __future__ import annotations

import operator
from typing import List, Optional

from ..errors import SimulationError
from .dyninst import DynInst, InstState

#: Hoisted member: these scans run per quiescence check / issue cycle.
_READY = InstState.READY

#: Sentinel returned by :meth:`IssueQueue.next_ready_cycle` when every
#: live ready entry is a memory-replay load: the wakeup cycle is owned by
#: the MSHR file, not the queue.
MEMORY_WAIT = -1


class IssueQueue:
    """One issue queue: bounded occupancy plus a ready list."""

    __slots__ = ("name", "capacity", "size", "_ready", "_replay_blocked",
                 "per_thread")

    def __init__(self, name: str, capacity: int, num_threads: int) -> None:
        if capacity < 1:
            raise ValueError("issue queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.size = 0
        self._ready: List[DynInst] = []
        self._replay_blocked = 0   # live ready entries deferred on the MSHRs
        self.per_thread = [0] * num_threads

    @property
    def free_entries(self) -> int:
        return self.capacity - self.size

    def is_full(self) -> bool:
        return self.size >= self.capacity

    def insert(self, inst: DynInst) -> None:
        """Account a dispatched instruction's queue entry."""
        if self.is_full():
            raise SimulationError(f"{self.name} issue queue overflow")
        self.size += 1
        self.per_thread[inst.tid] += 1
        inst.in_iq = True

    def remove(self, inst: DynInst) -> None:
        """Release an entry (issue, fold, or squash)."""
        if inst.replay:
            inst.replay = False
            self._replay_blocked -= 1
        if not inst.in_iq:
            return
        inst.in_iq = False
        self.size -= 1
        self.per_thread[inst.tid] -= 1
        if self.size < 0:
            raise SimulationError(f"{self.name} issue queue underflow")

    def mark_ready(self, inst: DynInst) -> None:
        """All operands available: eligible for selection."""
        self._ready.append(inst)

    def take_ready(self, limit: int) -> List[DynInst]:
        """Select up to ``limit`` ready instructions, oldest first.

        Squashed and folded entries are purged in passing.  Instructions
        not selected this cycle stay in the ready list.  Selected replay
        loads shed their deferred status — the issue stage is about to
        attempt them again, and re-defers via :meth:`requeue` on failure.
        """
        ready = self._ready
        if not ready:
            return []
        # Clean scan first: the common case has no stale entries, and the
        # scan avoids the filtering list allocation (this runs for every
        # non-empty queue every stepped cycle).
        for inst in ready:
            if inst.state != _READY:
                live = [inst for inst in ready if inst.state == _READY]
                self._ready = live
                break
        else:
            live = ready
        if not live:
            return []
        if len(live) > limit:
            live.sort(key=_inst_age)
            selected = live[:limit]
            self._ready = live[limit:]
        else:
            selected = live
            self._ready = []
        if self._replay_blocked:
            for inst in selected:
                if inst.replay:
                    inst.replay = False
                    self._replay_blocked -= 1
        return selected

    def requeue(self, inst: DynInst, replay: bool = False) -> None:
        """Put an instruction back after a failed issue attempt.

        ``replay`` marks a demand load rejected by a full MSHR file: it
        stays ready and retries every stepped cycle, but cannot possibly
        issue before the memory system releases an entry, so it does not
        pin the cycle-skipping fast path the way ordinary ready entries
        do (see :meth:`next_ready_cycle`).
        """
        self._ready.append(inst)
        if replay and not inst.replay:
            inst.replay = True
            self._replay_blocked += 1

    def has_ready(self) -> bool:
        """Any entry currently issueable?

        Used by the cycle-skipping fast path after every stepped cycle:
        a live ready entry means next cycle's issue stage has work, so
        idle cycles cannot be jumped over.  Allocation-free on purpose —
        a busy machine calls this every cycle and bails on the first
        live entry; a fully-stale list (everything squashed or folded)
        is cleared in passing.
        """
        ready = self._ready
        if not ready:
            return False
        for inst in ready:
            if inst.state == _READY:
                return True
        ready.clear()
        return False

    def next_ready_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle the selection logic could issue from this queue.

        * ``None`` — no live ready entry; the queue wakes only through a
          completion event (already on the pipeline's event horizon).
        * ``now`` — a live, non-deferred entry is ready: issue has work
          next cycle, so idle cycles cannot be jumped.
        * :data:`MEMORY_WAIT` — every live ready entry is a demand load
          replaying against a full MSHR file; the true wakeup cycle is
          the memory system's next fill, which the caller must fold in
          (the queue cannot know it).

        The common busy case exits on the first live non-replay entry,
        exactly like :meth:`has_ready`; the deferred verdict is O(1) via
        the incrementally-maintained ``_replay_blocked`` count.
        """
        ready = self._ready
        if not ready:
            return None
        for inst in ready:
            if inst.state == _READY and not inst.replay:
                return now
        # No live non-replay entry.  Any live entries left are exactly
        # the deferred replays (remove() strips the flag from squashed
        # and folded instructions, so the count tracks live ones only).
        if self._replay_blocked:
            return MEMORY_WAIT
        ready.clear()
        return None

    def ready_count(self) -> int:
        return sum(1 for inst in self._ready
                   if inst.state == _READY)


#: Global fetch order approximates true age across threads.
_inst_age = operator.attrgetter("gseq")
