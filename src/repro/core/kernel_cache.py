"""Per-process memoization of generated pipeline kernels.

:func:`specialized_run_loop` is the compile-and-cache front of the
specializing kernel tier (:mod:`repro.core.kernel_gen`): the first
pipeline of a given machine shape pays one source emission +
``compile()`` (a few ms); every subsequent pipeline with an equal
:class:`~repro.core.kernel_gen.KernelKey` — across cells, sweeps and
repeated runs in the same process — reuses the compiled loop.  Worker
processes of the process-pool executor each hold their own cache,
warmed by their first cell (the kernel-tier request travels to workers
via the ``REPRO_KERNEL`` environment knob, exactly like
``REPRO_SPECULATE``).

The cache key deliberately excludes the policy *class*: only the folded
policy facts in the key (runahead use, hook presence, macro/skip
eligibility) shape the emitted source, so e.g. two icount-family
policies of identical shape share one kernel.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa import OP_FU_BY_CODE, OP_QUEUE_BY_CODE
from .kernel_gen import (KernelKey, emit_kernel_source, kernel_namespace,
                         specialization_key)

# The generated issue stage folds the FU-kind lookup OP_FU_BY_CODE[op]
# to the issue-queue-kind literal; that is only sound while the two
# code-indexed tables coincide.  Checked at import so an ISA change
# that splits them fails loudly, not with silent FU misaccounting.
assert list(OP_QUEUE_BY_CODE) == list(OP_FU_BY_CODE), \
    "kernel specializer assumes queue kind == FU kind per op code"

_KERNELS: Dict[KernelKey, object] = {}


def specialized_run_loop(pipeline) -> Optional[object]:
    """The compiled run loop for this pipeline's shape, or None.

    None means the shape is outside the specializer's envelope (an
    unregistered policy subclass, too many threads); the caller keeps
    the portable python loop.  Never raises on uncovered input.
    """
    key = specialization_key(pipeline)
    if key is None:
        return None
    kernel = _KERNELS.get(key)
    if kernel is None:
        source = emit_kernel_source(key)
        namespace = kernel_namespace()
        exec(compile(source, "<kernel-gen>", "exec"), namespace)
        kernel = namespace["_kernel_run"]
        kernel.__kernel_key__ = key
        kernel.__kernel_source__ = source
        _KERNELS[key] = kernel
    return kernel


def cache_info() -> Dict[KernelKey, object]:
    """Snapshot of the process-local kernel cache (tests, diagnostics)."""
    return dict(_KERNELS)


def clear_cache() -> None:
    """Drop all compiled kernels (tests)."""
    _KERNELS.clear()
