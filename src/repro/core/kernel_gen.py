"""Specialized kernel generation: config-folded pipeline run loops.

This is the :mod:`repro.core.macro_jit` idea scaled from one dispatch
run to the whole FAME hot loop.  For a given *machine shape* — the
config scalars the stage loops read every cycle, plus the folded policy
facts the pipeline derives at construction — :func:`emit_kernel_source`
emits Python source for a complete ``run``-equivalent loop with:

* the per-cycle ``step()``/``advance()``/stage dispatch collapsed into
  one loop body (no bound-method calls between stages);
* every per-call hoist the stage methods perform (``self.rob``,
  ``self.mem.data_access_packed``, trace columns, …) done **once per
  run** instead of once per stage call;
* config scalars folded to literals (width, fetch width/buffer,
  ROB/IQ capacities, FU counts, cache latencies, thread count — the
  rotation index becomes ``now & (NT-1)`` for power-of-two NT);
* policy hook presence resolved at generation time: a policy without
  ``on_cycle`` loses the per-cycle test entirely, a machine without
  runahead loses every ``thread.mode`` branch, speculation-off kernels
  carry no macro-dispatch code at all;
* the event-table call elided on cycles with no due bucket (sound
  because every ``_events`` key is pushed into ``_event_heap`` on
  bucket creation, and a call with no due bucket mutates nothing).

Correctness contract (same as the macro JIT): the emitted body is a
statement-for-statement transcription of ``SMTPipeline.step`` /
``advance`` and the stage bodies with constants folded — it must leave
bit-identical machine state and raise the same errors at the same
cycles.  Cold paths (event processing on due cycles, per-instruction
dispatch, folds, runahead transitions, misprediction repair, the skip
planner) stay out-of-line bound calls into the pipeline: they are
exercised through the exact same code as the python tier.

Generated kernels are keyed and memoized by :class:`KernelKey`
(:mod:`repro.core.kernel_cache`), so every pipeline with the same shape
shares one compiled loop; all run-specific objects arrive through the
``pipeline`` argument.  :func:`specialization_key` answers ``None`` for
anything outside the validated envelope (third-party policy classes,
more threads than the unrolled samplers cover) — the caller falls back
to the python tier, never errors (see :mod:`repro.sim.kernels`).
"""

from __future__ import annotations

import operator
from heapq import heappush
from typing import NamedTuple, Optional, Tuple

from ..errors import DeadlockError, SimulationError
from ..isa import (IS_FP_BY_CODE, NO_REG, NUM_INT_ARCH_REGS,
                   OP_LATENCY_BY_CODE, OP_QUEUE_BY_CODE)
from .dyninst import DynInst, InstState
from .hookspec import kernel_covers_policy
from .regfile import NEVER
from .thread import ThreadMode, build_macro_plan
from .macro_jit import compile_macro_handler
from . import pipeline as pipeline_mod

#: Threads beyond this fall back to the python tier: the termination
#: test, stat sampler and rotation tables are unrolled per thread, and
#: the validated envelope (golden cells + fuzz suites) stops at 4.
MAX_THREADS = 8


class KernelKey(NamedTuple):
    """The machine shape a generated kernel is specialized for.

    Everything here is either an :class:`SMTConfig` scalar (immutable
    after construction) or a pipeline fact derived once in
    ``SMTPipeline.__init__`` from the policy class/knobs.  Two pipelines
    with equal keys can share one compiled kernel; nothing run-specific
    may appear here.  ``macro_spec``/``skip_enabled`` are technically
    mutable pipeline flags — the kernel resolver re-reads them per
    ``run()`` call, so flipping them between runs selects a different
    kernel rather than invalidating this one.
    """

    num_threads: int
    width: int
    fetch_threads: int
    fetch_buffer: int
    icache_latency: int
    dcache_latency: int
    l2_detect_latency: int
    rob_capacity: int
    iq_caps: Tuple[int, int, int]
    fu_caps: Tuple[int, int, int]
    uses_runahead: bool
    ra_fp_inval: bool
    macro_spec: bool
    has_on_cycle: bool
    has_macro_ok: bool
    skip_enabled: bool


def specialization_key(pipeline) -> Optional[KernelKey]:
    """The kernel key for this pipeline, or None if uncovered."""
    if not kernel_covers_policy(type(pipeline.policy)):
        return None
    if pipeline.num_threads > MAX_THREADS:
        return None
    fus = pipeline.fus
    queues = pipeline.queues
    return KernelKey(
        num_threads=pipeline.num_threads,
        width=pipeline._width,
        fetch_threads=pipeline._fetch_threads,
        fetch_buffer=pipeline._fetch_buffer_size,
        icache_latency=pipeline._icache_latency,
        dcache_latency=pipeline._dcache_latency,
        l2_detect_latency=pipeline._l2_detect_latency,
        rob_capacity=pipeline.rob.capacity,
        iq_caps=(queues[0].capacity, queues[1].capacity,
                 queues[2].capacity),
        fu_caps=(fus._capacity[0], fus._capacity[1], fus._capacity[2]),
        uses_runahead=pipeline._uses_runahead,
        ra_fp_inval=pipeline._ra_fp_inval,
        macro_spec=pipeline.macro_spec,
        has_on_cycle=pipeline._policy_on_cycle is not None,
        has_macro_ok=pipeline._macro_step_ok is not None,
        skip_enabled=bool(pipeline.cycle_skip and pipeline._policy_skip_ok),
    )


def kernel_namespace() -> dict:
    """The globals dict a generated kernel executes against.

    Shares the *same objects* the interpreter tier uses — enum members
    compare by identity, ``PLAN_MISSING`` is the pipeline module's
    sentinel, and the JIT thresholds are read through ``pipeline_mod``
    so tests that patch them reach compiled kernels too.
    """
    return {
        "DynInst": DynInst,
        "DeadlockError": DeadlockError,
        "SimulationError": SimulationError,
        "heappush": heappush,
        "OP_LATENCY_BY_CODE": OP_LATENCY_BY_CODE,
        "OP_QUEUE_BY_CODE": OP_QUEUE_BY_CODE,
        "IS_FP_BY_CODE": IS_FP_BY_CODE,
        "NO_REG": NO_REG,
        "NINT": NUM_INT_ARCH_REGS,
        "NEVER": NEVER,
        "DISPATCHED": InstState.DISPATCHED,
        "READY": InstState.READY,
        "ISSUED": InstState.ISSUED,
        "COMPLETED": InstState.COMPLETED,
        "RETIRED": InstState.RETIRED,
        "SQUASHED": InstState.SQUASHED,
        "RUNAHEAD_MODE": ThreadMode.RUNAHEAD,
        "NORMAL_MODE": ThreadMode.NORMAL,
        "PLAN_MISSING": pipeline_mod._PLAN_MISSING,
        "DEADLOCK_WINDOW": pipeline_mod._DEADLOCK_WINDOW,
        "build_macro_plan": build_macro_plan,
        "compile_macro_handler": compile_macro_handler,
        "pipeline_mod": pipeline_mod,
        "inst_age": operator.attrgetter("gseq"),
    }


def _rotation_expr(key: KernelKey) -> str:
    nt = key.num_threads
    if nt == 1:
        return "rot0"
    if nt & (nt - 1) == 0:
        return f"rotations[now & {nt - 1}]"
    return f"rotations[now % {nt}]"


def _emit_hoists(key: KernelKey, emit) -> None:
    """Per-run hoists: every object here is construction-stable (the
    attribute-stability audit in the PR notes; ``IssueQueue._ready`` is
    the one rebound attribute and is deliberately *not* hoisted)."""
    emit("    threads = pipeline.threads")
    for i in range(key.num_threads):
        emit(f"    t{i} = threads[{i}]")
        emit(f"    t{i}_stats = t{i}.stats")
        emit(f"    t{i}_held = t{i}.regs_held")
    if key.num_threads == 1:
        emit("    rot0 = pipeline._rotations[0]")
    else:
        emit("    rotations = pipeline._rotations")
    emit("    rob = pipeline.rob")
    emit("    rob_queues = rob._queues")
    emit("    rob_pt = rob.per_thread")
    emit("    queues = pipeline.queues")
    emit("    q0 = queues[0]")
    emit("    q1 = queues[1]")
    emit("    q2 = queues[2]")
    emit("    q0_pt = q0.per_thread")
    emit("    q1_pt = q1.per_thread")
    emit("    q2_pt = q2.per_thread")
    emit(f"    iq_caps = ({key.iq_caps[0]}, {key.iq_caps[1]}, "
         f"{key.iq_caps[2]})")
    emit("    int_file = pipeline.int_file")
    emit("    fp_file = pipeline.fp_file")
    emit("    available = pipeline.fus._available")
    emit("    issued = pipeline.fus.issued")
    emit("    events = pipeline._events")
    emit("    heap = pipeline._event_heap")
    emit("    fold_worklist = pipeline._fold_worklist")
    emit("    gstats = pipeline.gstats")
    emit("    mem = pipeline.mem")
    emit("    data_access = mem.data_access_packed")
    emit("    ifetch_packed = mem.ifetch_packed")
    emit("    predictor_predict = pipeline.predictor.predict")
    emit("    btb_lookup = pipeline.btb.lookup_and_insert")
    emit("    fetch_order = pipeline.policy.fetch_order")
    if key.has_on_cycle:
        emit("    policy_on_cycle = pipeline._policy_on_cycle")
    if key.has_macro_ok:
        emit("    macro_ok = pipeline._macro_step_ok")
    emit("    fold = pipeline._fold")
    emit("    drain_folds = pipeline._drain_folds")
    emit("    release_preg = pipeline._release_preg")
    emit("    resolve_mispred = pipeline._resolve_misprediction")
    emit("    on_l2_detected = pipeline._on_l2_detected")
    emit("    schedule = pipeline.schedule")
    if key.uses_runahead:
        emit("    runahead = pipeline.runahead")
        emit("    ra_exit = runahead.exit")
        emit("    should_enter = runahead.should_enter")
        emit("    on_runahead_store = runahead.on_runahead_store")
        emit("    ra_prefetch = runahead.prefetch")
        emit("    ra_stop_fetch = runahead.stop_fetch_on_l2_miss")
        emit("    load_forward = runahead.load_forward_validity")
        emit("    peek_data = mem.peek_data")
        emit("    enter_runahead = pipeline._enter_runahead")
    if key.skip_enabled:
        emit("    skip_target = pipeline._skip_target")
        emit("    skip_to = pipeline._skip_to")
    # Namespace constants pulled into fast locals.
    emit("    no_reg = NO_REG")
    emit("    nint = NINT")
    emit("    dispatched_state = DISPATCHED")
    emit("    ready_state = READY")
    emit("    issued_state = ISSUED")
    emit("    completed_state = COMPLETED")
    emit("    retired_state = RETIRED")
    if key.uses_runahead:
        emit("    ra_mode = RUNAHEAD_MODE")
        emit("    normal_mode = NORMAL_MODE")
    emit("    never = NEVER")
    if key.macro_spec:
        emit("    plan_missing = PLAN_MISSING")
    emit("    op_latency = OP_LATENCY_BY_CODE")
    emit("    op_queue = OP_QUEUE_BY_CODE")
    if key.uses_runahead:
        emit("    is_fp_code = IS_FP_BY_CODE")
    emit("    cycle = pipeline.cycle")


def _emit_events(key: KernelKey, emit) -> None:
    """Inlined ``_process_events``, call-elided on undue cycles.

    Elision soundness: a call with no bucket at ``now`` pops nothing,
    prunes only keys <= now (none exist unless ``heap[0] <= now``) and
    returns before the fold drain — so skipping it mutates nothing.
    """
    ur = key.uses_runahead
    emit("        if heap and heap[0] <= now:")
    emit("            bucket = events.pop(now, None)")
    emit("            while heap and heap[0] <= now and heap[0] not in events:")
    emit("                heap_pop(heap)")
    emit("            if bucket:")
    emit("                for kind, inst in bucket:")
    emit("                    state = inst.state")
    emit("                    if state == squashed_state or state == retired_state:")
    emit("                        continue")
    emit("                    if kind == 0:")
    emit("                        if state == issued_state:")
    emit("                            inst.state = completed_state")
    emit("                            thread = threads[inst.tid]")
    emit("                            if inst.l2_counted:")
    emit("                                inst.l2_counted = False")
    emit("                                thread.pending_l2_misses -= 1")
    emit("                            preg = inst.pdest")
    emit("                            if preg != no_reg:")
    emit("                                invalid = inst.invalid")
    emit("                                file = (int_file if inst.dest_arch < nint")
    emit("                                        else fp_file)")
    emit("                                file.ready[preg] = now")
    emit("                                file.inv[preg] = invalid")
    emit("                                woken = file.waiters[preg]")
    emit("                                if woken:")
    emit("                                    file.waiters[preg] = []")
    emit("                                    for waiter in woken:")
    emit("                                        if waiter.state != dispatched_state:")
    emit("                                            continue")
    emit("                                        if invalid:")
    emit("                                            if waiter.psrc1 == preg:")
    emit("                                                waiter.src_inv_mask |= 1")
    emit("                                            if waiter.psrc2 == preg:")
    emit("                                                waiter.src_inv_mask |= 2")
    emit("                                        pending = waiter.pending_srcs - 1")
    emit("                                        waiter.pending_srcs = pending")
    emit("                                        if pending > 0:")
    emit("                                            continue")
    emit("                                        wmask = waiter.src_inv_mask")
    emit("                                        if ((wmask & 1) if waiter.is_store")
    emit("                                                else wmask):")
    emit("                                            fold_worklist.append(waiter)")
    emit("                                        else:")
    emit("                                            waiter.state = ready_state")
    emit("                                            queues[op_queue[waiter.op]]"
         "._ready.append(waiter)")
    if ur:
        # Inlined _recycle_runahead_dest; inst.pdest == preg != NO_REG
        # holds here (guarded above), so the entry check is elided.
        emit("                                if invalid and thread.mode is ra_mode:")
        emit("                                    dest_arch = inst.dest_arch")
        emit("                                    if dest_arch < nint:")
        emit("                                        klass = 0")
        emit("                                        arch_index = dest_arch")
        emit("                                    else:")
        emit("                                        klass = 1")
        emit("                                        arch_index = dest_arch - nint")
        emit("                                    if not file.pinned[preg]:")
        emit("                                        front = thread.rename.front[klass]")
        emit("                                        if front[arch_index] == preg:")
        emit("                                            front[arch_index] = (thread")
        emit("                                                .rename.arch[klass]"
             "[arch_index])")
        emit("                                            if not file._allocated[preg]:")
        emit("                                                raise SimulationError(")
        emit("                                                    f\"{file.name}: double"
             " release of p{preg}\")")
        emit("                                            file._allocated[preg] = False")
        emit("                                            file.waiters[preg].clear()")
        emit("                                            file._free.append(preg)")
        emit("                                            thread.regs_held[klass] -= 1")
        emit("                                            thread.arch_inv[dest_arch]"
             " = invalid")
        emit("                                            inst.pdest = no_reg")
    emit("                            if (inst.is_branch and not inst.invalid")
    emit("                                    and inst.mispredicted):")
    emit("                                resolve_mispred(inst, now)")
    emit("                    elif kind == 1:")
    emit("                        if state < retired_state:")
    emit("                            on_l2_detected(inst, now)")
    emit("                if fold_worklist:")
    emit("                    drain_folds(now)")


def _emit_commit(key: KernelKey, emit) -> None:
    ur = key.uses_runahead
    emit(f"        commit_budget = {key.width}")
    emit(f"        for thread in {_rotation_expr(key)}:")
    if ur:
        emit("            if (thread.mode is ra_mode")
        emit("                    and now >= thread.runahead_trigger_ready):")
        emit("                ra_exit(thread, now)")
        emit("                continue")
    emit("            tid = thread.tid")
    emit("            window = rob_queues[tid]")
    emit("            if not window:")
    emit("                continue")
    emit("            stats = thread.stats")
    body_indent = "            "
    if ur:
        emit("            if thread.mode is normal_mode:")
        body_indent = "                "
    prefix = body_indent
    emit(prefix + "last_index = thread.last_index")
    emit(prefix + "rename = thread.rename")
    emit(prefix + "while commit_budget > 0 and window:")
    emit(prefix + "    head = window[0]")
    emit(prefix + "    if head.state == completed_state:")
    emit(prefix + "        window.popleft()")
    emit(prefix + "        rob._occupancy -= 1")
    emit(prefix + "        rob_pt[tid] -= 1")
    emit(prefix + "        head.state = retired_state")
    emit(prefix + "        thread.rob_held -= 1")
    emit(prefix + "        stats.committed += 1")
    emit(prefix + "        gstats.committed += 1")
    emit(prefix + "        pipeline._last_commit_cycle = now")
    emit(prefix + "        commit_budget -= 1")
    emit(prefix + "        dest_arch = head.dest_arch")
    emit(prefix + "        if head.pdest != no_reg:")
    emit(prefix + "            if dest_arch < nint:")
    emit(prefix + "                klass = 0")
    emit(prefix + "                arch_index = dest_arch")
    emit(prefix + "            else:")
    emit(prefix + "                klass = 1")
    emit(prefix + "                arch_index = dest_arch - nint")
    emit(prefix + "            old = rename.commit_dest(")
    emit(prefix + "                klass, arch_index, head.pdest)")
    emit(prefix + "            if old != head.pdest:")
    emit(prefix + "                release_preg(thread, klass, old)")
    emit(prefix + "        if head.is_store:")
    emit(prefix + "            data_access(head.addr, True, now, tid)")
    emit(prefix + "        if head.trace_index == last_index:")
    emit(prefix + "            thread.finished_passes += 1")
    emit(prefix + "            stats.passes += 1")
    if ur:
        emit(prefix + "    elif (head.l2_miss")
        emit(prefix + "          and should_enter(thread, head, now)):")
        emit(prefix + "        enter_runahead(thread, head, now)")
        emit(prefix + "        commit_budget -= 1")
        emit(prefix + "        break")
    emit(prefix + "    else:")
    emit(prefix + "        break")
    if ur:
        emit("            else:")
        emit("                while commit_budget > 0 and window:")
        emit("                    head = window[0]")
        emit("                    if head.state != completed_state:")
        emit("                        break")
        emit("                    window.popleft()")
        emit("                    rob._occupancy -= 1")
        emit("                    rob_pt[tid] -= 1")
        emit("                    head.state = retired_state")
        emit("                    thread.rob_held -= 1")
        emit("                    stats.pseudo_retired += 1")
        emit("                    pipeline._last_commit_cycle = now")
        emit("                    commit_budget -= 1")
        emit("                    dest_arch = head.dest_arch")
        emit("                    if dest_arch == no_reg:")
        emit("                        continue")
        emit("                    if dest_arch < nint:")
        emit("                        klass = 0")
        emit("                        file = int_file")
        emit("                    else:")
        emit("                        klass = 1")
        emit("                        file = fp_file")
        emit("                    old = head.old_pdest")
        emit("                    if old != no_reg and not file.pinned[old]:")
        emit("                        if not file._allocated[old]:")
        emit("                            raise SimulationError(")
        emit("                                f\"{file.name}: double release of p{old}\")")
        emit("                        file._allocated[old] = False")
        emit("                        file.waiters[old].clear()")
        emit("                        file._free.append(old)")
        emit("                        thread.regs_held[klass] -= 1")
        # Inlined _recycle_runahead_dest: klass/file/arch_index reuse the
        # values just computed for the old_pdest release above.
        emit("                    preg = head.pdest")
        emit("                    if preg != no_reg and not file.pinned[preg]:")
        emit("                        arch_index = (dest_arch if klass == 0")
        emit("                                      else dest_arch - nint)")
        emit("                        front = thread.rename.front[klass]")
        emit("                        if front[arch_index] == preg:")
        emit("                            front[arch_index] = (")
        emit("                                thread.rename.arch[klass][arch_index])")
        emit("                            if not file._allocated[preg]:")
        emit("                                raise SimulationError(")
        emit("                                    f\"{file.name}: double release"
             " of p{preg}\")")
        emit("                            file._allocated[preg] = False")
        emit("                            file.waiters[preg].clear()")
        emit("                            file._free.append(preg)")
        emit("                            thread.regs_held[klass] -= 1")
        emit("                            thread.arch_inv[dest_arch] = head.invalid")
        emit("                            head.pdest = no_reg")
    emit("            if commit_budget <= 0:")
    emit("                break")


def _emit_issue_queue(key: KernelKey, emit, qk: int) -> None:
    """One unrolled issue-queue block (``take_ready`` + issue inlined).

    The FU-kind lookup ``OP_FU_BY_CODE[inst.op]`` is folded to the
    queue-kind literal: the OP_QUEUE/OP_FU tables coincide per op code
    (asserted at import by :mod:`repro.core.kernel_cache`).
    """
    ur = key.uses_runahead
    q = f"q{qk}"
    emit(f"        ready = {q}._ready")
    emit("        if ready:")
    emit(f"            limit = available[{qk}]")
    emit("            if limit > 0:")
    emit("                for inst in ready:")
    emit("                    if inst.state != ready_state:")
    emit("                        live = [inst for inst in ready")
    emit("                                if inst.state == ready_state]")
    emit(f"                        {q}._ready = live")
    emit("                        break")
    emit("                else:")
    emit("                    live = ready")
    emit("                if live:")
    emit("                    if len(live) > limit:")
    emit("                        live.sort(key=inst_age)")
    emit("                        selected = live[:limit]")
    emit(f"                        {q}._ready = live[limit:]")
    emit("                    else:")
    emit("                        selected = live")
    emit(f"                        {q}._ready = []")
    emit(f"                    if {q}._replay_blocked:")
    emit("                        for inst in selected:")
    emit("                            if inst.replay:")
    emit("                                inst.replay = False")
    emit(f"                                {q}._replay_blocked -= 1")
    emit("                    for inst in selected:")
    emit("                        tid = inst.tid")
    emit("                        thread = threads[tid]")
    emit("                        if inst.is_load:")
    load_indent = "                            "
    if ur:
        # Inlined _issue_runahead_load (dcache/L2-detect latencies folded;
        # gate_fetch_until is a max-update, inlined too).
        emit("                            if thread.mode is ra_mode:")
        r = "                                "
        emit(r + "forwarded = load_forward(thread, inst)")
        emit(r + "if forwarded is not None:")
        emit(r + "    inst.invalid = not forwarded")
        emit(r + f"    ccycle = now + {key.dcache_latency}")
        emit(r + "elif not ra_prefetch:")
        emit(r + "    level = peek_data(inst.addr)")
        emit(r + "    if level == \"l1\":")
        emit(r + f"        ccycle = now + {key.dcache_latency}")
        emit(r + "    elif level == \"l2\":")
        emit(r + f"        ccycle = now + {key.l2_detect_latency}")
        emit(r + "    else:")
        emit(r + "        inst.invalid = True")
        emit(r + f"        ccycle = now + {key.l2_detect_latency}")
        emit(r + "        thread.no_retrigger.add(")
        emit(r + "            inst.pass_no * thread.retrigger_stride")
        emit(r + "            + inst.trace_index)")
        emit(r + "else:")
        emit(r + "    packed = data_access(inst.addr, False, now,")
        emit(r + "                         tid, speculative=True)")
        emit(r + "    if packed < 0:")
        emit(r + "        inst.invalid = True")
        emit(r + f"        ccycle = now + {key.dcache_latency}")
        emit(r + "    elif packed & 2:")
        emit(r + "        inst.invalid = True")
        emit(r + f"        ccycle = min(packed >> 2, now + {key.l2_detect_latency})")
        emit(r + "        if ra_stop_fetch:")
        emit(r + "            trigger = thread.runahead_trigger_ready")
        emit(r + "            if trigger > thread.fetch_gated_until:")
        emit(r + "                thread.fetch_gated_until = trigger")
        emit(r + "    else:")
        emit(r + "        ccycle = packed >> 2")
        emit(r + "inst.complete_cycle = ccycle")
        emit(r + "bucket = events.get(ccycle)")
        emit(r + "if bucket is None:")
        emit(r + "    events[ccycle] = [(0, inst)]")
        emit(r + "    heappush(heap, ccycle)")
        emit(r + "else:")
        emit(r + "    bucket.append((0, inst))")
        emit("                            else:")
        load_indent = "                                "
    p = load_indent
    emit(p + "packed = data_access(inst.addr, False, now, tid)")
    emit(p + "if packed < 0:")
    emit(p + f"    {q}.requeue(inst, replay=True)")
    emit(p + "    continue")
    emit(p + "ccycle = packed >> 2")
    emit(p + "inst.complete_cycle = ccycle")
    emit(p + "bucket = events.get(ccycle)")
    emit(p + "if bucket is None:")
    emit(p + "    events[ccycle] = [(0, inst)]")
    emit(p + "    heappush(heap, ccycle)")
    emit(p + "else:")
    emit(p + "    bucket.append((0, inst))")
    emit(p + "if packed & 2:")
    emit(p + f"    detect = min(ccycle, now + {key.l2_detect_latency})")
    emit(p + "    schedule(detect, 1, inst)")
    emit("                        elif inst.is_store:")
    emit("                            ccycle = now + 1")
    emit("                            inst.complete_cycle = ccycle")
    emit("                            bucket = events.get(ccycle)")
    emit("                            if bucket is None:")
    emit("                                events[ccycle] = [(0, inst)]")
    emit("                                heappush(heap, ccycle)")
    emit("                            else:")
    emit("                                bucket.append((0, inst))")
    if ur:
        emit("                            if thread.mode is ra_mode:")
        emit("                                data_valid = not (inst.src_inv_mask & 2)")
        emit("                                on_runahead_store(thread, inst, data_valid)")
        emit("                                if ra_prefetch:")
        emit("                                    data_access(inst.addr, True, now,")
        emit("                                                tid, speculative=True)")
    emit("                        else:")
    emit("                            ccycle = now + op_latency[inst.op]")
    emit("                            inst.complete_cycle = ccycle")
    emit("                            bucket = events.get(ccycle)")
    emit("                            if bucket is None:")
    emit("                                events[ccycle] = [(0, inst)]")
    emit("                                heappush(heap, ccycle)")
    emit("                            else:")
    emit("                                bucket.append((0, inst))")
    emit(f"                        available[{qk}] -= 1")
    emit(f"                        issued[{qk}] += 1")
    emit("                        inst.state = issued_state")
    emit("                        inst.in_iq = False")
    emit(f"                        {q}.size -= 1")
    emit(f"                        {q}_pt[tid] -= 1")
    emit("                        if inst.counted:")
    emit("                            inst.counted = False")
    emit("                            thread.icount -= 1")
    emit("                        stats = thread.stats")
    emit("                        stats.issued += 1")
    emit("                        stats.executed += 1")
    emit("                        gstats.executed += 1")


def _emit_issue(key: KernelKey, emit) -> None:
    """The full issue stage: one unrolled block per queue, MEM first
    (matching ``_issue_stage``'s (2, 0, 1) order), then the fold drain."""
    for qk in (2, 0, 1):
        _emit_issue_queue(key, emit, qk)
    emit("        if fold_worklist:")
    emit("            drain_folds(now)")


def _emit_macro(key: KernelKey, emit) -> None:
    """Inlined ``_macro_dispatch``: guards, JIT tiers, both fused loops.

    Structured as a single-pass ``while plan is not None`` block so
    every abort path can ``break`` to the per-instruction fallback, the
    exact fall-through semantics of the out-of-line version.
    """
    ur_drop = key.uses_runahead and key.ra_fp_inval
    emit("            if dispatch_budget > 1 and len(fetch_queue) > 1:")
    emit("                taken = 0")
    emit("                start = fetch_queue[0].trace_index")
    emit("                plans = thread.macro_plans")
    emit("                plan = plans.get(start, plan_missing)")
    emit("                if plan is plan_missing:")
    emit(f"                    plan = build_macro_plan(thread, start, {key.width})")
    emit("                    plans[start] = plan")
    emit("                while plan is not None:")
    emit("                    k = plan.length")
    emit("                    qlen = len(fetch_queue)")
    emit("                    if qlen < k:")
    emit("                        k = qlen")
    emit("                    if dispatch_budget < k:")
    emit("                        k = dispatch_budget")
    emit(f"                    headroom = {key.rob_capacity} - rob._occupancy")
    emit("                    if headroom < k:")
    emit("                        if headroom < 2:")
    emit("                            gstats.macro_guard_aborts += 1")
    emit("                            causes = gstats.macro_abort_causes")
    emit("                            causes[\"rob\"] = causes.get(\"rob\", 0) + 1")
    emit("                            break")
    emit("                        k = headroom")
    if ur_drop:
        emit("                    drop_active = thread.mode is ra_mode")
        emit("                    demands = (plan.runahead_demand if drop_active")
        emit("                               else plan.normal_demand)")
    else:
        emit("                    demands = plan.normal_demand")
    emit(f"                    room_q0 = {key.iq_caps[0]} - q0.size")
    emit(f"                    room_q1 = {key.iq_caps[1]} - q1.size")
    emit(f"                    room_q2 = {key.iq_caps[2]} - q2.size")
    emit("                    room_d0 = len(int_file._free)")
    emit("                    room_d1 = len(fp_file._free)")
    emit("                    need_q0, need_q1, need_q2, need_d0, need_d1 = demands[k]")
    emit("                    if (need_q0 > room_q0 or need_q1 > room_q1")
    emit("                            or need_q2 > room_q2 or need_d0 > room_d0")
    emit("                            or need_d1 > room_d1):")
    emit("                        while k > 2:")
    emit("                            k -= 1")
    emit("                            need_q0, need_q1, need_q2, need_d0, need_d1 = \\")
    emit("                                demands[k]")
    emit("                            if (need_q0 <= room_q0 and need_q1 <= room_q1")
    emit("                                    and need_q2 <= room_q2")
    emit("                                    and need_d0 <= room_d0")
    emit("                                    and need_d1 <= room_d1):")
    emit("                                break")
    emit("                        else:")
    emit("                            cause = (\"iq\" if (need_q0 > room_q0")
    emit("                                              or need_q1 > room_q1")
    emit("                                              or need_q2 > room_q2)")
    emit("                                     else \"regfile\")")
    emit("                            gstats.macro_guard_aborts += 1")
    emit("                            causes = gstats.macro_abort_causes")
    emit("                            causes[cause] = causes.get(cause, 0) + 1")
    emit("                            break")
    if key.has_macro_ok:
        emit("                    if not macro_ok(thread, k, now):")
        emit("                        gstats.macro_guard_aborts += 1")
        emit("                        causes = gstats.macro_abort_causes")
        emit("                        causes[\"policy\"] = causes.get(\"policy\", 0) + 1")
        emit("                        break")
    emit("                    if fetch_queue[k - 1].trace_index != start + k - 1:")
    emit("                        gstats.macro_guard_aborts += 1")
    emit("                        causes = gstats.macro_abort_causes")
    emit("                        causes[\"desync\"] = causes.get(\"desync\", 0) + 1")
    emit("                        break")
    # --- JIT tiers (thresholds read through pipeline_mod so patched
    # test values reach compiled kernels too) ---
    drop_expr = "drop_active" if ur_drop else "False"
    emit("                    if k == plan.length:")
    if ur_drop:
        emit("                        if drop_active:")
        emit("                            handler = plan.jit_runahead")
        emit("                            if handler is None:")
        emit("                                hits = plan.hot_runahead = \\")
        emit("                                    plan.hot_runahead + 1")
        emit("                                if hits >= pipeline_mod._JIT_THRESHOLD:")
        emit("                                    handler = plan.jit_runahead = (")
        emit("                                        compile_macro_handler(plan, True))")
        emit("                        else:")
        emit("                            handler = plan.jit_normal")
        emit("                            if handler is None:")
        emit("                                hits = plan.hot_normal = \\")
        emit("                                    plan.hot_normal + 1")
        emit("                                if hits >= pipeline_mod._JIT_THRESHOLD:")
        emit("                                    handler = plan.jit_normal = (")
        emit("                                        compile_macro_handler(plan, False))")
    else:
        emit("                        handler = plan.jit_normal")
        emit("                        if handler is None:")
        emit("                            hits = plan.hot_normal = plan.hot_normal + 1")
        emit("                            if hits >= pipeline_mod._JIT_THRESHOLD:")
        emit("                                handler = plan.jit_normal = (")
        emit("                                    compile_macro_handler(plan, False))")
    emit("                        if handler is not None:")
    emit("                            taken = handler(pipeline, thread, fetch_queue, now)")
    emit("                            break")
    emit("                    else:")
    if ur_drop:
        emit("                        prefix_key = ((k << 1) | 1 if drop_active")
        emit("                                      else k << 1)")
    else:
        emit("                        prefix_key = k << 1")
    emit("                        handler = plan.jit_prefix.get(prefix_key)")
    emit("                        if handler is None:")
    emit("                            hits = plan.hot_prefix.get(prefix_key, 0) + 1")
    emit("                            if hits >= pipeline_mod._PREFIX_JIT_THRESHOLD:")
    emit("                                handler = plan.jit_prefix[prefix_key] = (")
    emit(f"                                    compile_macro_handler(plan, {drop_expr}, k))")
    emit("                            else:")
    emit("                                plan.hot_prefix[prefix_key] = hits")
    emit("                        if handler is not None:")
    emit("                            taken = handler(pipeline, thread, fetch_queue, now)")
    emit("                            break")
    # --- generic fused tier ---
    emit("                    rob_queue = rob_queues[tid]")
    emit("                    rename = thread.rename")
    emit("                    front0 = rename.front[0]")
    emit("                    front1 = rename.front[1]")
    emit("                    arch_inv = thread.arch_inv")
    emit("                    stats = thread.stats")
    emit("                    plan_queues = plan.queues")
    emit("                    plan_store = plan.is_store")
    emit("                    plan_dest = plan.dest")
    emit("                    plan_dk = plan.dest_klass")
    emit("                    plan_dai = plan.dest_aidx")
    emit("                    plan_s1 = plan.src1")
    emit("                    plan_s2 = plan.src2")
    emit("                    popleft = fetch_queue.popleft")
    emit("                    alloc_int = 0")
    emit("                    alloc_fp = 0")
    if ur_drop:
        emit("                    if drop_active:")
        emit("                        plan_fp = plan.is_fp")
        emit("                        arch0 = rename.arch[0]")
        emit("                        arch1 = rename.arch[1]")
        emit("                        for position in range(k):")
        emit("                            inst = popleft()")
        emit("                            rob_queue.append(inst)")
        emit("                            if plan_fp[position]:")
        emit("                                inst.state = completed_state")
        emit("                                inst.invalid = True")
        emit("                                inst.complete_cycle = now")
        emit("                                if inst.counted:")
        emit("                                    inst.counted = False")
        emit("                                    thread.icount -= 1")
        emit("                                dest_arch = plan_dest[position]")
        emit("                                if dest_arch >= 0:")
        emit("                                    arch_inv[dest_arch] = True")
        emit("                                stats.folded += 1")
        emit("                                continue")
        emit("                            inst.state = dispatched_state")
        emit("                            pending = 0")
        emit("                            mask = 0")
        emit("                            arch = plan_s1[position]")
        emit("                            if arch >= 0:")
        emit("                                if arch_inv[arch]:")
        emit("                                    mask = 1")
        emit("                                else:")
        emit("                                    if arch < nint:")
        emit("                                        file = int_file")
        emit("                                        preg = front0[arch]")
        emit("                                    else:")
        emit("                                        file = fp_file")
        emit("                                        preg = front1[arch - nint]")
        emit("                                    inst.psrc1 = preg")
        emit("                                    if file.ready[preg] <= now:")
        emit("                                        if file.inv[preg]:")
        emit("                                            mask = 1")
        emit("                                    else:")
        emit("                                        file.waiters[preg].append(inst)")
        emit("                                        pending = 1")
        emit("                            arch = plan_s2[position]")
        emit("                            if arch >= 0:")
        emit("                                if arch_inv[arch]:")
        emit("                                    mask |= 2")
        emit("                                else:")
        emit("                                    if arch < nint:")
        emit("                                        file = int_file")
        emit("                                        preg = front0[arch]")
        emit("                                    else:")
        emit("                                        file = fp_file")
        emit("                                        preg = front1[arch - nint]")
        emit("                                    inst.psrc2 = preg")
        emit("                                    if file.ready[preg] <= now:")
        emit("                                        if file.inv[preg]:")
        emit("                                            mask |= 2")
        emit("                                    else:")
        emit("                                        file.waiters[preg].append(inst)")
        emit("                                        pending += 1")
        emit("                            if pending == 0 and ((mask & 1)")
        emit("                                    if plan_store[position] else mask):")
        emit("                                inst.src_inv_mask = mask")
        emit("                                inst.invalid = True")
        emit("                                inst.state = completed_state")
        emit("                                inst.complete_cycle = now")
        emit("                                if inst.counted:")
        emit("                                    inst.counted = False")
        emit("                                    thread.icount -= 1")
        emit("                                stats.folded += 1")
        emit("                                dest_arch = plan_dest[position]")
        emit("                                if dest_arch >= 0:")
        emit("                                    if plan_dk[position] == 0:")
        emit("                                        file = int_file")
        emit("                                        fmap = front0")
        emit("                                        amap = arch0")
        emit("                                    else:")
        emit("                                        file = fp_file")
        emit("                                        fmap = front1")
        emit("                                        amap = arch1")
        emit("                                    free = file._free")
        emit("                                    preg = free[-1]")
        emit("                                    used = file.size - len(free) + 1")
        emit("                                    if used > file.high_water:")
        emit("                                        file.high_water = used")
        emit("                                    file.ready[preg] = now")
        emit("                                    file.inv[preg] = True")
        emit("                                    arch_index = plan_dai[position]")
        emit("                                    inst.old_pdest = fmap[arch_index]")
        emit("                                    fmap[arch_index] = amap[arch_index]")
        emit("                                    arch_inv[dest_arch] = True")
        emit("                                continue")
        emit("                            if pending:")
        emit("                                inst.pending_srcs = pending")
        emit("                            if mask:")
        emit("                                inst.src_inv_mask = mask")
        emit("                            dest_arch = plan_dest[position]")
        emit("                            if dest_arch >= 0:")
        emit("                                if plan_dk[position] == 0:")
        emit("                                    file = int_file")
        emit("                                    fmap = front0")
        emit("                                    alloc_int += 1")
        emit("                                else:")
        emit("                                    file = fp_file")
        emit("                                    fmap = front1")
        emit("                                    alloc_fp += 1")
        emit("                                free = file._free")
        emit("                                preg = free.pop()")
        emit("                                file._allocated[preg] = True")
        emit("                                file.ready[preg] = never")
        emit("                                file.inv[preg] = False")
        emit("                                file.pinned[preg] = False")
        emit("                                used = file.size - len(free)")
        emit("                                if used > file.high_water:")
        emit("                                    file.high_water = used")
        emit("                                arch_index = plan_dai[position]")
        emit("                                inst.pdest = preg")
        emit("                                inst.old_pdest = fmap[arch_index]")
        emit("                                fmap[arch_index] = preg")
        emit("                                arch_inv[dest_arch] = False")
        emit("                            queue = queues[plan_queues[position]]")
        emit("                            queue.size += 1")
        emit("                            queue.per_thread[tid] += 1")
        emit("                            inst.in_iq = True")
        emit("                            if pending == 0:")
        emit("                                inst.state = ready_state")
        emit("                                queue._ready.append(inst)")
        normal_indent = "                    else:"
        emit(normal_indent)
        loop_prefix = "                        "
    else:
        loop_prefix = "                    "
    emit(loop_prefix + "for position in range(k):")
    p = loop_prefix + "    "
    emit(p + "inst = popleft()")
    emit(p + "rob_queue.append(inst)")
    emit(p + "inst.state = dispatched_state")
    emit(p + "pending = 0")
    emit(p + "mask = 0")
    emit(p + "arch = plan_s1[position]")
    emit(p + "if arch >= 0:")
    emit(p + "    if arch_inv[arch]:")
    emit(p + "        mask = 1")
    emit(p + "    else:")
    emit(p + "        if arch < nint:")
    emit(p + "            file = int_file")
    emit(p + "            preg = front0[arch]")
    emit(p + "        else:")
    emit(p + "            file = fp_file")
    emit(p + "            preg = front1[arch - nint]")
    emit(p + "        inst.psrc1 = preg")
    emit(p + "        if file.ready[preg] <= now:")
    emit(p + "            if file.inv[preg]:")
    emit(p + "                mask = 1")
    emit(p + "        else:")
    emit(p + "            file.waiters[preg].append(inst)")
    emit(p + "            pending = 1")
    emit(p + "arch = plan_s2[position]")
    emit(p + "if arch >= 0:")
    emit(p + "    if arch_inv[arch]:")
    emit(p + "        mask |= 2")
    emit(p + "    else:")
    emit(p + "        if arch < nint:")
    emit(p + "            file = int_file")
    emit(p + "            preg = front0[arch]")
    emit(p + "        else:")
    emit(p + "            file = fp_file")
    emit(p + "            preg = front1[arch - nint]")
    emit(p + "        inst.psrc2 = preg")
    emit(p + "        if file.ready[preg] <= now:")
    emit(p + "            if file.inv[preg]:")
    emit(p + "                mask |= 2")
    emit(p + "        else:")
    emit(p + "            file.waiters[preg].append(inst)")
    emit(p + "            pending += 1")
    emit(p + "if pending:")
    emit(p + "    inst.pending_srcs = pending")
    emit(p + "if mask:")
    emit(p + "    inst.src_inv_mask = mask")
    emit(p + "dest_arch = plan_dest[position]")
    emit(p + "if dest_arch >= 0:")
    emit(p + "    if plan_dk[position] == 0:")
    emit(p + "        file = int_file")
    emit(p + "        fmap = front0")
    emit(p + "        alloc_int += 1")
    emit(p + "    else:")
    emit(p + "        file = fp_file")
    emit(p + "        fmap = front1")
    emit(p + "        alloc_fp += 1")
    emit(p + "    free = file._free")
    emit(p + "    preg = free.pop()")
    emit(p + "    file._allocated[preg] = True")
    emit(p + "    file.ready[preg] = never")
    emit(p + "    file.inv[preg] = False")
    emit(p + "    file.pinned[preg] = False")
    emit(p + "    used = file.size - len(free)")
    emit(p + "    if used > file.high_water:")
    emit(p + "        file.high_water = used")
    emit(p + "    arch_index = plan_dai[position]")
    emit(p + "    inst.pdest = preg")
    emit(p + "    inst.old_pdest = fmap[arch_index]")
    emit(p + "    fmap[arch_index] = preg")
    emit(p + "    arch_inv[dest_arch] = False")
    emit(p + "if pending == 0:")
    emit(p + "    if (mask & 1) if plan_store[position] else mask:")
    emit(p + "        fold(inst, now)")
    emit(p + "        continue")
    emit(p + "    queue = queues[plan_queues[position]]")
    emit(p + "    queue.size += 1")
    emit(p + "    queue.per_thread[tid] += 1")
    emit(p + "    inst.in_iq = True")
    emit(p + "    inst.state = ready_state")
    emit(p + "    queue._ready.append(inst)")
    emit(p + "else:")
    emit(p + "    queue = queues[plan_queues[position]]")
    emit(p + "    queue.size += 1")
    emit(p + "    queue.per_thread[tid] += 1")
    emit(p + "    inst.in_iq = True")
    # --- batched counters ---
    emit("                    rob._occupancy += k")
    emit("                    rob_pt[tid] += k")
    emit("                    thread.rob_held += k")
    emit("                    stats.dispatched += k")
    emit("                    if alloc_int:")
    emit("                        thread.regs_held[0] += alloc_int")
    emit("                    if alloc_fp:")
    emit("                        thread.regs_held[1] += alloc_fp")
    emit("                    gstats.macro_steps += 1")
    emit("                    gstats.macro_insts += k")
    emit("                    taken = k")
    emit("                    break")
    emit("                if taken:")
    emit("                    dispatch_budget -= taken")
    emit("                    if dispatch_budget <= 0:")
    emit("                        break")


def _emit_dispatch(key: KernelKey, emit) -> None:
    """Dispatch stage with ``_dispatch`` itself transcribed inline.

    The per-thread rename hoists (``front0``/``front1``/``arch_inv``) are
    sound within the stage: runahead entry/exit — the only events that
    swap a thread's rename maps — happen at commit, earlier in the same
    cycle, never between two dispatches of one stage pass.
    """
    ur = key.uses_runahead
    sync = pipeline_mod._SYNC_CODE
    emit(f"        dispatch_budget = {key.width}")
    emit(f"        for thread in {_rotation_expr(key)}:")
    emit("            fetch_queue = thread.fetch_queue")
    emit("            tid = thread.tid")
    if key.macro_spec:
        _emit_macro(key, emit)
    emit("            if dispatch_budget > 0 and fetch_queue:")
    emit("                robq = rob_queues[tid]")
    emit("                stats = thread.stats")
    emit("                arch_inv = thread.arch_inv")
    emit("                front = thread.rename.front")
    emit("                front0 = front[0]")
    emit("                front1 = front[1]")
    emit("                while dispatch_budget > 0 and fetch_queue:")
    emit(f"                    if rob._occupancy >= {key.rob_capacity}:")
    emit("                        gstats.dispatch_stalls += 1")
    emit("                        break")
    emit("                    inst = fetch_queue[0]")
    emit("                    op = inst.op")
    if ur:
        if key.ra_fp_inval:
            emit("                    if thread.mode is ra_mode and (")
            emit(f"                            is_fp_code[op] or op == {sync}):")
        else:
            emit(f"                    if thread.mode is ra_mode and op == {sync}:")
        emit("                        robq.append(inst)")
        emit("                        rob._occupancy += 1")
        emit("                        rob_pt[tid] += 1")
        emit("                        thread.rob_held += 1")
        emit("                        inst.state = completed_state")
        emit("                        inst.invalid = True")
        emit("                        inst.complete_cycle = now")
        emit("                        if inst.counted:")
        emit("                            inst.counted = False")
        emit("                            thread.icount -= 1")
        if key.ra_fp_inval:
            emit("                        if (is_fp_code[op]")
            emit("                                and inst.dest_arch != no_reg):")
            emit("                            arch_inv[inst.dest_arch] = True")
        emit("                        stats.dispatched += 1")
        emit("                        stats.folded += 1")
        emit("                        fetch_queue.popleft()")
        emit("                        dispatch_budget -= 1")
        emit("                        continue")
    emit("                    qk = op_queue[op]")
    emit("                    queue = queues[qk]")
    emit("                    if queue.size >= iq_caps[qk]:")
    emit("                        gstats.dispatch_stalls += 1")
    emit("                        break")
    emit("                    dest_arch = inst.dest_arch")
    emit("                    if dest_arch != no_reg:")
    emit("                        dest_file = (int_file if dest_arch < nint")
    emit("                                     else fp_file)")
    emit("                        if not dest_file._free:")
    emit("                            gstats.dispatch_stalls += 1")
    emit("                            break")
    emit("                    else:")
    emit("                        dest_file = None")
    emit("                    robq.append(inst)")
    emit("                    rob._occupancy += 1")
    emit("                    rob_pt[tid] += 1")
    emit("                    thread.rob_held += 1")
    emit("                    inst.state = dispatched_state")
    emit("                    stats.dispatched += 1")
    emit("                    pending = 0")
    emit("                    arch = inst.src1_arch")
    emit("                    if arch != no_reg:")
    emit("                        if arch_inv[arch]:")
    emit("                            inst.src_inv_mask |= 1")
    emit("                        else:")
    emit("                            if arch < nint:")
    emit("                                file = int_file")
    emit("                                preg = front0[arch]")
    emit("                            else:")
    emit("                                file = fp_file")
    emit("                                preg = front1[arch - nint]")
    emit("                            inst.psrc1 = preg")
    emit("                            if file.ready[preg] <= now:")
    emit("                                if file.inv[preg]:")
    emit("                                    inst.src_inv_mask |= 1")
    emit("                            else:")
    emit("                                file.waiters[preg].append(inst)")
    emit("                                pending += 1")
    emit("                    arch = inst.src2_arch")
    emit("                    if arch != no_reg:")
    emit("                        if arch_inv[arch]:")
    emit("                            inst.src_inv_mask |= 2")
    emit("                        else:")
    emit("                            if arch < nint:")
    emit("                                file = int_file")
    emit("                                preg = front0[arch]")
    emit("                            else:")
    emit("                                file = fp_file")
    emit("                                preg = front1[arch - nint]")
    emit("                            inst.psrc2 = preg")
    emit("                            if file.ready[preg] <= now:")
    emit("                                if file.inv[preg]:")
    emit("                                    inst.src_inv_mask |= 2")
    emit("                            else:")
    emit("                                file.waiters[preg].append(inst)")
    emit("                                pending += 1")
    emit("                    inst.pending_srcs = pending")
    emit("                    if dest_file is not None:")
    emit("                        free = dest_file._free")
    emit("                        preg = free.pop()")
    emit("                        dest_file._allocated[preg] = True")
    emit("                        dest_file.ready[preg] = never")
    emit("                        dest_file.inv[preg] = False")
    emit("                        dest_file.pinned[preg] = False")
    emit("                        used = dest_file.size - len(free)")
    emit("                        if used > dest_file.high_water:")
    emit("                            dest_file.high_water = used")
    emit("                        if dest_arch < nint:")
    emit("                            klass = 0")
    emit("                            arch_index = dest_arch")
    emit("                            fmap = front0")
    emit("                        else:")
    emit("                            klass = 1")
    emit("                            arch_index = dest_arch - nint")
    emit("                            fmap = front1")
    emit("                        inst.pdest = preg")
    emit("                        inst.old_pdest = fmap[arch_index]")
    emit("                        fmap[arch_index] = preg")
    emit("                        thread.regs_held[klass] += 1")
    emit("                        arch_inv[dest_arch] = False")
    emit("                    queue.size += 1")
    emit("                    queue.per_thread[tid] += 1")
    emit("                    inst.in_iq = True")
    emit("                    if pending == 0:")
    emit("                        mask = inst.src_inv_mask")
    emit("                        if (mask & 1) if inst.is_store else mask:")
    emit("                            fold(inst, now)")
    emit("                        else:")
    emit("                            inst.state = ready_state")
    emit("                            queue._ready.append(inst)")
    emit("                    fetch_queue.popleft()")
    emit("                    dispatch_budget -= 1")
    emit("            if dispatch_budget <= 0:")
    emit("                break")
    emit("        if fold_worklist:")
    emit("            drain_folds(now)")


def _emit_fetch(key: KernelKey, emit) -> None:
    ur = key.uses_runahead
    emit("        order = fetch_order(now)")
    emit("        fetched_total = 0")
    emit("        threads_used = 0")
    emit("        for tid in order:")
    emit(f"            if threads_used >= {key.fetch_threads}:")
    emit("                break")
    emit(f"            if fetched_total >= {key.width}:")
    emit("                break")
    emit("            thread = threads[tid]")
    emit("            if (now < thread.fetch_blocked_until")
    emit("                    or now < thread.fetch_gated_until):")
    emit("                gstats.fetch_conflicts += 1")
    emit("                continue")
    emit("            fetch_queue = thread.fetch_queue")
    emit(f"            buffer_room = {key.fetch_buffer} - len(fetch_queue)")
    emit("            if buffer_room <= 0:")
    emit("                continue")
    emit(f"            limit = {key.width} - fetched_total")
    emit("            if buffer_room < limit:")
    emit("                limit = buffer_room")
    emit("            count = 0")
    emit(f"            icache_done = now + {key.icache_latency}")
    emit("            stats = thread.stats")
    emit("            gseq = pipeline._gseq")
    emit("            pcs_off = thread.pcs_off")
    emit("            lines = thread.fetch_lines")
    emit("            ops = thread.ops")
    emit("            dests = thread.dests")
    emit("            src1s = thread.src1s")
    emit("            src2s = thread.src2s")
    emit("            addrs = thread.addrs")
    emit("            takens = thread.takens")
    emit("            data_base = thread.data_base")
    emit("            pass_stride = thread._pass_stride")
    emit("            data_region = thread.data_region")
    emit("            trace_len = len(ops)")
    if ur:
        emit("            in_runahead = thread.mode is ra_mode")
    emit("            seq = thread.seq")
    emit("            cursor = thread.cursor")
    emit("            append = fetch_queue.append")
    emit("            while count < limit:")
    emit("                line = lines[cursor]")
    emit("                if line != thread.fetch_line:")
    if ur:
        emit("                    complete = ifetch_packed(")
        emit("                        pcs_off[cursor], now, tid,")
        emit("                        speculative=in_runahead) >> 2")
    else:
        emit("                    complete = ifetch_packed(")
        emit("                        pcs_off[cursor], now, tid,")
        emit("                        speculative=False) >> 2")
    emit("                    thread.fetch_line = line")
    emit("                    if complete > icache_done:")
    emit("                        if complete > thread.fetch_blocked_until:")
    emit("                            thread.fetch_blocked_until = complete")
    emit("                        break")
    emit("                pc = pcs_off[cursor]")
    emit("                pass_no = thread.pass_no")
    emit("                inst = DynInst(")
    emit("                    tid, seq, cursor, pass_no,")
    emit("                    ops[cursor], pc, 0,")
    emit("                    dests[cursor], src1s[cursor], src2s[cursor],")
    emit("                    takens[cursor],")
    emit("                )")
    emit("                inst.gseq = gseq")
    emit("                gseq += 1")
    emit("                if inst.is_mem:")
    emit("                    inst.addr = data_base + (")
    emit("                        (addrs[cursor] + pass_no * pass_stride)")
    emit("                        % data_region)")
    if ur:
        emit("                inst.runahead = in_runahead")
    emit("                seq += 1")
    emit("                cursor += 1")
    emit("                if cursor >= trace_len:")
    emit("                    cursor = 0")
    emit("                    thread.pass_no = pass_no + 1")
    emit("                inst.counted = True")
    emit("                append(inst)")
    emit("                count += 1")
    emit("                if inst.is_branch:")
    emit("                    stats.branches += 1")
    emit("                    correct = predictor_predict(tid, pc, inst.taken)")
    emit("                    inst.mispredicted = not correct")
    emit("                    if inst.taken:")
    emit("                        if not btb_lookup(pc):")
    emit("                            blocked = now + 2")
    emit("                            if blocked > thread.fetch_blocked_until:")
    emit("                                thread.fetch_blocked_until = blocked")
    emit("                        break")
    emit("            thread.cursor = cursor")
    emit("            if count:")
    emit("                pipeline._gseq = gseq")
    emit("                thread.seq = seq")
    emit("                thread.icount += count")
    emit("                stats.fetched += count")
    emit("                fetched_total += count")
    emit("                threads_used += 1")


def _emit_sample(key: KernelKey, emit) -> None:
    for i in range(key.num_threads):
        emit(f"        held = t{i}_held[0] + t{i}_held[1]")
        if key.uses_runahead:
            emit(f"        if t{i}.mode is ra_mode:")
            emit(f"            t{i}_stats.runahead_cycles += 1")
            emit(f"            t{i}_stats.runahead_reg_samples += 1")
            emit(f"            t{i}_stats.runahead_regs_held += held")
            emit("        else:")
            emit(f"            t{i}_stats.normal_reg_samples += 1")
            emit(f"            t{i}_stats.normal_regs_held += held")
        else:
            emit(f"        t{i}_stats.normal_reg_samples += 1")
            emit(f"        t{i}_stats.normal_regs_held += held")
    emit("        gstats.cycles += 1")


def emit_kernel_source(key: KernelKey) -> str:
    """Emit the full specialized run-loop source for one machine shape."""
    out = []
    emit = out.append
    emit("from heapq import heappop as heap_pop")
    emit("")
    emit("")
    emit("def _kernel_run(pipeline, min_passes, cap,")
    emit("                squashed_state=SQUASHED):")
    _emit_hoists(key, emit)
    emit("    while True:")
    done = " and ".join(f"t{i}.finished_passes >= min_passes"
                        for i in range(key.num_threads))
    emit(f"        if {done}:")
    emit("            return False")
    emit("        if cycle >= cap:")
    emit("            return True")
    emit("        now = cycle")
    if key.skip_enabled:
        emit("        gseq_before = pipeline._gseq")
        emit("        committed_before = gstats.committed")
        emit("        executed_before = gstats.executed")
    emit("        # ---- step: FU reset + events ----")
    emit(f"        available[0] = {key.fu_caps[0]}")
    emit(f"        available[1] = {key.fu_caps[1]}")
    emit(f"        available[2] = {key.fu_caps[2]}")
    _emit_events(key, emit)
    if key.has_on_cycle:
        emit("        policy_on_cycle(now)")
    emit("        # ---- commit stage ----")
    _emit_commit(key, emit)
    emit("        # ---- issue stage ----")
    _emit_issue(key, emit)
    emit("        # ---- dispatch stage ----")
    _emit_dispatch(key, emit)
    emit("        # ---- fetch stage ----")
    _emit_fetch(key, emit)
    emit("        # ---- stat sampling ----")
    _emit_sample(key, emit)
    emit("        cycle = now + 1")
    emit("        pipeline.cycle = cycle")
    emit("        if now - pipeline._last_commit_cycle > DEADLOCK_WINDOW:")
    emit("            raise DeadlockError(now,")
    emit("                                \"no instruction committed recently\")")
    if key.skip_enabled:
        emit("        # ---- advance: quiescence precheck + skip ----")
        emit("        if (pipeline._gseq != gseq_before")
        emit("                or gstats.committed != committed_before")
        emit("                or gstats.executed != executed_before):")
        emit("            continue")
        emit("        target = skip_target(cycle, cap)")
        emit("        if target > cycle:")
        emit("            skip_to(cycle, target)")
        emit("            cycle = target")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# tier-sync fragment declarations
#
# Each entry ties one emitter above to the pipeline function it
# transcribes and declares the *complete* substitution algebra relating
# the two spellings, so `repro lint` (rule `tier-sync`, see
# repro.analysis.tiersync) can machine-verify the transcription: it
# applies these operations to the python-tier AST and requires the
# result to be structurally identical to the emitted kernel fragment
# for TIERSYNC_KEY.  Editing a hot path without mirroring the emitter —
# or doing a restructure without declaring it here — fails the lint.

#: The representative shape the congruence check runs against: the
#: 4-thread runahead configuration with every optional feature enabled,
#: so no emitter branch is dead during the comparison.
TIERSYNC_KEY = KernelKey(
    num_threads=4,
    width=8,
    fetch_threads=2,
    fetch_buffer=16,
    icache_latency=3,
    dcache_latency=2,
    l2_detect_latency=9,
    rob_capacity=96,
    iq_caps=(48, 40, 24),
    fu_caps=(6, 5, 4),
    uses_runahead=True,
    ra_fp_inval=True,
    macro_spec=True,
    has_on_cycle=True,
    has_macro_ok=True,
    skip_enabled=True,
)


def _tiersync_fragments(key: KernelKey) -> tuple:
    return (
        {
            "name": "events",
            "source": ("core/pipeline.py", "SMTPipeline._process_events"),
            "emitter": "_emit_events",
            "covers": (
                ("core/pipeline.py", "SMTPipeline._process_events"),
                ("core/pipeline.py", "SMTPipeline._src_ready"),
                ("core/pipeline.py", "SMTPipeline._operands_invalid"),
                ("core/pipeline.py", "SMTPipeline._recycle_runahead_dest"),
            ),
            # The kernel elides the whole call on undue cycles (the
            # soundness argument lives on _emit_events).
            "wrap": "if heap and heap[0] <= now:\n    __BODY__",
            "subs": [
                # _src_ready is spliced per-waiter; its early returns
                # become loop continues.
                ("inline", ("core/pipeline.py", "SMTPipeline._src_ready"),
                 "src_ready(waiter, now, preg, invalid)",
                 "__INLINE__",
                 {"bind": {"inst": "waiter"},
                  "returns": ["continue", "continue"]}),
                # Per-run hoists (done once in _emit_hoists).
                ("stmt", "events = self._events", ""),
                ("stmt", "heap = self._event_heap", ""),
                ("stmt", "threads = self.threads", ""),
                ("stmt", "int_file = self.int_file", ""),
                ("stmt", "fp_file = self.fp_file", ""),
                ("stmt", "src_ready = self._src_ready", ""),
                # Early return inverted into a guard under the wrap.
                ("stmt",
                 "if not bucket:\n"
                 "    return\n"
                 "__REST__",
                 "if bucket:\n"
                 "    __REST__"),
                ("rename", "heappop", "heap_pop"),
                ("rename", "_SQUASHED", "squashed_state"),
                ("rename", "_RETIRED", "retired_state"),
                ("rename", "_ISSUED", "issued_state"),
                ("rename", "_COMPLETED", "completed_state"),
                ("rename", "_DISPATCHED", "dispatched_state"),
                ("rename", "_READY", "ready_state"),
                ("rename", "_RUNAHEAD", "ra_mode"),
                ("rename", "OP_QUEUE_BY_CODE", "op_queue"),
                ("expr", "_EV_COMPLETE", "0"),
                ("expr", "_EV_L2_DETECT", "1"),
                ("expr", "NO_REG", "no_reg"),
                ("expr", "_NINT", "nint"),
                ("expr", "self.queues", "queues"),
                ("expr", "self._fold_worklist", "fold_worklist"),
                ("expr", "self._drain_folds", "drain_folds"),
                ("expr", "self._resolve_misprediction", "resolve_mispred"),
                ("expr", "self._on_l2_detected", "on_l2_detected"),
                # The wakeup decrement keeps the new count in a local
                # (one attribute read instead of two).
                ("stmt",
                 "waiter.pending_srcs -= 1\n"
                 "if waiter.pending_srcs > 0:\n"
                 "    continue",
                 "pending = waiter.pending_srcs - 1\n"
                 "waiter.pending_srcs = pending\n"
                 "if pending > 0:\n"
                 "    continue"),
                # _operands_invalid folded to the mask conditional.
                ("guard", "core/pipeline.py",
                 "SMTPipeline._operands_invalid",
                 "mask = inst.src_inv_mask\n"
                 "if inst.is_store:\n"
                 "    return bool(mask & 1)\n"
                 "return mask != 0"),
                ("stmt",
                 "if self._operands_invalid(waiter):\n"
                 "    fold_worklist.append(waiter)\n"
                 "else:\n"
                 "    waiter.state = ready_state\n"
                 "    queues[op_queue[waiter.op]]._ready.append(waiter)",
                 "wmask = waiter.src_inv_mask\n"
                 "if (wmask & 1) if waiter.is_store else wmask:\n"
                 "    fold_worklist.append(waiter)\n"
                 "else:\n"
                 "    waiter.state = ready_state\n"
                 "    queues[op_queue[waiter.op]]._ready.append(waiter)"),
                # _recycle_runahead_dest open-coded with the entry check
                # elided (pdest == preg != no_reg guarded just above)
                # and the class split reusing the already-computed
                # ``file`` local.
                ("guard", "core/pipeline.py",
                 "SMTPipeline._recycle_runahead_dest",
                 "if inst.pdest == NO_REG:\n"
                 "    return\n"
                 "if inst.dest_arch < _NINT:\n"
                 "    klass, file = (0, self.int_file)\n"
                 "    arch_index = inst.dest_arch\n"
                 "else:\n"
                 "    klass, file = (1, self.fp_file)\n"
                 "    arch_index = inst.dest_arch - _NINT\n"
                 "preg = inst.pdest\n"
                 "if file.pinned[preg]:\n"
                 "    return\n"
                 "front = thread.rename.front[klass]\n"
                 "if front[arch_index] != preg:\n"
                 "    return\n"
                 "front[arch_index] = thread.rename.arch[klass][arch_index]\n"
                 "if not file._allocated[preg]:\n"
                 "    raise SimulationError(f'{file.name}: double release "
                 "of p{preg}')\n"
                 "file._allocated[preg] = False\n"
                 "file.waiters[preg].clear()\n"
                 "file._free.append(preg)\n"
                 "thread.regs_held[klass] -= 1\n"
                 "thread.arch_inv[inst.dest_arch] = inst.invalid\n"
                 "inst.pdest = NO_REG"),
                ("stmt",
                 "if invalid and thread.mode is ra_mode:\n"
                 "    self._recycle_runahead_dest(thread, inst)",
                 "if invalid and thread.mode is ra_mode:\n"
                 "    dest_arch = inst.dest_arch\n"
                 "    if dest_arch < nint:\n"
                 "        klass = 0\n"
                 "        arch_index = dest_arch\n"
                 "    else:\n"
                 "        klass = 1\n"
                 "        arch_index = dest_arch - nint\n"
                 "    if not file.pinned[preg]:\n"
                 "        front = thread.rename.front[klass]\n"
                 "        if front[arch_index] == preg:\n"
                 "            front[arch_index] = (\n"
                 "                thread.rename.arch[klass][arch_index])\n"
                 "            if not file._allocated[preg]:\n"
                 "                raise SimulationError(\n"
                 "                    f\"{file.name}: double release of "
                 "p{preg}\")\n"
                 "            file._allocated[preg] = False\n"
                 "            file.waiters[preg].clear()\n"
                 "            file._free.append(preg)\n"
                 "            thread.regs_held[klass] -= 1\n"
                 "            thread.arch_inv[dest_arch] = invalid\n"
                 "            inst.pdest = no_reg"),
            ],
        },
        {
            "name": "commit",
            "source": ("core/pipeline.py", "SMTPipeline._commit_stage"),
            "emitter": "_emit_commit",
            "covers": (
                ("core/pipeline.py", "SMTPipeline._commit_stage"),
                ("core/pipeline.py", "SMTPipeline._commit_thread"),
            ),
            "subs": [
                # _commit_thread spliced into the per-thread loop; its
                # returns become continue / commit-and-break / the
                # normal-vs-runahead else split / fall-through.
                ("inline", ("core/pipeline.py",
                            "SMTPipeline._commit_thread"),
                 "budget = self._commit_thread(thread, now, budget)\n"
                 "if budget <= 0:\n"
                 "    break",
                 "__INLINE__\n"
                 "if budget <= 0:\n"
                 "    break",
                 {"returns": ["continue",
                              "stmts:budget -= 1\nbreak",
                              "else-rest",
                              "delete"]}),
                # Per-run hoists (done once in _emit_hoists).
                ("stmt", "rob = self.rob", ""),
                ("stmt", "gstats = self.gstats", ""),
                ("stmt", "int_file = self.int_file", ""),
                ("stmt", "fp_file = self.fp_file", ""),
                ("stmt", "recycle = self._recycle_runahead_dest", ""),
                ("rename", "budget", "commit_budget"),
                ("rename", "_RUNAHEAD", "ra_mode"),
                ("rename", "_NORMAL", "normal_mode"),
                ("rename", "_COMPLETED", "completed_state"),
                ("rename", "_RETIRED", "retired_state"),
                ("expr", "self._width", str(key.width)),
                ("expr", "self._rotations[now % self.num_threads]",
                 _rotation_expr(key)),
                ("expr", "self.runahead.exit", "ra_exit"),
                ("expr", "rob._queues", "rob_queues"),
                ("expr", "rob.per_thread", "rob_pt"),
                ("expr", "NO_REG", "no_reg"),
                ("expr", "_NINT", "nint"),
                ("expr", "self._last_commit_cycle",
                 "pipeline._last_commit_cycle"),
                ("expr", "thread.rename.commit_dest", "rename.commit_dest"),
                ("expr", "self._release_preg", "release_preg"),
                ("expr", "self.mem.data_access_packed", "data_access"),
                ("expr", "self._uses_runahead", "True"),
                ("expr", "self.runahead.should_enter", "should_enter"),
                ("expr", "self._enter_runahead", "enter_runahead"),
                # The kernel hoists the rename map next to last_index.
                ("stmt", "last_index = thread.last_index",
                 "last_index = thread.last_index\n"
                 "rename = thread.rename"),
                # Tuple assignments split (the emitter writes one
                # statement per line).
                ("stmt", "klass, file = 0, int_file",
                 "klass = 0\nfile = int_file"),
                ("stmt", "klass, file = 1, fp_file",
                 "klass = 1\nfile = fp_file"),
                # _recycle_runahead_dest open-coded; klass/file reuse
                # the values computed for the old_pdest release, the
                # pinned test is folded into the entry check.
                ("guard", "core/pipeline.py",
                 "SMTPipeline._recycle_runahead_dest",
                 "if inst.pdest == NO_REG:\n"
                 "    return\n"
                 "if inst.dest_arch < _NINT:\n"
                 "    klass, file = (0, self.int_file)\n"
                 "    arch_index = inst.dest_arch\n"
                 "else:\n"
                 "    klass, file = (1, self.fp_file)\n"
                 "    arch_index = inst.dest_arch - _NINT\n"
                 "preg = inst.pdest\n"
                 "if file.pinned[preg]:\n"
                 "    return\n"
                 "front = thread.rename.front[klass]\n"
                 "if front[arch_index] != preg:\n"
                 "    return\n"
                 "front[arch_index] = thread.rename.arch[klass][arch_index]\n"
                 "if not file._allocated[preg]:\n"
                 "    raise SimulationError(f'{file.name}: double release "
                 "of p{preg}')\n"
                 "file._allocated[preg] = False\n"
                 "file.waiters[preg].clear()\n"
                 "file._free.append(preg)\n"
                 "thread.regs_held[klass] -= 1\n"
                 "thread.arch_inv[inst.dest_arch] = inst.invalid\n"
                 "inst.pdest = NO_REG"),
                ("stmt",
                 "if head.pdest != no_reg:\n"
                 "    recycle(thread, head)",
                 "preg = head.pdest\n"
                 "if preg != no_reg and not file.pinned[preg]:\n"
                 "    arch_index = (dest_arch if klass == 0\n"
                 "                  else dest_arch - nint)\n"
                 "    front = thread.rename.front[klass]\n"
                 "    if front[arch_index] == preg:\n"
                 "        front[arch_index] = (\n"
                 "            thread.rename.arch[klass][arch_index])\n"
                 "        if not file._allocated[preg]:\n"
                 "            raise SimulationError(\n"
                 "                f\"{file.name}: double release of "
                 "p{preg}\")\n"
                 "        file._allocated[preg] = False\n"
                 "        file.waiters[preg].clear()\n"
                 "        file._free.append(preg)\n"
                 "        thread.regs_held[klass] -= 1\n"
                 "        thread.arch_inv[dest_arch] = head.invalid\n"
                 "        head.pdest = no_reg"),
            ],
        },
        {
            "name": "issue",
            "source": ("core/pipeline.py", "SMTPipeline._issue_stage"),
            "emitter": "_emit_issue",
            "covers": (
                ("core/pipeline.py", "SMTPipeline._issue_stage"),
                ("core/pipeline.py", "SMTPipeline._issue_load"),
                ("core/pipeline.py", "SMTPipeline._issue_store"),
                ("core/pipeline.py", "SMTPipeline._issue_runahead_load"),
                ("core/issue_queue.py", "IssueQueue.take_ready"),
            ),
            "subs": [
                # _issue_load spliced at its call; the runahead early
                # return turns the rest of the helper into the else
                # branch, the MSHR-full return becomes the loop continue.
                ("inline", ("core/pipeline.py", "SMTPipeline._issue_load"),
                 "if not issue_load(thread, inst, queue, now):\n"
                 "    continue",
                 "__INLINE__",
                 {"returns": ["else-rest", "continue", "delete"]}),
                ("inline", ("core/pipeline.py", "SMTPipeline._issue_store"),
                 "issue_store(thread, inst, now)",
                 "__INLINE__",
                 {"returns": []}),
                # _issue_runahead_load is open-coded with the cache
                # latencies folded and schedule()/gate_fetch_until
                # expanded; the guards pin the python-tier bodies.
                ("guard", "core/thread.py",
                 "ThreadContext.gate_fetch_until",
                 "if cycle > self.fetch_gated_until:\n"
                 "    self.fetch_gated_until = cycle"),
                ("guard", "core/pipeline.py",
                 "SMTPipeline._issue_runahead_load",
                 "l1_latency = self._dcache_latency\n"
                 "detect_latency = self._l2_detect_latency\n"
                 "forwarded = self.runahead.load_forward_validity(thread,"
                 " inst)\n"
                 "if forwarded is not None:\n"
                 "    inst.invalid = not forwarded\n"
                 "    inst.complete_cycle = now + l1_latency\n"
                 "    self.schedule(inst.complete_cycle, _EV_COMPLETE,"
                 " inst)\n"
                 "    return\n"
                 "if not self.runahead.prefetch:\n"
                 "    level = self.mem.peek_data(inst.addr)\n"
                 "    if level == 'l1':\n"
                 "        inst.complete_cycle = now + l1_latency\n"
                 "    elif level == 'l2':\n"
                 "        inst.complete_cycle = now + detect_latency\n"
                 "    else:\n"
                 "        inst.invalid = True\n"
                 "        inst.complete_cycle = now + detect_latency\n"
                 "        thread.no_retrigger.add(inst.pass_no *"
                 " thread.retrigger_stride + inst.trace_index)\n"
                 "    self.schedule(inst.complete_cycle, _EV_COMPLETE,"
                 " inst)\n"
                 "    return\n"
                 "packed = self.mem.data_access_packed(inst.addr, False,"
                 " now, thread.tid, speculative=True)\n"
                 "if packed < 0:\n"
                 "    inst.invalid = True\n"
                 "    inst.complete_cycle = now + l1_latency\n"
                 "elif packed & 2:\n"
                 "    inst.invalid = True\n"
                 "    inst.complete_cycle = min(packed >> 2, now +"
                 " detect_latency)\n"
                 "    if self.runahead.stop_fetch_on_l2_miss:\n"
                 "        thread.gate_fetch_until("
                 "thread.runahead_trigger_ready)\n"
                 "else:\n"
                 "    inst.complete_cycle = packed >> 2\n"
                 "cycle = inst.complete_cycle\n"
                 "events = self._events\n"
                 "bucket = events.get(cycle)\n"
                 "if bucket is None:\n"
                 "    events[cycle] = [(_EV_COMPLETE, inst)]\n"
                 "    heappush(self._event_heap, cycle)\n"
                 "else:\n"
                 "    bucket.append((_EV_COMPLETE, inst))"),
                ("stmt", "self._issue_runahead_load(thread, inst, now)",
                 "forwarded = load_forward(thread, inst)\n"
                 "if forwarded is not None:\n"
                 "    inst.invalid = not forwarded\n"
                 f"    ccycle = now + {key.dcache_latency}\n"
                 "elif not ra_prefetch:\n"
                 "    level = peek_data(inst.addr)\n"
                 "    if level == 'l1':\n"
                 f"        ccycle = now + {key.dcache_latency}\n"
                 "    elif level == 'l2':\n"
                 f"        ccycle = now + {key.l2_detect_latency}\n"
                 "    else:\n"
                 "        inst.invalid = True\n"
                 f"        ccycle = now + {key.l2_detect_latency}\n"
                 "        thread.no_retrigger.add(\n"
                 "            inst.pass_no * thread.retrigger_stride\n"
                 "            + inst.trace_index)\n"
                 "else:\n"
                 "    packed = data_access(inst.addr, False, now,\n"
                 "                         tid, speculative=True)\n"
                 "    if packed < 0:\n"
                 "        inst.invalid = True\n"
                 f"        ccycle = now + {key.dcache_latency}\n"
                 "    elif packed & 2:\n"
                 "        inst.invalid = True\n"
                 f"        ccycle = min(packed >> 2, now + "
                 f"{key.l2_detect_latency})\n"
                 "        if ra_stop_fetch:\n"
                 "            trigger = thread.runahead_trigger_ready\n"
                 "            if trigger > thread.fetch_gated_until:\n"
                 "                thread.fetch_gated_until = trigger\n"
                 "    else:\n"
                 "        ccycle = packed >> 2\n"
                 "inst.complete_cycle = ccycle\n"
                 "bucket = events.get(ccycle)\n"
                 "if bucket is None:\n"
                 "    events[ccycle] = [(0, inst)]\n"
                 "    heappush(heap, ccycle)\n"
                 "else:\n"
                 "    bucket.append((0, inst))"),
                # Per-run hoists (done once in _emit_hoists).
                ("stmt", "fus = self.fus", ""),
                ("stmt", "available = fus._available", ""),
                ("stmt", "issued = fus.issued", ""),
                ("stmt", "threads = self.threads", ""),
                ("stmt", "events = self._events", ""),
                ("stmt", "heap = self._event_heap", ""),
                ("stmt", "gstats = self.gstats", ""),
                ("stmt", "issue_load = self._issue_load", ""),
                ("stmt", "issue_store = self._issue_store", ""),
                ("stmt", "per_thread = queue.per_thread", ""),
                # The FU-kind lookup folds to the queue-kind literal
                # (OP_QUEUE/OP_FU coincide; asserted by kernel_cache).
                ("stmt", "kind = OP_FU_BY_CODE[inst.op]", ""),
                ("rename", "budget", "limit"),
                ("rename", "cycle", "ccycle"),
                ("rename", "kind", "queue_kind"),
                ("rename", "_ISSUED", "issued_state"),
                ("rename", "_RUNAHEAD", "ra_mode"),
                ("rename", "OP_LATENCY_BY_CODE", "op_latency"),
                ("expr", "_EV_COMPLETE", "0"),
                ("expr", "_EV_L2_DETECT", "1"),
                ("expr", "self._event_heap", "heap"),
                ("expr", "self.schedule", "schedule"),
                ("expr", "self.mem.data_access_packed", "data_access"),
                ("expr", "self.runahead.on_runahead_store",
                 "on_runahead_store"),
                ("expr", "self.runahead.prefetch", "ra_prefetch"),
                ("expr", "thread.tid", "tid"),
                ("expr", "self._l2_detect_latency",
                 str(key.l2_detect_latency)),
                ("expr", "self._fold_worklist", "fold_worklist"),
                ("expr", "self._drain_folds", "drain_folds"),
                # Loop-level continues inverted into guard nesting.
                ("stmt",
                 "queue = self.queues[queue_kind]\n"
                 "if not queue._ready:\n"
                 "    continue\n"
                 "limit = available[queue_kind]\n"
                 "if limit <= 0:\n"
                 "    continue\n"
                 "__REST__",
                 "ready = queue._ready\n"
                 "if ready:\n"
                 "    limit = available[queue_kind]\n"
                 "    if limit > 0:\n"
                 "        __REST__"),
                # take_ready open-coded (its early returns are subsumed
                # by the guards above / the `if live:` nesting); the
                # guard pins the python-tier body.
                ("guard", "core/issue_queue.py", "IssueQueue.take_ready",
                 "ready = self._ready\n"
                 "if not ready:\n"
                 "    return []\n"
                 "for inst in ready:\n"
                 "    if inst.state != _READY:\n"
                 "        live = [inst for inst in ready if inst.state =="
                 " _READY]\n"
                 "        self._ready = live\n"
                 "        break\n"
                 "else:\n"
                 "    live = ready\n"
                 "if not live:\n"
                 "    return []\n"
                 "if len(live) > limit:\n"
                 "    live.sort(key=_inst_age)\n"
                 "    selected = live[:limit]\n"
                 "    self._ready = live[limit:]\n"
                 "else:\n"
                 "    selected = live\n"
                 "    self._ready = []\n"
                 "if self._replay_blocked:\n"
                 "    for inst in selected:\n"
                 "        if inst.replay:\n"
                 "            inst.replay = False\n"
                 "            self._replay_blocked -= 1\n"
                 "return selected"),
                ("stmt",
                 "for inst in queue.take_ready(limit):\n"
                 "    __BODY__",
                 "for inst in ready:\n"
                 "    if inst.state != ready_state:\n"
                 "        live = [inst for inst in ready\n"
                 "                if inst.state == ready_state]\n"
                 "        queue._ready = live\n"
                 "        break\n"
                 "else:\n"
                 "    live = ready\n"
                 "if live:\n"
                 "    if len(live) > limit:\n"
                 "        live.sort(key=inst_age)\n"
                 "        selected = live[:limit]\n"
                 "        queue._ready = live[limit:]\n"
                 "    else:\n"
                 "        selected = live\n"
                 "        queue._ready = []\n"
                 "    if queue._replay_blocked:\n"
                 "        for inst in selected:\n"
                 "            if inst.replay:\n"
                 "                inst.replay = False\n"
                 "                queue._replay_blocked -= 1\n"
                 "    for inst in selected:\n"
                 "        __BODY__"),
                # The store's schedule() call is open-coded.
                ("stmt",
                 "inst.complete_cycle = now + 1\n"
                 "schedule(inst.complete_cycle, 0, inst)",
                 "ccycle = now + 1\n"
                 "inst.complete_cycle = ccycle\n"
                 "bucket = events.get(ccycle)\n"
                 "if bucket is None:\n"
                 "    events[ccycle] = [(0, inst)]\n"
                 "    heappush(heap, ccycle)\n"
                 "else:\n"
                 "    bucket.append((0, inst))"),
                ("unroll", "queue_kind",
                 [{"queue_kind": str(qk), "queue": f"q{qk}",
                   "per_thread": f"q{qk}_pt"}
                  for qk in (2, 0, 1)]),
            ],
        },
        {
            "name": "dispatch",
            "source": ("core/pipeline.py", "SMTPipeline._dispatch_stage"),
            "emitter": "_emit_dispatch",
            "covers": (
                ("core/pipeline.py", "SMTPipeline._dispatch_stage"),
                ("core/pipeline.py", "SMTPipeline._macro_dispatch"),
                ("core/pipeline.py", "SMTPipeline._macro_abort"),
                ("core/pipeline.py", "SMTPipeline._dispatch"),
                ("core/pipeline.py", "SMTPipeline._uncount"),
                ("core/thread.py", "ThreadContext.note_arch_invalid"),
            ),
            "subs": [
                # _macro_dispatch spliced at its call; guard-abort
                # returns become breaks out of the single-pass
                # `while plan is not None:` added further down, JIT
                # dispatches and the generic tail set `taken` first.
                ("inline", ("core/pipeline.py",
                            "SMTPipeline._macro_dispatch"),
                 "taken = self._macro_dispatch(thread, fetch_queue, now,"
                 " budget)",
                 "taken = 0\n"
                 "__INLINE__",
                 {"returns": [
                     "break", "break", "break", "break", "break",
                     "stmts:taken = handler(pipeline, thread,"
                     " fetch_queue, now)\nbreak",
                     "stmts:taken = handler(pipeline, thread,"
                     " fetch_queue, now)\nbreak",
                     "stmts:taken = k\nbreak"]}),
                # _macro_abort spliced per cause (the cause argument is
                # a literal at three sites, a conditional at the fourth).
                ("inline", ("core/pipeline.py", "SMTPipeline._macro_abort"),
                 "self._macro_abort('rob')",
                 "__INLINE__",
                 {"bind": {"cause": "'rob'"}, "returns": []}),
                ("inline", ("core/pipeline.py", "SMTPipeline._macro_abort"),
                 "self._macro_abort('iq' if need_q0 > room_q0"
                 " or need_q1 > room_q1 or need_q2 > room_q2"
                 " else 'regfile')",
                 "__INLINE__",
                 {"bind": {"cause": ("cause",
                                     "'iq' if need_q0 > room_q0"
                                     " or need_q1 > room_q1"
                                     " or need_q2 > room_q2"
                                     " else 'regfile'")},
                  "returns": []}),
                ("inline", ("core/pipeline.py", "SMTPipeline._macro_abort"),
                 "self._macro_abort('policy')",
                 "__INLINE__",
                 {"bind": {"cause": "'policy'"}, "returns": []}),
                ("inline", ("core/pipeline.py", "SMTPipeline._macro_abort"),
                 "self._macro_abort('desync')",
                 "__INLINE__",
                 {"bind": {"cause": "'desync'"}, "returns": []}),
                # _dispatch spliced into the per-stage loop; False
                # returns become stall-and-break, the drop-at-decode
                # True return consumes the entry inline, the tail True
                # falls through to the shared popleft.
                ("inline", ("core/pipeline.py", "SMTPipeline._dispatch"),
                 "if not dispatch(thread, fetch_queue[0], now):\n"
                 "    self.gstats.dispatch_stalls += 1\n"
                 "    break",
                 "__INLINE__",
                 {"bind": {"inst": ("inst", "fetch_queue[0]")},
                  "returns": [
                      "stmts:self.gstats.dispatch_stalls += 1\nbreak",
                      "stmts:fetch_queue.popleft()\nbudget -= 1\n"
                      "continue",
                      "stmts:self.gstats.dispatch_stalls += 1\nbreak",
                      "stmts:self.gstats.dispatch_stalls += 1\nbreak",
                      "delete"]}),
                ("inline", ("core/pipeline.py", "SMTPipeline._uncount"),
                 "self._uncount(inst)",
                 "__INLINE__",
                 {"returns": []}),
                ("guard", "core/thread.py",
                 "ThreadContext.note_arch_invalid",
                 "self.arch_inv[arch_reg] = invalid"),
                ("stmt", "thread.note_arch_invalid(inst.dest_arch, True)",
                 "arch_inv[inst.dest_arch] = True"),
                # Per-run hoists (done once in _emit_hoists) and the
                # macro block's per-entry rebinds of prebound names.
                ("stmt", "dispatch = self._dispatch", ""),
                ("stmt", "macro = self.macro_spec", ""),
                ("stmt", "rob = self.rob", ""),
                ("stmt", "queues = self.queues", ""),
                ("stmt", "int_file = self.int_file", ""),
                ("stmt", "fp_file = self.fp_file", ""),
                ("stmt", "never = _NEVER", ""),
                ("stmt", "nint = _NINT", ""),
                ("stmt", "fold = self._fold", ""),
                ("stmt", "gstats = self.gstats", ""),
                ("stmt", "tid = thread.tid", ""),
                # ... and tid is re-hoisted once per thread iteration.
                ("stmt", "fetch_queue = thread.fetch_queue",
                 "fetch_queue = thread.fetch_queue\n"
                 "tid = thread.tid"),
                ("rename", "budget", "dispatch_budget"),
                ("rename", "_RUNAHEAD", "ra_mode"),
                ("rename", "_PLAN_MISSING", "plan_missing"),
                ("rename", "_COMPLETED", "completed_state"),
                ("rename", "_DISPATCHED", "dispatched_state"),
                ("rename", "_READY", "ready_state"),
                ("rename", "IS_FP_BY_CODE", "is_fp_code"),
                ("rename", "OP_QUEUE_BY_CODE", "op_queue"),
                ("expr", "self._width", str(key.width)),
                ("expr", "self._rotations[now % self.num_threads]",
                 _rotation_expr(key)),
                ("expr", "macro", "True"),
                ("expr", "self._ra_fp_inval", "True"),
                ("expr", "_SYNC_CODE", str(pipeline_mod._SYNC_CODE)),
                ("expr", "rob.capacity", str(key.rob_capacity)),
                ("expr", "rob._queues[inst.tid]", "robq"),
                ("expr", "rob._queues", "rob_queues"),
                ("expr", "rob.per_thread[inst.tid]", "rob_pt[tid]"),
                ("expr", "rob.per_thread", "rob_pt"),
                ("expr", "self.threads[inst.tid]", "thread"),
                ("expr", "inst.tid", "tid"),
                ("expr", "self.queues", "queues"),
                ("expr", "self.int_file", "int_file"),
                ("expr", "self.fp_file", "fp_file"),
                ("expr", "self.gstats", "gstats"),
                ("expr", "self._fold", "fold"),
                ("expr", "NO_REG", "no_reg"),
                ("expr", "_NINT", "nint"),
                ("expr", "_NEVER", "never"),
                ("expr", "_JIT_THRESHOLD",
                 "pipeline_mod._JIT_THRESHOLD"),
                ("expr", "_PREFIX_JIT_THRESHOLD",
                 "pipeline_mod._PREFIX_JIT_THRESHOLD"),
                ("expr", "front[0]", "front0"),
                ("expr", "front[1]", "front1"),
                ("expr", "self._fold_worklist", "fold_worklist"),
                ("expr", "self._drain_folds", "drain_folds"),
                ("stmt", "thread.stats.dispatched += 1",
                 "stats.dispatched += 1"),
                ("stmt", "thread.stats.folded += 1",
                 "stats.folded += 1"),
                # The drop-at-decode temp folds into the test.
                ("stmt",
                 "drop_at_decode = thread.mode is ra_mode and"
                 " (True and is_fp_code[op]"
                 f" or op == {pipeline_mod._SYNC_CODE})\n"
                 "if drop_at_decode:\n"
                 "    __BODY__",
                 "if thread.mode is ra_mode and"
                 f" (is_fp_code[op] or op == {pipeline_mod._SYNC_CODE}):\n"
                 "    __BODY__"),
                # Queue-capacity check against the folded caps tuple.
                ("stmt",
                 "queue = queues[op_queue[op]]\n"
                 "if queue.size >= queue.capacity:\n"
                 "    gstats.dispatch_stalls += 1\n"
                 "    break",
                 "qk = op_queue[op]\n"
                 "queue = queues[qk]\n"
                 "if queue.size >= iq_caps[qk]:\n"
                 "    gstats.dispatch_stalls += 1\n"
                 "    break"),
                # dest_file default moves into the else branch.
                ("stmt",
                 "dest_file: Optional[PhysRegFile] = None\n"
                 "if dest_arch != no_reg:\n"
                 "    dest_file = int_file if dest_arch < nint"
                 " else fp_file\n"
                 "    if not dest_file._free:\n"
                 "        gstats.dispatch_stalls += 1\n"
                 "        break",
                 "if dest_arch != no_reg:\n"
                 "    dest_file = int_file if dest_arch < nint"
                 " else fp_file\n"
                 "    if not dest_file._free:\n"
                 "        gstats.dispatch_stalls += 1\n"
                 "        break\n"
                 "else:\n"
                 "    dest_file = None"),
                # The per-call rename hoists move out of the while loop
                # (re-added by the wrapper below).
                ("stmt",
                 "pending = 0\n"
                 "arch_inv = thread.arch_inv\n"
                 "front = thread.rename.front\n"
                 "arch = inst.src1_arch",
                 "pending = 0\n"
                 "arch = inst.src1_arch"),
                # fmap resolves inside the klass branch.
                ("stmt",
                 "if dest_arch < nint:\n"
                 "    klass = 0\n"
                 "    arch_index = dest_arch\n"
                 "else:\n"
                 "    klass = 1\n"
                 "    arch_index = dest_arch - nint\n"
                 "inst.pdest = preg\n"
                 "fmap = front[klass]",
                 "if dest_arch < nint:\n"
                 "    klass = 0\n"
                 "    arch_index = dest_arch\n"
                 "    fmap = front0\n"
                 "else:\n"
                 "    klass = 1\n"
                 "    arch_index = dest_arch - nint\n"
                 "    fmap = front1\n"
                 "inst.pdest = preg"),
                # Issue-queue headroom against the folded caps.
                ("stmt",
                 "room_q0 = queues[0].capacity - queues[0].size",
                 f"room_q0 = {key.iq_caps[0]} - q0.size"),
                ("stmt",
                 "room_q1 = queues[1].capacity - queues[1].size",
                 f"room_q1 = {key.iq_caps[1]} - q1.size"),
                ("stmt",
                 "room_q2 = queues[2].capacity - queues[2].size",
                 f"room_q2 = {key.iq_caps[2]} - q2.size"),
                # The policy veto is prebound and known non-None.
                ("stmt",
                 "macro_ok = self._macro_step_ok\n"
                 "if macro_ok is not None and not macro_ok(thread, k,"
                 " now):\n"
                 "    __BODY__",
                 "if not macro_ok(thread, k, now):\n"
                 "    __BODY__"),
                # The front read sinks below the ROB guard (which does
                # not use it) — the kernel stalls before peeking.
                ("stmt",
                 "inst = fetch_queue[0]\n"
                 f"if rob._occupancy >= {key.rob_capacity}:\n"
                 "    gstats.dispatch_stalls += 1\n"
                 "    break",
                 f"if rob._occupancy >= {key.rob_capacity}:\n"
                 "    gstats.dispatch_stalls += 1\n"
                 "    break\n"
                 "inst = fetch_queue[0]"),
                # Single-pass loop: every abort break falls through to
                # the per-stage path, exactly like `return 0` did.
                ("stmt",
                 "if plan is None:\n"
                 "    break\n"
                 "__REST__\n"
                 "if taken:\n"
                 "    dispatch_budget -= taken\n"
                 "    if dispatch_budget <= 0:\n"
                 "        break",
                 "while plan is not None:\n"
                 "    __REST__\n"
                 "if taken:\n"
                 "    dispatch_budget -= taken\n"
                 "    if dispatch_budget <= 0:\n"
                 "        break"),
                # The per-stage while gains the guarded hoist wrapper.
                ("stmt",
                 "while dispatch_budget > 0 and fetch_queue:\n"
                 "    __BODY__\n"
                 "if dispatch_budget <= 0:\n"
                 "    break",
                 "if dispatch_budget > 0 and fetch_queue:\n"
                 "    robq = rob_queues[tid]\n"
                 "    stats = thread.stats\n"
                 "    arch_inv = thread.arch_inv\n"
                 "    front = thread.rename.front\n"
                 "    front0 = front[0]\n"
                 "    front1 = front[1]\n"
                 "    while dispatch_budget > 0 and fetch_queue:\n"
                 "        __BODY__\n"
                 "if dispatch_budget <= 0:\n"
                 "    break"),
            ],
        },
        {
            "name": "fetch",
            "source": ("core/pipeline.py", "SMTPipeline._fetch_stage"),
            "emitter": "_emit_fetch",
            "covers": (
                ("core/pipeline.py", "SMTPipeline._fetch_stage"),
                ("core/pipeline.py", "SMTPipeline._fetch_thread"),
                ("core/thread.py", "ThreadContext.block_fetch_until"),
            ),
            "subs": [
                # _fetch_thread spliced per thread; the buffer-full
                # return becomes the loop continue, the tail return
                # merges into the `if count:` epilogue below.
                ("inline", ("core/pipeline.py",
                            "SMTPipeline._fetch_thread"),
                 "taken = self._fetch_thread(thread, now,"
                 " width - fetched_total)\n"
                 "if taken > 0:\n"
                 "    fetched_total += taken\n"
                 "    threads_used += 1",
                 "__INLINE__",
                 {"bind": {"limit": ("limit", "width - fetched_total")},
                  "returns": ["continue", "delete"]}),
                ("guard", "core/thread.py",
                 "ThreadContext.block_fetch_until",
                 "if cycle > self.fetch_blocked_until:\n"
                 "    self.fetch_blocked_until = cycle"),
                ("stmt", "thread.block_fetch_until(complete)",
                 "if complete > thread.fetch_blocked_until:\n"
                 "    thread.fetch_blocked_until = complete"),
                ("stmt", "thread.block_fetch_until(now + 2)",
                 "blocked = now + 2\n"
                 "if blocked > thread.fetch_blocked_until:\n"
                 "    thread.fetch_blocked_until = blocked"),
                # Per-run hoists (done once in _emit_hoists) and the
                # width/fetch-thread folds.
                ("stmt", "width = self._width", ""),
                ("stmt", "fetch_threads = self._fetch_threads", ""),
                ("stmt", "threads = self.threads", ""),
                ("stmt", "tid = thread.tid", ""),
                ("stmt", "ifetch_packed = self.mem.ifetch_packed", ""),
                ("rename", "_RUNAHEAD", "ra_mode"),
                ("expr", "width", str(key.width)),
                ("expr", "fetch_threads", str(key.fetch_threads)),
                ("expr", "self.policy.fetch_order", "fetch_order"),
                ("expr", "self.gstats", "gstats"),
                ("expr", "self._fetch_buffer_size",
                 str(key.fetch_buffer)),
                ("expr", "self._icache_latency", str(key.icache_latency)),
                ("expr", "self._gseq", "pipeline._gseq"),
                ("expr", "self.btb.lookup_and_insert", "btb_lookup"),
                ("expr", "self.predictor.predict", "predictor_predict"),
                # The fetch budget resolves after the buffer check (the
                # kernel bails before computing it).
                ("stmt",
                 f"limit = {key.width} - fetched_total\n"
                 "fetch_queue = thread.fetch_queue\n"
                 f"buffer_room = {key.fetch_buffer} - len(fetch_queue)\n"
                 "if buffer_room <= 0:\n"
                 "    continue",
                 "fetch_queue = thread.fetch_queue\n"
                 f"buffer_room = {key.fetch_buffer} - len(fetch_queue)\n"
                 "if buffer_room <= 0:\n"
                 "    continue\n"
                 f"limit = {key.width} - fetched_total"),
                # taken == count: the caller's accounting merges into
                # the fetch-block epilogue.
                ("stmt",
                 "if count:\n"
                 "    pipeline._gseq = gseq\n"
                 "    thread.seq = seq\n"
                 "    thread.icount += count\n"
                 "    stats.fetched += count",
                 "if count:\n"
                 "    pipeline._gseq = gseq\n"
                 "    thread.seq = seq\n"
                 "    thread.icount += count\n"
                 "    stats.fetched += count\n"
                 "    fetched_total += count\n"
                 "    threads_used += 1"),
            ],
        },
        {
            "name": "sample",
            "source": ("core/pipeline.py", "SMTPipeline._sample_stats"),
            "emitter": "_emit_sample",
            "covers": (("core/pipeline.py", "SMTPipeline._sample_stats"),),
            "subs": [
                # The kernel reads the hoisted per-thread stats slots
                # directly instead of re-binding them per cycle.
                ("stmt", "stats = thread.stats", ""),
                ("expr", "thread.regs_held", "thread_held"),
                ("rename", "_RUNAHEAD", "ra_mode"),
                ("expr", "self.gstats", "gstats"),
                ("unroll", "thread", [
                    {"thread": f"t{i}", "thread_held": f"t{i}_held",
                     "stats": f"t{i}_stats"}
                    for i in range(key.num_threads)
                ]),
            ],
        },
    )


FRAGMENTS = _tiersync_fragments(TIERSYNC_KEY)
