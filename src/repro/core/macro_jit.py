"""Macro-step handler compilation: the "software JIT" of the speculation
layer.

A :class:`~repro.core.thread.MacroPlan` that keeps passing the dispatch
entry guards is *hot*: the same linear run of trace rows is renamed and
dispatched over and over with the same structural shape (same queue
targets, same register classes, same fold topology).  This module turns
such a plan into a specialized Python function with the whole run
unrolled and every per-position constant baked into the bytecode — no
plan-table subscripts, no ``NO_REG`` tests, no register-class branches,
no loop bookkeeping.  Positions without sources skip operand renaming
entirely; positions without a destination skip allocation; the
batched-counter tail uses literal increments.

Two variants exist per plan, selected by the caller *after* its guards
pass (see :meth:`SMTPipeline._macro_dispatch
<repro.core.pipeline.SMTPipeline._macro_dispatch>`):

``runahead=False``
    Every position dispatches normally.
``runahead=True``
    FP positions are emitted as §3.3 decode-drops (ROB slot only,
    result INV).  Only used when the thread is in runahead mode with FP
    invalidation enabled — the same condition under which the generic
    fused loop selects ``runahead_demand``.

Correctness contract: the emitted body is a statement-for-statement
transcription of ``SMTPipeline._dispatch`` (and of the generic fused
loop) with constants folded — it must leave bit-identical machine state.
Handlers bake no machine-configuration values (register-file sizes,
queue capacities are read through the pipeline argument), so a compiled
plan may be shared by every pipeline running its trace at the same
width; pipeline-specific objects all arrive via the call arguments.

Compilation costs ~1 ms per handler, so plans only compile after
:data:`JIT_THRESHOLD` full-length guarded executions — cold plans keep
using the generic fused loop, exactly like a tracing JIT's interpreter
tier.

Truncated runs compile too: when the entry guards repeatedly clamp the
same plan to the same prefix length ``k < plan.length`` (a budget or
headroom pattern that recurs every pass), the pair ``(k, drop_active)``
accumulates its own hit counter on the plan and compiles at
:data:`PREFIX_JIT_THRESHOLD`.  A prefix handler is the full-length
emission stopped after ``k`` positions — the per-position bodies are
independent, so the transcription contract is unchanged.
"""

from __future__ import annotations

from .dyninst import InstState
from .regfile import NEVER
from ..isa import NUM_INT_ARCH_REGS

#: Full-length guarded executions of a plan variant before it is
#: compiled.  Sized from the compile economics, not from eagerness:
#: ``compile()`` of an unrolled handler costs ~2 ms while one execution
#: saves single-digit microseconds over the generic fused tier, so a
#: handler needs hundreds of executions to amortize.  FAME measurement
#: loops traces for thousands of passes, crossing this quickly on any
#: real run; short CI benches and fuzz tests stay in the generic tier
#: (tests force compilation by patching the pipeline's imported copy).
JIT_THRESHOLD = 512

#: Guarded executions of one *truncated* prefix ``(length, drop_active)``
#: before that prefix compiles.  Higher than :data:`JIT_THRESHOLD`
#: because a prefix handler is narrower (fewer positions amortize each
#: call) and one plan can accumulate several prefix variants — compile
#: only the ones a steady-state clamp pattern actually replays.
PREFIX_JIT_THRESHOLD = 768

_NINT = NUM_INT_ARCH_REGS


def _emit_source(plan, runahead: bool, length=None) -> str:
    """Generate the handler source for one plan variant.

    ``length`` truncates emission to the first ``length`` positions (a
    hot prefix); ``None`` emits the full-length handler.
    """
    length = plan.length if length is None else length
    drops = tuple(runahead and plan.is_fp[i] for i in range(length))
    live = tuple(i for i in range(length) if not drops[i])

    used_queues = sorted({plan.queues[i] for i in live})
    int_src = any(0 <= s < _NINT for i in live
                  for s in (plan.src1[i], plan.src2[i]))
    fp_src = any(s >= _NINT for i in live
                 for s in (plan.src1[i], plan.src2[i]))
    int_dest = sum(1 for i in live
                   if plan.dest[i] >= 0 and plan.dest_klass[i] == 0)
    fp_dest = sum(1 for i in live
                  if plan.dest[i] >= 0 and plan.dest_klass[i] == 1)
    any_fold = any(plan.src1[i] >= 0 or plan.src2[i] >= 0 for i in live)
    any_drop = any(drops)
    need_arch_inv = (any_fold or int_dest or fp_dest
                     or any(drops[i] and plan.dest[i] >= 0
                            for i in range(length)))

    defaults = []
    if live:
        defaults.append("DISPATCHED=DISPATCHED")
        defaults.append("READY=READY")
    if int_dest or fp_dest:
        defaults.append("NEVER=NEVER")
    if any_drop:
        defaults.append("COMPLETED=COMPLETED")
    signature = ", ".join(
        ["pipeline", "thread", "fetch_queue", "now"] + defaults)

    out = [f"def _handler({signature}):"]
    emit = out.append

    # --- hoists (only what the unrolled body references) ---
    emit("    popleft = fetch_queue.popleft")
    emit("    rob = pipeline.rob")
    emit("    tid = thread.tid")
    emit("    rob_queue = rob._queues[tid]")
    emit("    stats = thread.stats")
    if need_arch_inv:
        emit("    arch_inv = thread.arch_inv")
    if int_src or int_dest:
        emit("    front0 = thread.rename.front[0]")
        emit("    int_file = pipeline.int_file")
        emit("    int_ready = int_file.ready")
        emit("    int_inv = int_file.inv")
    if int_src:
        emit("    int_waiters = int_file.waiters")
    if int_dest:
        emit("    int_free = int_file._free")
        emit("    int_alloc = int_file._allocated")
        emit("    int_pinned = int_file.pinned")
        emit("    int_size = int_file.size")
    if fp_src or fp_dest:
        emit("    front1 = thread.rename.front[1]")
        emit("    fp_file = pipeline.fp_file")
        emit("    fp_ready = fp_file.ready")
        emit("    fp_inv = fp_file.inv")
    if fp_src:
        emit("    fp_waiters = fp_file.waiters")
    if fp_dest:
        emit("    fp_free = fp_file._free")
        emit("    fp_alloc = fp_file._allocated")
        emit("    fp_pinned = fp_file.pinned")
        emit("    fp_size = fp_file.size")
    for q in used_queues:
        emit(f"    q{q} = pipeline.queues[{q}]")
        emit(f"    q{q}_pt = q{q}.per_thread")
        emit(f"    q{q}_ready = q{q}._ready")
    if any_fold:
        emit("    fold = pipeline._fold")

    for i in range(length):
        emit(f"    # position {i}: trace row {plan.start + i}")
        emit("    inst = popleft()")
        emit("    rob_queue.append(inst)")
        if drops[i]:
            # §3.3 decode-drop, mirroring _dispatch's drop branch.
            emit("    inst.state = COMPLETED")
            emit("    inst.invalid = True")
            emit("    inst.complete_cycle = now")
            emit("    if inst.counted:")
            emit("        inst.counted = False")
            emit("        thread.icount -= 1")
            if plan.dest[i] >= 0:
                emit(f"    arch_inv[{plan.dest[i]}] = True")
            emit("    stats.folded += 1")
            continue
        emit("    inst.state = DISPATCHED")
        s1 = plan.src1[i]
        s2 = plan.src2[i]
        has_src = s1 >= 0 or s2 >= 0
        if has_src:
            emit("    pending = 0")
            emit("    mask = 0")
        if s1 >= 0:
            if s1 < _NINT:
                pfx, fmap, aidx = "int", "front0", s1
            else:
                pfx, fmap, aidx = "fp", "front1", s1 - _NINT
            emit(f"    if arch_inv[{s1}]:")
            emit("        mask = 1")
            emit("    else:")
            emit(f"        preg = {fmap}[{aidx}]")
            emit("        inst.psrc1 = preg")
            emit(f"        if {pfx}_ready[preg] <= now:")
            emit(f"            if {pfx}_inv[preg]:")
            emit("                mask = 1")
            emit("        else:")
            emit(f"            {pfx}_waiters[preg].append(inst)")
            emit("            pending = 1")
        if s2 >= 0:
            if s2 < _NINT:
                pfx, fmap, aidx = "int", "front0", s2
            else:
                pfx, fmap, aidx = "fp", "front1", s2 - _NINT
            emit(f"    if arch_inv[{s2}]:")
            emit("        mask |= 2")
            emit("    else:")
            emit(f"        preg = {fmap}[{aidx}]")
            emit("        inst.psrc2 = preg")
            emit(f"        if {pfx}_ready[preg] <= now:")
            emit(f"            if {pfx}_inv[preg]:")
            emit("                mask |= 2")
            emit("        else:")
            emit(f"            {pfx}_waiters[preg].append(inst)")
            emit("            pending += 1")
        if has_src:
            emit("    inst.pending_srcs = pending")
            emit("    inst.src_inv_mask = mask")
        dest = plan.dest[i]
        if dest >= 0:
            if plan.dest_klass[i] == 0:
                pfx, fmap, aidx = "int", "front0", plan.dest_aidx[i]
            else:
                pfx, fmap, aidx = "fp", "front1", plan.dest_aidx[i]
            emit(f"    preg = {pfx}_free.pop()")
            emit(f"    {pfx}_alloc[preg] = True")
            emit(f"    {pfx}_ready[preg] = NEVER")
            emit(f"    {pfx}_inv[preg] = False")
            emit(f"    {pfx}_pinned[preg] = False")
            emit(f"    used = {pfx}_size - len({pfx}_free)")
            emit(f"    if used > {pfx}_file.high_water:")
            emit(f"        {pfx}_file.high_water = used")
            emit("    inst.pdest = preg")
            emit(f"    inst.old_pdest = {fmap}[{aidx}]")
            emit(f"    {fmap}[{aidx}] = preg")
            emit(f"    arch_inv[{dest}] = False")
        q = plan.queues[i]
        emit(f"    q{q}.size += 1")
        emit(f"    q{q}_pt[tid] += 1")
        emit("    inst.in_iq = True")
        if has_src:
            fold_test = "mask & 1" if plan.is_store[i] else "mask"
            emit("    if pending == 0:")
            emit(f"        if {fold_test}:")
            emit("            fold(inst, now)")
            emit("        else:")
            emit("            inst.state = READY")
            emit(f"            q{q}_ready.append(inst)")
        else:
            emit("    inst.state = READY")
            emit(f"    q{q}_ready.append(inst)")

    emit("    # batched monotone counters (see _macro_dispatch)")
    emit(f"    rob._occupancy += {length}")
    emit(f"    rob.per_thread[tid] += {length}")
    emit(f"    thread.rob_held += {length}")
    emit(f"    stats.dispatched += {length}")
    if int_dest:
        emit(f"    thread.regs_held[0] += {int_dest}")
    if fp_dest:
        emit(f"    thread.regs_held[1] += {fp_dest}")
    emit("    gstats = pipeline.gstats")
    emit("    gstats.macro_steps += 1")
    emit(f"    gstats.macro_insts += {length}")
    emit(f"    return {length}")
    return "\n".join(out)


def compile_macro_handler(plan, runahead: bool, length=None):
    """Compile one plan variant into its specialized handler function.

    ``length`` selects a truncated-prefix handler (see module
    docstring); ``None`` compiles the full-length run.
    """
    source = _emit_source(plan, runahead, length)
    namespace = {
        "DISPATCHED": InstState.DISPATCHED,
        "READY": InstState.READY,
        "COMPLETED": InstState.COMPLETED,
        "NEVER": NEVER,
    }
    exec(compile(source, "<macro-jit>", "exec"), namespace)
    return namespace["_handler"]
