"""The SMT pipeline: fetch, dispatch, issue, complete, commit.

One :class:`SMTPipeline` simulates the whole machine cycle by cycle.  The
stage order inside :meth:`step` is back-to-front (completions and commit
before issue, issue before dispatch, dispatch before fetch) so every stage
observes the previous cycle's downstream state, as a real pipeline would.

Wakeup is event-driven (see :mod:`repro.core.issue_queue`), and memory and
execution latencies are carried by a cycle-indexed event table rather than
per-cycle scans, which keeps the Python model fast enough for full Table 2
sweeps.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..branch import BranchTargetBuffer, PerceptronPredictor
from ..config import SMTConfig, speculation_mode
from ..errors import DeadlockError, SimulationError
from ..isa import (
    IS_FP_BY_CODE,
    NO_REG,
    NUM_INT_ARCH_REGS,
    OP_FU_BY_CODE,
    OP_LATENCY_BY_CODE,
    OP_QUEUE_BY_CODE,
    OpClass,
    RegClass,
    reg_class,
)
from ..mem import MemoryHierarchy
from ..trace.trace import Trace
from .dyninst import DynInst, InstState
from .fu import FUPool
from .hookspec import horizon_covers_on_cycle, macro_covers_policy
from .issue_queue import IssueQueue, MEMORY_WAIT
from .regfile import NEVER as _NEVER, PhysRegFile
from .rename import RenameState
from .rob import SharedROB
from .runahead import RunaheadController
from .stats import GlobalStats
from .macro_jit import JIT_THRESHOLD as _JIT_THRESHOLD
from .macro_jit import PREFIX_JIT_THRESHOLD as _PREFIX_JIT_THRESHOLD
from .macro_jit import compile_macro_handler
from .thread import ThreadContext, ThreadMode, build_macro_plan

#: Event kinds in the cycle-indexed event table.
_EV_COMPLETE = 0
_EV_L2_DETECT = 1

#: Raw op code of SYNC (hot decode-drop test).
_SYNC_CODE = int(OpClass.SYNC)

#: Hoisted enum members / constants for the per-instruction hot paths
#: (module-level loads are one LOAD_GLOBAL; enum attribute chains are not).
_RUNAHEAD = ThreadMode.RUNAHEAD
_NORMAL = ThreadMode.NORMAL
_DISPATCHED = InstState.DISPATCHED
_READY = InstState.READY
_ISSUED = InstState.ISSUED
_COMPLETED = InstState.COMPLETED
_RETIRED = InstState.RETIRED
_SQUASHED = InstState.SQUASHED
#: Arch registers below this are INT (klass 0), at/above it FP (klass 1);
#: equivalent to reg_class() without the enum construction.
_NINT = NUM_INT_ARCH_REGS


#: Plan-cache probe sentinel: distinguishes "row never probed" from the
#: cached "no fusable run starts here" (None).
_PLAN_MISSING = object()

#: Cycles without a single commit before the deadlock guard trips.
_DEADLOCK_WINDOW = 100_000


class SMTPipeline:
    """Cycle-level model of the Table 1 SMT processor."""

    def __init__(self, config: SMTConfig, traces: List[Trace],
                 policy) -> None:
        config.validate()
        if not traces:
            raise SimulationError("at least one thread trace is required")
        if len(traces) > config.max_threads():
            raise SimulationError(
                f"{len(traces)} threads need "
                f"{len(traces) * 32} architectural registers per file; "
                f"config provides {config.int_regs}/{config.fp_regs}")
        self.config = config
        self.num_threads = len(traces)
        self.cycle = 0
        self.gstats = GlobalStats()

        self.int_file = PhysRegFile("int", config.int_regs)
        self.fp_file = PhysRegFile("fp", config.fp_regs)
        self.rob = SharedROB(config.rob_size, self.num_threads)
        self.queues = (
            IssueQueue("int", config.int_iq_size, self.num_threads),
            IssueQueue("fp", config.fp_iq_size, self.num_threads),
            IssueQueue("ls", config.ls_iq_size, self.num_threads),
        )
        self.fus = FUPool(config.int_units, config.fp_units,
                          config.ldst_units)
        self.mem = MemoryHierarchy(config, self.num_threads)
        # I-cache line index as a shift when line size is a power of two
        # (the fetch loop computes it per instruction); -1 falls back to
        # division.
        iline = config.icache.line_bytes
        self._iline_shift = (iline.bit_length() - 1
                             if iline & (iline - 1) == 0 else -1)
        #: Hot config scalars, hoisted once (SMTConfig is treated as
        #: immutable after construction): these are read per cycle or per
        #: instruction in the stage loops.
        self._width = config.width
        self._fetch_threads = config.fetch_threads
        self._fetch_buffer_size = config.fetch_buffer_size
        self._iline_bytes = iline
        self._icache_latency = config.icache.latency
        self._dcache_latency = config.dcache.latency
        self._l2_detect_latency = config.dcache.latency + config.l2.latency
        self.predictor = PerceptronPredictor(
            config.predictor_entries, config.predictor_history,
            self.num_threads)
        self.btb = BranchTargetBuffer(config.btb_entries)

        self.threads: List[ThreadContext] = []
        cacheable_limit = int(0.75 * config.l2.size_bytes)
        for tid, trace in enumerate(traces):
            rename = RenameState(tid, self.int_file, self.fp_file)
            shift = trace.data_region_bytes > cacheable_limit
            self.threads.append(ThreadContext(tid, trace, rename,
                                              pass_shift=shift))
            # Architectural state occupies registers from cycle 0.
            self.threads[tid].regs_held = [32, 32]
        #: Precomputed commit/dispatch round-robin orders: rotation r is
        #: the thread list starting at thread r.  Replaces two modulo
        #: operations and a range allocation per stage per cycle.
        self._rotations = tuple(
            tuple(self.threads[(first + offset) % self.num_threads]
                  for offset in range(self.num_threads))
            for first in range(self.num_threads))

        self.runahead = RunaheadController(self)
        self.policy = policy
        #: Hoisted for the commit/dispatch/skip hot paths (both are
        #: fixed at construction, never mutated at run time).
        self._uses_runahead = policy.uses_runahead
        self._ra_fp_inval = self.runahead.fp_invalidation
        policy.attach(self)

        self._events: Dict[int, List[Tuple[int, DynInst]]] = {}
        #: Min-heap of the event table's cycle keys (one push per bucket
        #: creation; stale keys are lazily popped).  Keeps the next-event
        #: query O(log n) instead of a full dict scan per quiescence
        #: check.
        self._event_heap: List[int] = []
        self._gseq = 0
        self._last_commit_cycle = 0
        self._fold_worklist: List[DynInst] = []

        #: Event-driven cycle skipping (see :meth:`advance`).  On by
        #: default; benchmarks flip it off to time the per-cycle model.
        self.cycle_skip = True
        self.skipped_cycles = 0   # idle cycles jumped over, bulk-accounted
        self.skip_jumps = 0       # number of jumps taken
        # A policy with per-cycle behaviour (an on_cycle override) must
        # declare its wakeups via skip_horizon, or skipping would jump
        # over cycles it needed to observe; unknown policies therefore
        # disable the fast path rather than risk divergence.  The check
        # is MRO-aware (see repro.core.hookspec, shared with the static
        # hook-conformance lint rule): a subclass overriding on_cycle
        # below an inherited skip_horizon gets the fast path disabled
        # too — the parent's horizon says nothing about the child's
        # behaviour.
        from ..policies.base import FetchPolicy
        policy_type = type(policy)
        overrides_on_cycle = policy_type.on_cycle is not FetchPolicy.on_cycle
        self._policy_has_horizon = (policy_type.skip_horizon
                                    is not FetchPolicy.skip_horizon)
        self._policy_skip_ok = horizon_covers_on_cycle(policy_type)
        # Avoid a no-op bound-method call per cycle for the many policies
        # that never override on_cycle.
        self._policy_on_cycle = policy.on_cycle if overrides_on_cycle else None

        #: Macro-step speculation: the guarded fused dispatch fast path
        #: (see :meth:`_macro_dispatch`).  Controlled by the
        #: ``REPRO_SPECULATE`` environment knob rather than an SMTConfig
        #: field — the config encoding doubles as the result-cache key,
        #: and by the bit-identity contract this switch cannot change
        #: any result (tests/test_macro_speculation.py).  ``auto``
        #: additionally vetoes policies whose accounting overrides do
        #: not declare ``macro_step_ok`` (the skip_horizon opt-in
        #: pattern); ``on`` trusts construction-time bit-identity even
        #: for those.  Mutable, like ``cycle_skip``.
        overrides_macro_ok = (policy_type.macro_step_ok
                              is not FetchPolicy.macro_step_ok)
        self._macro_step_ok = (policy.macro_step_ok if overrides_macro_ok
                               else None)
        mode = speculation_mode()
        self.macro_spec = (mode == "on"
                           or (mode == "auto"
                               and macro_covers_policy(policy_type)))
        # Plans depend only on trace columns + width: share the cache
        # trace-wide so co-threads and repeated runs reuse recordings.
        # The per-thread fetch address columns (thread-offset PC and its
        # i-cache line) are precomputed here too — numpy vector ops, then
        # one list per thread — so the fetch loop does a plain subscript
        # instead of an add and a shift per fetched instruction.
        shift = self._iline_shift
        for thread in self.threads:
            thread.macro_plans = thread.trace.macro_plan_cache(self._width)
            pcs_off = thread.trace.pc + thread.code_offset
            lines = (pcs_off >> shift if shift >= 0
                     else pcs_off // self._iline_bytes)
            thread.pcs_off = pcs_off.tolist()
            thread.fetch_lines = lines.tolist()

    # ------------------------------------------------------------------ cycle

    def step(self) -> None:
        """Advance the machine by one cycle."""
        now = self.cycle
        fus = self.fus                      # inlined new_cycle
        available = fus._available
        capacity = fus._capacity
        available[0] = capacity[0]
        available[1] = capacity[1]
        available[2] = capacity[2]
        self._process_events(now)
        if self._policy_on_cycle is not None:
            self._policy_on_cycle(now)
        self._commit_stage(now)
        self._issue_stage(now)
        self._dispatch_stage(now)
        self._fetch_stage(now)
        self._sample_stats()
        self.cycle = now + 1
        if now - self._last_commit_cycle > _DEADLOCK_WINDOW:
            raise DeadlockError(now, "no instruction committed recently")

    # ------------------------------------------------------- cycle skipping

    def advance(self, limit: Optional[int] = None) -> None:
        """One :meth:`step`, then jump over provably idle cycles.

        After the stepped cycle, if the machine is *quiescent* — no
        issue-queue entry can issue, no ROB head is completed, no thread
        can fetch or dispatch, and the policy declares no wakeup — then
        nothing can happen until the earliest of the per-structure
        wakeup horizons :meth:`_skip_target` folds together: the next
        entry in the cycle-indexed event table, a fetch gate expiring, a
        runahead exit falling due, the MSHR file's next fill (ready
        loads replaying against a full file), or the policy's
        :meth:`~repro.policies.base.FetchPolicy.skip_horizon`.
        ``self.cycle`` jumps straight there, with the per-cycle
        statistics (register-occupancy samples, runahead cycles,
        stall/conflict counters) bulk-accounted so results are
        bit-identical to stepping every cycle (see
        ``tests/test_golden_digest.py``).  Windows *inside* a busy
        thread are skippable too: a thread spinning on a rejected load
        or waiting out its runahead trigger contributes a wakeup cycle
        instead of pinning the machine to per-cycle stepping.

        ``limit`` clamps the jump target (the FAME runner passes its
        ``max_cycles`` cap so truncated runs report the same cycle
        count).  The deadlock guard also clamps the target, so a truly
        dead machine still raises :class:`DeadlockError` at the exact
        cycle the per-cycle model would have.

        :meth:`step` keeps strict one-cycle semantics for tests and
        debugging; this is the loop the FAME runner drives.
        """
        if not (self.cycle_skip and self._policy_skip_ok):
            self.step()
            return
        gseq_before = self._gseq
        gstats = self.gstats
        committed_before = gstats.committed
        executed_before = gstats.executed
        self.step()
        # Activity precheck: a cycle that fetched, issued or committed
        # anything cannot open an idle window, so skip the full
        # quiescence scan (the overwhelmingly common case while busy).
        if (self._gseq != gseq_before
                or gstats.committed != committed_before
                or gstats.executed != executed_before):
            return
        start = self.cycle
        target = self._skip_target(start, limit)
        if target > start:
            self._skip_to(start, target)

    def _skip_target(self, start: int, limit: Optional[int]) -> int:
        """Latest cycle before which provably nothing can happen.

        Returns ``start`` when any structure could act next cycle (the
        machine is not quiescent).

        Quiescence is decided structure by structure, and every structure
        that can wake the machine *clamps* the jump target with its own
        horizon rather than vetoing the skip outright:

        * the issue queues (:meth:`IssueQueue.next_ready_cycle
          <repro.core.issue_queue.IssueQueue.next_ready_cycle>`) — a
          live ready entry pins ``start``, unless every ready entry is a
          demand load replaying against a full MSHR file, in which case
          the wakeup belongs to the memory system
          (:meth:`~repro.mem.hierarchy.MemoryHierarchy.next_fill_cycle`);
        * per-thread fetch gates, runahead exits and runahead-entry
          eligibility at the window heads;
        * the cycle-indexed event table (completions / L2 detections),
          via a lazily-pruned min-heap of its keys;
        * the policy's :meth:`~repro.policies.base.FetchPolicy.
          skip_horizon`.

        The FU pools need no clamp term here: they are fully pipelined
        (budgets refresh next cycle, :meth:`FUPool.next_release_cycle
        <repro.core.fu.FUPool.next_release_cycle>`), and a pool can only
        be exhausted on a cycle that issued instructions — which the
        activity precheck in :meth:`advance` already refuses to skip.
        """
        if self._fold_worklist:
            return start
        memory_wait = False
        for queue in self.queues:
            wake = queue.next_ready_cycle(start)
            if wake is not None:
                if wake != MEMORY_WAIT:
                    return start        # issueable entry next cycle
                memory_wait = True      # replaying loads; MSHRs own the wake

        bound = self._last_commit_cycle + _DEADLOCK_WINDOW + 1
        if limit is not None and limit < bound:
            bound = limit
        if memory_wait:
            fill = self.mem.next_fill_cycle(start)
            if fill is None or fill <= start:
                return start            # defensive: unknown horizon
            if fill < bound:
                bound = fill
        uses_runahead = self._uses_runahead
        rob_windows = self.rob._queues   # read-only peek at the heads
        buffer_size = self._fetch_buffer_size
        for thread in self.threads:
            # Ordered by how often a busy machine bails on each test.
            if len(thread.fetch_queue) < buffer_size:
                fetchable_at = thread.fetch_blocked_until
                if thread.fetch_gated_until > fetchable_at:
                    fetchable_at = thread.fetch_gated_until
                if fetchable_at <= start:
                    return start            # fetch possible this cycle
                if fetchable_at < bound:
                    bound = fetchable_at
            window = rob_windows[thread.tid]
            if window:
                head = window[0]
                if head.state == _COMPLETED:
                    return start            # commit / pseudo-retire due
                if (head.l2_miss and uses_runahead   # cheap prefilter
                        and thread.mode is _NORMAL
                        and self.runahead.should_enter(thread, head, start)):
                    return start            # runahead entry due
            if thread.mode is _RUNAHEAD:
                ready = thread.runahead_trigger_ready
                if ready <= start:
                    return start            # exit falls due this cycle
                if ready < bound:
                    bound = ready
            if thread.fetch_queue and not self._dispatch_blocked(thread):
                return start                # dispatch possible this cycle
        next_event = self._next_event_cycle()
        if next_event is not None:
            if next_event <= start:
                return start                # defensive; events are future
            if next_event < bound:
                bound = next_event
        if self._policy_has_horizon:
            horizon = self.policy.skip_horizon(start)
            if horizon is not None:
                if horizon <= start:
                    return start            # policy acts this cycle
                if horizon < bound:
                    bound = horizon
        return bound

    def _dispatch_blocked(self, thread: ThreadContext) -> bool:
        """Would the thread's next dispatch fail for an event-stable reason?

        Mirrors :meth:`_dispatch`'s failure paths.  Each blocking
        resource (ROB entries, issue-queue entries, rename registers)
        can only be released by a completion event, a runahead exit, or
        a policy wakeup — all of which clamp the skip target — so a
        blocked verdict holds for the whole skipped window.
        """
        if self.rob.is_full():
            return True
        inst = thread.fetch_queue[0]
        op = inst.op
        if thread.in_runahead and (
                (self.runahead.fp_invalidation and IS_FP_BY_CODE[op])
                or op == _SYNC_CODE):
            return False   # decode-drop needs only a ROB slot: would proceed
        if self.queues[OP_QUEUE_BY_CODE[op]].is_full():
            return True
        if inst.dest_arch != NO_REG:
            file = self.int_file \
                if reg_class(inst.dest_arch) == RegClass.INT else self.fp_file
            if file.free_count == 0:
                return True
        return False

    def _skip_to(self, start: int, target: int) -> None:
        """Jump from ``start`` to ``target``, bulk-accounting the idle
        cycles exactly as ``target - start`` no-op steps would have.
        """
        k = target - start
        stalled_threads = 0
        conflicts = 0
        for thread in self.threads:
            held = thread.regs_held[0] + thread.regs_held[1]
            stats = thread.stats
            if thread.in_runahead:
                stats.runahead_cycles += k
                stats.runahead_reg_samples += k
                stats.runahead_regs_held += k * held
            else:
                stats.normal_reg_samples += k
                stats.normal_regs_held += k * held
            if thread.fetch_queue:
                stalled_threads += 1
            gate = thread.fetch_blocked_until
            if thread.fetch_gated_until > gate:
                gate = thread.fetch_gated_until
            if gate > start:
                # can_fetch() is false until the gate expires; policies
                # that re-gate every cycle (hill climbing) would keep it
                # false longer, but only this conservative count is
                # derivable from frozen state (gstats are diagnostics,
                # not part of SimResult).
                conflicts += k if gate - start > k else gate - start
        self.gstats.cycles += k
        self.gstats.dispatch_stalls += k * stalled_threads
        self.gstats.fetch_conflicts += conflicts
        self.skipped_cycles += k
        self.skip_jumps += 1
        self.cycle = target

    # --------------------------------------------------------------- events

    def schedule(self, cycle: int, kind: int, inst: DynInst) -> None:
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [(kind, inst)]
            # One heap push per *bucket*, not per event: the dict key is
            # the dedup, so the heap stays no larger than the live (plus
            # recently-drained) cycle set.
            heappush(self._event_heap, cycle)
        else:
            bucket.append((kind, inst))

    def _next_event_cycle(self) -> Optional[int]:
        """Earliest cycle with a pending event bucket, or None.

        Keys whose bucket has already been drained are popped lazily
        here, so the query costs O(log n) amortized instead of the
        ``min(dict)`` scan it replaces.
        """
        heap = self._event_heap
        events = self._events
        while heap:
            cycle = heap[0]
            if cycle in events:
                return cycle
            heappop(heap)
        return None

    def _process_events(self, now: int) -> None:
        events = self._events
        bucket = events.pop(now, None)
        # Prune heap keys for already-drained buckets as the cycle
        # counter passes them (amortized O(1) per cycle).  Without this,
        # busy runs — which never reach the quiescence-path pruning in
        # _next_event_cycle — would retain one stale key per event cycle
        # for the whole run.
        heap = self._event_heap
        while heap and heap[0] <= now and heap[0] not in events:
            heappop(heap)
        if not bucket:
            return
        threads = self.threads
        int_file = self.int_file
        fp_file = self.fp_file
        src_ready = self._src_ready
        for kind, inst in bucket:
            state = inst.state
            if state == _SQUASHED or state == _RETIRED:
                continue
            if kind == _EV_COMPLETE:
                if state == _ISSUED:
                    # Inlined _complete (the per-completion hot path).
                    inst.state = _COMPLETED
                    thread = threads[inst.tid]
                    if inst.l2_counted:
                        inst.l2_counted = False
                        thread.pending_l2_misses -= 1
                    preg = inst.pdest
                    if preg != NO_REG:
                        invalid = inst.invalid
                        file = (int_file if inst.dest_arch < _NINT
                                else fp_file)
                        file.ready[preg] = now       # inlined set_ready
                        file.inv[preg] = invalid
                        woken = file.waiters[preg]
                        if woken:
                            file.waiters[preg] = []
                            for waiter in woken:
                                src_ready(waiter, now, preg, invalid)
                        if invalid and thread.mode is _RUNAHEAD:
                            self._recycle_runahead_dest(thread, inst)
                    if (inst.is_branch and not inst.invalid
                            and inst.mispredicted):
                        self._resolve_misprediction(inst, now)
            elif kind == _EV_L2_DETECT:
                if state < _RETIRED:
                    self._on_l2_detected(inst, now)
        if self._fold_worklist:
            self._drain_folds(now)

    def _complete(self, inst: DynInst, now: int) -> None:
        # Readable form; _process_events carries an inlined mirror of
        # this body for the per-completion hot path.
        inst.state = _COMPLETED
        thread = self.threads[inst.tid]
        if inst.l2_counted:
            inst.l2_counted = False
            thread.pending_l2_misses -= 1
        preg = inst.pdest
        if preg != NO_REG:
            invalid = inst.invalid
            file = self.int_file if inst.dest_arch < _NINT else self.fp_file
            file.ready[preg] = now               # inlined set_ready
            file.inv[preg] = invalid
            woken = file.waiters[preg]
            if woken:
                file.waiters[preg] = []
                for waiter in woken:
                    self._src_ready(waiter, now, preg, invalid)
            if invalid and thread.mode is _RUNAHEAD:
                self._recycle_runahead_dest(thread, inst)
        if inst.is_branch and not inst.invalid and inst.mispredicted:
            self._resolve_misprediction(inst, now)

    def _on_l2_detected(self, inst: DynInst, now: int) -> None:
        """A demand load has been discovered to miss in the L2 cache."""
        inst.l2_miss = True
        inst.l2_counted = True
        thread = self.threads[inst.tid]
        thread.pending_l2_misses += 1
        self.policy.on_l2_miss_detected(thread, inst, now)

    # --------------------------------------------------------------- wakeup / fold

    def _src_ready(self, inst: DynInst, now: int, preg: int,
                   invalid: bool) -> None:
        if inst.state != _DISPATCHED:
            return
        if invalid:
            # Record validity *now*: the producing register may be
            # recycled (runahead frees INV registers at pseudo-retire)
            # before this instruction's other operands arrive.
            if inst.psrc1 == preg:
                inst.src_inv_mask |= 1
            if inst.psrc2 == preg:
                inst.src_inv_mask |= 2
        inst.pending_srcs -= 1
        if inst.pending_srcs > 0:
            return
        if self._operands_invalid(inst):
            self._fold_worklist.append(inst)
        else:
            inst.state = _READY
            self.queues[OP_QUEUE_BY_CODE[inst.op]]._ready.append(inst)

    def _operands_invalid(self, inst: DynInst) -> bool:
        """Fold test: does any operand needed for execution carry INV?

        Validity was latched into ``src_inv_mask`` when each operand became
        known (dispatch for already-ready sources, wakeup for the rest).
        Stores fold only on an invalid *address* (src1); invalid store data
        merely marks the forwarded value invalid (§3.3, runahead cache
        discussion).
        """
        mask = inst.src_inv_mask
        if inst.is_store:
            return bool(mask & 1)
        return mask != 0

    def _fold(self, inst: DynInst, now: int) -> None:
        """Squash-free cancellation: complete instantly with an INV result."""
        inst.invalid = True
        inst.state = _COMPLETED
        inst.complete_cycle = now
        if inst.in_iq:
            self.queues[OP_QUEUE_BY_CODE[inst.op]].remove(inst)
        self._uncount(inst)
        thread = self.threads[inst.tid]
        # Folded instructions never execute (paper §3.1), so they are kept
        # out of the executed-instruction energy proxy.
        thread.stats.folded += 1
        if inst.pdest != NO_REG:
            file = self.int_file if inst.dest_arch < _NINT else self.fp_file
            woken = file.set_ready(inst.pdest, now, invalid=True)
            for waiter in woken:
                self._src_ready(waiter, now, inst.pdest, True)
            if thread.mode is _RUNAHEAD:
                self._recycle_runahead_dest(thread, inst)

    def _drain_folds(self, now: int) -> None:
        while self._fold_worklist:
            inst = self._fold_worklist.pop()
            if inst.state == _DISPATCHED:
                self._fold(inst, now)

    def _uncount(self, inst: DynInst) -> None:
        if inst.counted:
            inst.counted = False
            self.threads[inst.tid].icount -= 1

    # --------------------------------------------------------------- commit

    def _commit_stage(self, now: int) -> None:
        budget = self._width
        for thread in self._rotations[now % self.num_threads]:
            if (thread.mode is _RUNAHEAD            # inlined should_exit
                    and now >= thread.runahead_trigger_ready):
                self.runahead.exit(thread, now)
                continue
            budget = self._commit_thread(thread, now, budget)
            if budget <= 0:
                break

    def _commit_thread(self, thread: ThreadContext, now: int,
                       budget: int) -> int:
        tid = thread.tid
        rob = self.rob
        window = rob._queues[tid]   # peek; pops inlined below
        if not window:
            return budget
        stats = thread.stats
        # The mode is stable across the loop: runahead entry breaks out,
        # runahead exit happens in _commit_stage — so the normal and
        # runahead commit loops can be specialized separately with the
        # per-instruction helpers inlined (the per-inst hot path).
        if thread.mode is _NORMAL:
            last_index = thread.last_index
            gstats = self.gstats
            while budget > 0 and window:
                head = window[0]
                if head.state == _COMPLETED:
                    window.popleft()        # inlined _commit / pop_head
                    rob._occupancy -= 1
                    rob.per_thread[tid] -= 1
                    head.state = _RETIRED
                    thread.rob_held -= 1
                    stats.committed += 1
                    gstats.committed += 1
                    self._last_commit_cycle = now
                    budget -= 1
                    dest_arch = head.dest_arch
                    if head.pdest != NO_REG:
                        if dest_arch < _NINT:
                            klass = 0
                            arch_index = dest_arch
                        else:
                            klass = 1
                            arch_index = dest_arch - _NINT
                        old = thread.rename.commit_dest(
                            klass, arch_index, head.pdest)
                        if old != head.pdest:
                            self._release_preg(thread, klass, old)
                    if head.is_store:
                        self.mem.data_access_packed(head.addr, True,
                                                    now, tid)
                    if head.trace_index == last_index:
                        thread.finished_passes += 1
                        stats.passes += 1
                elif (head.l2_miss and self._uses_runahead
                      and self.runahead.should_enter(thread, head, now)):
                    self._enter_runahead(thread, head, now)
                    return budget - 1
                else:
                    break
            return budget
        int_file = self.int_file
        fp_file = self.fp_file
        recycle = self._recycle_runahead_dest
        while budget > 0 and window:
            head = window[0]
            if head.state != _COMPLETED:
                break
            window.popleft()        # inlined _pseudo_retire / pop_head
            rob._occupancy -= 1
            rob.per_thread[tid] -= 1
            head.state = _RETIRED
            thread.rob_held -= 1
            stats.pseudo_retired += 1
            # Forward progress, albeit speculative.
            self._last_commit_cycle = now
            budget -= 1
            dest_arch = head.dest_arch
            if dest_arch == NO_REG:
                continue
            if dest_arch < _NINT:
                klass, file = 0, int_file
            else:
                klass, file = 1, fp_file
            old = head.old_pdest
            if old != NO_REG and not file.pinned[old]:
                # Inlined _release_preg (pinned pre-checked just above).
                if not file._allocated[old]:
                    raise SimulationError(
                        f"{file.name}: double release of p{old}")
                file._allocated[old] = False
                file.waiters[old].clear()
                file._free.append(old)
                thread.regs_held[klass] -= 1
            if head.pdest != NO_REG:   # prefilter: recycle's early-out
                recycle(thread, head)
        return budget

    def _enter_runahead(self, thread: ThreadContext, trigger: DynInst,
                        now: int) -> None:
        """Checkpoint and pseudo-retire the triggering L2-miss load (§3.1)."""
        self.runahead.enter(thread, trigger, now)
        self.rob.pop_head(thread.tid)
        trigger.state = _RETIRED
        thread.rob_held -= 1
        thread.stats.pseudo_retired += 1
        if trigger.l2_counted:
            trigger.l2_counted = False
            thread.pending_l2_misses -= 1
        # Bogus INV value: dependents fold as they wake.
        if trigger.pdest != NO_REG:
            if trigger.dest_arch < _NINT:
                klass, file = 0, self.int_file
            else:
                klass, file = 1, self.fp_file
            woken = file.set_ready(trigger.pdest, now, invalid=True)
            for waiter in woken:
                self._src_ready(waiter, now, trigger.pdest, True)
            if trigger.old_pdest != NO_REG \
                    and not file.pinned[trigger.old_pdest]:
                self._release_preg(thread, klass, trigger.old_pdest)
        # §3.2: every other in-flight long-latency load of this thread is
        # invalidated too — its fill continues as a prefetch, but its
        # dependents fold instead of clogging the shared issue queues for
        # the whole episode.
        horizon = now + self.config.dcache.latency + self.config.l2.latency
        for inflight in self.rob.thread_window(thread.tid):
            if (inflight.is_load and inflight.state == _ISSUED
                    and (inflight.l2_miss or inflight.complete_cycle > horizon)):
                inflight.invalid = True
                self._complete(inflight, now)
        self._drain_folds(now)

    def _release_preg(self, thread: ThreadContext, klass: int,
                      preg: int) -> None:
        file = self.int_file if klass == 0 else self.fp_file
        # Inlined PhysRegFile.release (one call per retired destination);
        # the conservation checks are kept — they are what the heavy
        # invariant tests lean on.
        if not file._allocated[preg]:
            raise SimulationError(
                f"{file.name}: double release of p{preg}")
        if file.pinned[preg]:
            raise SimulationError(
                f"{file.name}: releasing pinned register p{preg}")
        file._allocated[preg] = False
        file.waiters[preg].clear()
        file._free.append(preg)
        thread.regs_held[klass] -= 1

    def _recycle_runahead_dest(self, thread: ThreadContext,
                               inst: DynInst) -> None:
        """Early release of a runahead destination register (§3.3).

        Invalid results hold no value ("when a physical register is
        invalid this can be freed and used for the rest of the threads");
        valid pseudo-retired results live on conceptually through the
        checkpointed map — values are already computed, so later consumers
        resolving to the architectural register observe correct timing.
        Only applies while the mapping is still current and unpinned.
        """
        if inst.pdest == NO_REG:
            return
        if inst.dest_arch < _NINT:
            klass, file = 0, self.int_file
            arch_index = inst.dest_arch
        else:
            klass, file = 1, self.fp_file
            arch_index = inst.dest_arch - _NINT
        preg = inst.pdest
        if file.pinned[preg]:
            return
        front = thread.rename.front[klass]
        if front[arch_index] != preg:
            return
        front[arch_index] = thread.rename.arch[klass][arch_index]
        # Inlined _release_preg (pinned pre-checked just above).
        if not file._allocated[preg]:
            raise SimulationError(
                f"{file.name}: double release of p{preg}")
        file._allocated[preg] = False
        file.waiters[preg].clear()
        file._free.append(preg)
        thread.regs_held[klass] -= 1
        thread.arch_inv[inst.dest_arch] = inst.invalid   # note_arch_invalid
        inst.pdest = NO_REG

    # --------------------------------------------------------------- issue

    def _issue_stage(self, now: int) -> None:
        # IssueQueueKind and FUKind coincide numerically (INT/FP + LS/LDST),
        # so the queue index doubles as the FU pool index.
        fus = self.fus
        available = fus._available
        issued = fus.issued
        threads = self.threads
        events = self._events
        heap = self._event_heap
        gstats = self.gstats
        issue_load = self._issue_load
        issue_store = self._issue_store
        for queue_kind in (2, 0, 1):     # LS first, then INT, FP
            queue = self.queues[queue_kind]
            if not queue._ready:
                continue
            budget = available[queue_kind]
            if budget <= 0:
                continue
            per_thread = queue.per_thread
            for inst in queue.take_ready(budget):
                # Inlined _issue (the per-instruction issue hot path).
                tid = inst.tid
                thread = threads[tid]
                if inst.is_load:
                    if not issue_load(thread, inst, queue, now):
                        continue
                elif inst.is_store:
                    issue_store(thread, inst, now)
                else:
                    cycle = now + OP_LATENCY_BY_CODE[inst.op]
                    inst.complete_cycle = cycle
                    bucket = events.get(cycle)   # inlined schedule()
                    if bucket is None:
                        events[cycle] = [(_EV_COMPLETE, inst)]
                        heappush(heap, cycle)
                    else:
                        bucket.append((_EV_COMPLETE, inst))
                # Inlined FUPool.acquire: the take_ready budget is the
                # available unit count, so the pool can never be
                # exhausted here.
                kind = OP_FU_BY_CODE[inst.op]
                available[kind] -= 1
                issued[kind] += 1
                inst.state = _ISSUED
                # Inlined queue.remove: a selected entry is always in its
                # queue, and take_ready already stripped replay deferral.
                inst.in_iq = False
                queue.size -= 1
                per_thread[tid] -= 1
                if inst.counted:   # inlined _uncount
                    inst.counted = False
                    thread.icount -= 1
                stats = thread.stats
                stats.issued += 1
                stats.executed += 1
                gstats.executed += 1
        if self._fold_worklist:
            self._drain_folds(now)

    def _issue_store(self, thread: ThreadContext, inst: DynInst,
                     now: int) -> None:
        """Stores compute their address at issue; memory is written at
        commit (write buffer).  Runahead stores never write memory but do
        prefetch their line and feed the runahead cache (§3.3)."""
        inst.complete_cycle = now + 1
        self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)
        if thread.mode is _RUNAHEAD:
            data_valid = not (inst.src_inv_mask & 2)
            self.runahead.on_runahead_store(thread, inst, data_valid)
            if self.runahead.prefetch:
                self.mem.data_access_packed(inst.addr, True, now,
                                            thread.tid, speculative=True)

    def _issue_load(self, thread: ThreadContext, inst: DynInst,
                    queue: IssueQueue, now: int) -> bool:
        """Issue a load; returns False if it must retry (MSHRs full)."""
        if thread.mode is _RUNAHEAD:
            self._issue_runahead_load(thread, inst, now)
            return True
        packed = self.mem.data_access_packed(inst.addr, False, now,
                                             thread.tid)
        if packed < 0:
            # Demand miss rejected by a full MSHR file: replay next cycle.
            # The replay flag tells the fast path this entry cannot issue
            # before the MSHRs release an entry (mem.next_fill_cycle), so
            # the retry window is skippable instead of stepped.
            queue.requeue(inst, replay=True)
            return False
        cycle = packed >> 2
        inst.complete_cycle = cycle
        events = self._events                # inlined schedule()
        bucket = events.get(cycle)
        if bucket is None:
            events[cycle] = [(_EV_COMPLETE, inst)]
            heappush(self._event_heap, cycle)
        else:
            bucket.append((_EV_COMPLETE, inst))
        if packed & 2:
            detect = min(cycle, now + self._l2_detect_latency)
            self.schedule(detect, _EV_L2_DETECT, inst)
        return True

    def _issue_runahead_load(self, thread: ThreadContext, inst: DynInst,
                             now: int) -> None:
        """Runahead loads: cache hits complete normally; L2 misses become
        prefetches and produce INV at L2-lookup time (§3.2)."""
        l1_latency = self._dcache_latency
        detect_latency = self._l2_detect_latency
        forwarded = self.runahead.load_forward_validity(thread, inst)
        if forwarded is not None:
            inst.invalid = not forwarded
            inst.complete_cycle = now + l1_latency
            self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)
            return
        if not self.runahead.prefetch:
            # Figure 4 ablation: no L2/memory traffic from runahead.
            level = self.mem.peek_data(inst.addr)
            if level == "l1":
                inst.complete_cycle = now + l1_latency
            elif level == "l2":
                inst.complete_cycle = now + detect_latency
            else:
                inst.invalid = True
                inst.complete_cycle = now + detect_latency
                thread.no_retrigger.add(
                    inst.pass_no * thread.retrigger_stride
                    + inst.trace_index)
            self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)
            return
        packed = self.mem.data_access_packed(inst.addr, False, now,
                                             thread.tid, speculative=True)
        if packed < 0:
            # Prefetch dropped (MSHRs full): bogus value, no retry.
            inst.invalid = True
            inst.complete_cycle = now + l1_latency
        elif packed & 2:
            # Long-latency: invalidate the dest, keep the fill as prefetch.
            inst.invalid = True
            inst.complete_cycle = min(packed >> 2, now + detect_latency)
            if self.runahead.stop_fetch_on_l2_miss:
                thread.gate_fetch_until(thread.runahead_trigger_ready)
        else:
            inst.complete_cycle = packed >> 2
        cycle = inst.complete_cycle
        events = self._events                # inlined schedule()
        bucket = events.get(cycle)
        if bucket is None:
            events[cycle] = [(_EV_COMPLETE, inst)]
            heappush(self._event_heap, cycle)
        else:
            bucket.append((_EV_COMPLETE, inst))

    # --------------------------------------------------------------- branch resolution

    def _resolve_misprediction(self, inst: DynInst, now: int) -> None:
        thread = self.threads[inst.tid]
        thread.stats.mispredicts += 1
        self.squash_thread_younger(thread, inst.seq)
        next_index = inst.trace_index + 1
        next_pass = inst.pass_no
        if next_index >= len(thread.trace):
            next_index = 0
            next_pass += 1
        thread.rewind_to(next_index, next_pass)
        thread.block_fetch_until(now + self.config.redirect_penalty)

    # --------------------------------------------------------------- squash

    def squash_thread_younger(self, thread: ThreadContext,
                              boundary_seq: int) -> int:
        """Cancel all of a thread's instructions younger than a boundary.

        Returns the number of instructions squashed.  Rename repair runs
        youngest-first so front-end map restoration is exact.
        """
        count = 0
        for inst in thread.fetch_queue:
            self._uncount(inst)
            inst.state = _SQUASHED
            thread.stats.squashed += 1
            count += 1
        thread.fetch_queue.clear()
        for inst in self.rob.squash_younger(thread.tid, boundary_seq):
            self._squash_rob_entry(thread, inst)
            count += 1
        thread.fetch_line = -1
        return count

    def squash_thread_all(self, thread: ThreadContext) -> int:
        """Cancel every in-flight instruction of a thread (runahead exit)."""
        return self.squash_thread_younger(thread, -1)

    def _squash_rob_entry(self, thread: ThreadContext,
                          inst: DynInst) -> None:
        if inst.in_iq:
            self.queues[OP_QUEUE_BY_CODE[inst.op]].remove(inst)
        self._uncount(inst)
        if inst.l2_counted:
            inst.l2_counted = False
            thread.pending_l2_misses -= 1
        thread.rob_held -= 1
        if inst.pdest != NO_REG:
            if inst.dest_arch < _NINT:
                klass = 0
                arch_index = inst.dest_arch
            else:
                klass = 1
                arch_index = inst.dest_arch - _NINT
            thread.rename.undo_rename(klass, arch_index, inst.old_pdest)
            self._release_preg(thread, klass, inst.pdest)
        inst.state = _SQUASHED
        thread.stats.squashed += 1

    # --------------------------------------------------------------- dispatch

    def _dispatch_stage(self, now: int) -> None:
        budget = self._width
        dispatch = self._dispatch
        macro = self.macro_spec
        for thread in self._rotations[now % self.num_threads]:
            fetch_queue = thread.fetch_queue
            if macro and budget > 1 and len(fetch_queue) > 1:
                taken = self._macro_dispatch(thread, fetch_queue, now,
                                             budget)
                if taken:
                    budget -= taken
                    if budget <= 0:
                        break
            while budget > 0 and fetch_queue:
                if not dispatch(thread, fetch_queue[0], now):
                    self.gstats.dispatch_stalls += 1
                    break
                fetch_queue.popleft()
                budget -= 1
            if budget <= 0:
                break
        if self._fold_worklist:
            self._drain_folds(now)

    def _macro_abort(self, cause: str) -> None:
        """Account one failed macro-step entry guard (no state mutated)."""
        gstats = self.gstats
        gstats.macro_guard_aborts += 1
        causes = gstats.macro_abort_causes
        causes[cause] = causes.get(cause, 0) + 1

    def _macro_dispatch(self, thread: ThreadContext, fetch_queue,
                        now: int, budget: int) -> int:
        """Guarded fused dispatch of one macro run; returns insts taken.

        The macro-step layer's dispatcher: look up (or record) the
        pre-decoded :class:`~repro.core.thread.MacroPlan` for the run
        headed by the fetch queue's front entry, check the *entry
        guards* — ROB / per-issue-queue / per-register-file headroom
        against the plan's exact demand prefix, plus the policy's
        :meth:`~repro.policies.base.FetchPolicy.macro_step_ok` veto —
        and, only if every guard holds, rename and dispatch the whole
        run in one fused loop with all shared lookups hoisted out.

        Abort semantics are strictly *entry-guarded*: no machine state
        is touched before the last guard passes, so a failed guard
        costs one counter bump and falls through to the per-stage path —
        there is no rollback, and the result is bit-identical either
        way.  Guard sufficiency: dispatching can only *release*
        resources mid-run (a fold frees its queue slot and, in
        runahead, its destination register), so demand computed as if
        nothing were released is an upper bound, and every instruction
        of a guarded run is guaranteed to dispatch exactly as the
        per-stage path would have.
        """
        start = fetch_queue[0].trace_index
        plans = thread.macro_plans
        plan = plans.get(start, _PLAN_MISSING)
        if plan is _PLAN_MISSING:
            plan = build_macro_plan(thread, start, self._width)
            plans[start] = plan
        if plan is None:
            return 0    # speculation-unsafe head: per-stage path owns it
        k = plan.length
        qlen = len(fetch_queue)
        if qlen < k:
            k = qlen
        if budget < k:
            k = budget
        rob = self.rob
        headroom = rob.capacity - rob._occupancy
        if headroom < k:
            if headroom < 2:
                self._macro_abort("rob")
                return 0
            k = headroom
        drop_active = thread.mode is _RUNAHEAD and self._ra_fp_inval
        demands = (plan.runahead_demand if drop_active
                   else plan.normal_demand)
        queues = self.queues
        int_file = self.int_file
        fp_file = self.fp_file
        room_q0 = queues[0].capacity - queues[0].size
        room_q1 = queues[1].capacity - queues[1].size
        room_q2 = queues[2].capacity - queues[2].size
        room_d0 = len(int_file._free)
        room_d1 = len(fp_file._free)
        need_q0, need_q1, need_q2, need_d0, need_d1 = demands[k]
        if (need_q0 > room_q0 or need_q1 > room_q1 or need_q2 > room_q2
                or need_d0 > room_d0 or need_d1 > room_d1):
            # Shrink to the longest prefix the headroom covers (demand
            # prefixes are monotone, so scanning down finds it); only a
            # front that cannot even dispatch a 2-run falls through.
            while k > 2:
                k -= 1
                need_q0, need_q1, need_q2, need_d0, need_d1 = demands[k]
                if (need_q0 <= room_q0 and need_q1 <= room_q1
                        and need_q2 <= room_q2 and need_d0 <= room_d0
                        and need_d1 <= room_d1):
                    break
            else:
                self._macro_abort(
                    "iq" if (need_q0 > room_q0 or need_q1 > room_q1
                             or need_q2 > room_q2) else "regfile")
                return 0
        macro_ok = self._macro_step_ok
        if macro_ok is not None and not macro_ok(thread, k, now):
            self._macro_abort("policy")
            return 0
        # Desync validation (still guard phase — nothing mutated): the
        # fetch queue is contiguous by construction (appends follow the
        # cursor, squashes clear it whole) and plans never cross the
        # trace-end wrap, so the head entry pins the whole run; checking
        # the run's tail entry too is belt and braces against drift and
        # against a pass wrap inside the window.
        if fetch_queue[k - 1].trace_index != start + k - 1:
            self._macro_abort("desync")
            return 0

        # --- all guards hold ---
        # JIT tier: a full-length run on a hot plan executes through its
        # specialized compiled handler (constants baked in, loop
        # unrolled); a *recurring* truncation length accumulates its own
        # per-(k, variant) counter and compiles a prefix handler (the
        # full emission stopped after k positions).  Cold plans and cold
        # prefixes take the generic fused loop below.  All tiers are
        # statement-for-statement transcriptions of _dispatch —
        # bit-identical by construction.
        if k == plan.length:
            if drop_active:
                handler = plan.jit_runahead
                if handler is None:
                    hits = plan.hot_runahead = plan.hot_runahead + 1
                    if hits >= _JIT_THRESHOLD:
                        handler = plan.jit_runahead = (
                            compile_macro_handler(plan, True))
            else:
                handler = plan.jit_normal
                if handler is None:
                    hits = plan.hot_normal = plan.hot_normal + 1
                    if hits >= _JIT_THRESHOLD:
                        handler = plan.jit_normal = (
                            compile_macro_handler(plan, False))
            if handler is not None:
                return handler(self, thread, fetch_queue, now)
        else:
            prefix_key = (k << 1) | 1 if drop_active else k << 1
            handler = plan.jit_prefix.get(prefix_key)
            if handler is None:
                hits = plan.hot_prefix.get(prefix_key, 0) + 1
                if hits >= _PREFIX_JIT_THRESHOLD:
                    handler = plan.jit_prefix[prefix_key] = (
                        compile_macro_handler(plan, drop_active, k))
                else:
                    plan.hot_prefix[prefix_key] = hits
            if handler is not None:
                return handler(self, thread, fetch_queue, now)

        # --- generic tier: fused rename+dispatch of the whole run ---
        # Per-instruction *net* side effects mirror _dispatch exactly
        # (same waiter-list order, same final field states); transient
        # round-trips the per-stage path performs and immediately undoes
        # are elided:
        #   * default DynInst fields are not re-stored with their
        #     defaults (each DynInst dispatches exactly once);
        #   * a dispatch-time fold skips the issue-queue insert its own
        #     _fold would remove one statement later (net zero, and no
        #     guard reads queue occupancy in between);
        #   * in runahead, a dispatch-time fold with a destination fuses
        #     alloc + set_ready + _recycle_runahead_dest into their net
        #     effect — the free list is peeked, never popped (LIFO alloc
        #     would return the same register it releases), leaving
        #     ready/inv = (now, INV), the front map restored to the
        #     checkpointed architectural register, arch_inv latched, and
        #     high_water accounting for the transient allocation.
        # The loop is specialized by mode (stable within the stage:
        # runahead entry/exit happen at commit).
        tid = thread.tid
        rob_queue = rob._queues[tid]
        rename = thread.rename
        front0 = rename.front[0]
        front1 = rename.front[1]
        arch_inv = thread.arch_inv
        stats = thread.stats
        plan_queues = plan.queues
        plan_store = plan.is_store
        plan_dest = plan.dest
        plan_dk = plan.dest_klass
        plan_dai = plan.dest_aidx
        plan_s1 = plan.src1
        plan_s2 = plan.src2
        never = _NEVER
        nint = _NINT
        popleft = fetch_queue.popleft
        alloc_int = 0
        alloc_fp = 0
        if drop_active:
            plan_fp = plan.is_fp
            arch0 = rename.arch[0]
            arch1 = rename.arch[1]
            for position in range(k):
                inst = popleft()
                rob_queue.append(inst)
                if plan_fp[position]:
                    # §3.3 decode drop, mirrored from _dispatch: FP
                    # compute in runahead uses only a ROB slot, INV out.
                    inst.state = _COMPLETED
                    inst.invalid = True
                    inst.complete_cycle = now
                    if inst.counted:
                        inst.counted = False
                        thread.icount -= 1
                    dest_arch = plan_dest[position]
                    if dest_arch >= 0:
                        arch_inv[dest_arch] = True
                    stats.folded += 1
                    continue
                inst.state = _DISPATCHED
                pending = 0
                mask = 0
                arch = plan_s1[position]
                if arch >= 0:
                    if arch_inv[arch]:
                        mask = 1
                    else:
                        if arch < nint:
                            file = int_file
                            preg = front0[arch]
                        else:
                            file = fp_file
                            preg = front1[arch - nint]
                        inst.psrc1 = preg
                        if file.ready[preg] <= now:
                            if file.inv[preg]:
                                mask = 1
                        else:
                            file.waiters[preg].append(inst)
                            pending = 1
                arch = plan_s2[position]
                if arch >= 0:
                    if arch_inv[arch]:
                        mask |= 2
                    else:
                        if arch < nint:
                            file = int_file
                            preg = front0[arch]
                        else:
                            file = fp_file
                            preg = front1[arch - nint]
                        inst.psrc2 = preg
                        if file.ready[preg] <= now:
                            if file.inv[preg]:
                                mask |= 2
                        else:
                            file.waiters[preg].append(inst)
                            pending += 1
                if pending == 0 and ((mask & 1) if plan_store[position]
                                     else mask):
                    # Fused dispatch-time fold (the runahead INV chain).
                    inst.src_inv_mask = mask
                    inst.invalid = True
                    inst.state = _COMPLETED
                    inst.complete_cycle = now
                    if inst.counted:
                        inst.counted = False
                        thread.icount -= 1
                    stats.folded += 1
                    dest_arch = plan_dest[position]
                    if dest_arch >= 0:
                        if plan_dk[position] == 0:
                            file = int_file
                            fmap = front0
                            amap = arch0
                        else:
                            file = fp_file
                            fmap = front1
                            amap = arch1
                        free = file._free
                        preg = free[-1]     # alloc+recycle nets to a peek
                        used = file.size - len(free) + 1
                        if used > file.high_water:
                            file.high_water = used
                        file.ready[preg] = now
                        file.inv[preg] = True
                        arch_index = plan_dai[position]
                        inst.old_pdest = fmap[arch_index]
                        fmap[arch_index] = amap[arch_index]
                        arch_inv[dest_arch] = True
                    continue
                if pending:
                    inst.pending_srcs = pending
                if mask:
                    inst.src_inv_mask = mask
                dest_arch = plan_dest[position]
                if dest_arch >= 0:
                    if plan_dk[position] == 0:
                        file = int_file
                        fmap = front0
                        alloc_int += 1
                    else:
                        file = fp_file
                        fmap = front1
                        alloc_fp += 1
                    free = file._free      # inlined PhysRegFile.alloc
                    preg = free.pop()
                    file._allocated[preg] = True
                    file.ready[preg] = never
                    file.inv[preg] = False
                    file.pinned[preg] = False
                    used = file.size - len(free)
                    if used > file.high_water:
                        file.high_water = used
                    arch_index = plan_dai[position]
                    inst.pdest = preg
                    inst.old_pdest = fmap[arch_index]
                    fmap[arch_index] = preg
                    arch_inv[dest_arch] = False
                queue = queues[plan_queues[position]]
                queue.size += 1
                queue.per_thread[tid] += 1
                inst.in_iq = True
                if pending == 0:
                    inst.state = _READY
                    queue._ready.append(inst)
        else:
            fold = self._fold
            for position in range(k):
                inst = popleft()
                rob_queue.append(inst)
                inst.state = _DISPATCHED
                pending = 0
                mask = 0
                arch = plan_s1[position]
                if arch >= 0:
                    if arch_inv[arch]:
                        mask = 1
                    else:
                        if arch < nint:
                            file = int_file
                            preg = front0[arch]
                        else:
                            file = fp_file
                            preg = front1[arch - nint]
                        inst.psrc1 = preg
                        if file.ready[preg] <= now:
                            if file.inv[preg]:
                                mask = 1
                        else:
                            file.waiters[preg].append(inst)
                            pending = 1
                arch = plan_s2[position]
                if arch >= 0:
                    if arch_inv[arch]:
                        mask |= 2
                    else:
                        if arch < nint:
                            file = int_file
                            preg = front0[arch]
                        else:
                            file = fp_file
                            preg = front1[arch - nint]
                        inst.psrc2 = preg
                        if file.ready[preg] <= now:
                            if file.inv[preg]:
                                mask |= 2
                        else:
                            file.waiters[preg].append(inst)
                            pending += 1
                if pending:
                    inst.pending_srcs = pending
                if mask:
                    inst.src_inv_mask = mask
                dest_arch = plan_dest[position]
                if dest_arch >= 0:
                    if plan_dk[position] == 0:
                        file = int_file
                        fmap = front0
                        alloc_int += 1
                    else:
                        file = fp_file
                        fmap = front1
                        alloc_fp += 1
                    free = file._free      # inlined PhysRegFile.alloc
                    preg = free.pop()
                    file._allocated[preg] = True
                    file.ready[preg] = never
                    file.inv[preg] = False
                    file.pinned[preg] = False
                    used = file.size - len(free)
                    if used > file.high_water:
                        file.high_water = used
                    arch_index = plan_dai[position]
                    inst.pdest = preg
                    inst.old_pdest = fmap[arch_index]
                    fmap[arch_index] = preg
                    arch_inv[dest_arch] = False
                if pending == 0:
                    if (mask & 1) if plan_store[position] else mask:
                        # Dispatch-time fold: never entered its queue, so
                        # _fold's in_iq check skips the removal.
                        fold(inst, now)
                        continue
                    queue = queues[plan_queues[position]]
                    queue.size += 1
                    queue.per_thread[tid] += 1
                    inst.in_iq = True
                    inst.state = _READY
                    queue._ready.append(inst)
                else:
                    queue = queues[plan_queues[position]]
                    queue.size += 1
                    queue.per_thread[tid] += 1
                    inst.in_iq = True
        # Monotone counters, batched over the run (nothing reads them
        # mid-stage; fold-time releases inside the loop are additive
        # with these, so order does not matter).
        rob._occupancy += k
        rob.per_thread[tid] += k
        thread.rob_held += k
        stats.dispatched += k
        if alloc_int:
            thread.regs_held[0] += alloc_int
        if alloc_fp:
            thread.regs_held[1] += alloc_fp
        gstats = self.gstats
        gstats.macro_steps += 1
        gstats.macro_insts += k
        return k

    def _dispatch(self, thread: ThreadContext, inst: DynInst,
                  now: int) -> bool:
        """Rename and insert one instruction; False if resources lack."""
        rob = self.rob
        if rob._occupancy >= rob.capacity:   # inlined is_full
            return False
        op = inst.op

        drop_at_decode = thread.mode is _RUNAHEAD and (
            (self._ra_fp_inval and IS_FP_BY_CODE[op])
            or op == _SYNC_CODE)
        if drop_at_decode:
            # §3.3: FP compute and synchronization ops in runahead use no
            # resources past decode — straight to pseudo-commit, INV.
            rob._queues[inst.tid].append(inst)   # inlined append
            rob._occupancy += 1
            rob.per_thread[inst.tid] += 1
            thread.rob_held += 1
            inst.state = _COMPLETED
            inst.invalid = True
            inst.complete_cycle = now
            self._uncount(inst)
            if IS_FP_BY_CODE[op] and inst.dest_arch != NO_REG:
                thread.note_arch_invalid(inst.dest_arch, True)
            thread.stats.dispatched += 1
            thread.stats.folded += 1
            return True

        queue = self.queues[OP_QUEUE_BY_CODE[op]]
        if queue.size >= queue.capacity:   # inlined is_full
            return False
        dest_arch = inst.dest_arch
        dest_file: Optional[PhysRegFile] = None
        if dest_arch != NO_REG:
            dest_file = self.int_file if dest_arch < _NINT else self.fp_file
            if not dest_file._free:   # free_count == 0, sans property call
                return False

        rob._queues[inst.tid].append(inst)   # inlined append, checked above
        rob._occupancy += 1
        rob.per_thread[inst.tid] += 1
        thread.rob_held += 1
        inst.state = _DISPATCHED
        thread.stats.dispatched += 1

        # Source renaming, inlined twice (this is the per-instruction
        # dispatch hot path; see _rename_source for the readable form).
        pending = 0
        arch_inv = thread.arch_inv
        front = thread.rename.front
        arch = inst.src1_arch
        if arch != NO_REG:
            if arch_inv[arch]:
                inst.src_inv_mask |= 1
            else:
                if arch < _NINT:
                    file = self.int_file
                    preg = front[0][arch]
                else:
                    file = self.fp_file
                    preg = front[1][arch - _NINT]
                inst.psrc1 = preg
                if file.ready[preg] <= now:
                    if file.inv[preg]:
                        inst.src_inv_mask |= 1
                else:
                    file.waiters[preg].append(inst)
                    pending += 1
        arch = inst.src2_arch
        if arch != NO_REG:
            if arch_inv[arch]:
                inst.src_inv_mask |= 2
            else:
                if arch < _NINT:
                    file = self.int_file
                    preg = front[0][arch]
                else:
                    file = self.fp_file
                    preg = front[1][arch - _NINT]
                inst.psrc2 = preg
                if file.ready[preg] <= now:
                    if file.inv[preg]:
                        inst.src_inv_mask |= 2
                else:
                    file.waiters[preg].append(inst)
                    pending += 1
        inst.pending_srcs = pending

        if dest_file is not None:
            # Inlined PhysRegFile.alloc (the free list was checked above).
            free = dest_file._free
            preg = free.pop()
            dest_file._allocated[preg] = True
            dest_file.ready[preg] = _NEVER
            dest_file.inv[preg] = False
            dest_file.pinned[preg] = False
            used = dest_file.size - len(free)
            if used > dest_file.high_water:
                dest_file.high_water = used
            if dest_arch < _NINT:
                klass = 0
                arch_index = dest_arch
            else:
                klass = 1
                arch_index = dest_arch - _NINT
            inst.pdest = preg
            fmap = front[klass]                  # inlined rename_dest
            inst.old_pdest = fmap[arch_index]
            fmap[arch_index] = preg
            thread.regs_held[klass] += 1
            # A renamed write supersedes any early-reclaimed INV producer.
            arch_inv[dest_arch] = False

        queue.size += 1                      # inlined insert, checked above
        queue.per_thread[inst.tid] += 1
        inst.in_iq = True
        if pending == 0:
            mask = inst.src_inv_mask         # inlined _operands_invalid
            if (mask & 1) if inst.is_store else mask:
                self._fold(inst, now)
            else:
                inst.state = _READY
                queue._ready.append(inst)    # inlined mark_ready
        return True

    def _rename_source(self, thread: ThreadContext, inst: DynInst,
                       which: int, now: int) -> int:
        """Rename one source; returns 1 if the operand is outstanding."""
        arch = inst.src1_arch if which == 1 else inst.src2_arch
        if arch == NO_REG:
            return 0
        if thread.arch_inv[arch]:
            # The producer's register was reclaimed early (INV recycling or
            # FP decode drop): the value is INV at architectural level;
            # nothing to wait for, no register to read.
            inst.src_inv_mask |= which
            return 0
        if arch < _NINT:
            file = self.int_file
            preg = thread.rename.front[0][arch]
        else:
            file = self.fp_file
            preg = thread.rename.front[1][arch - _NINT]
        if which == 1:
            inst.psrc1 = preg
        else:
            inst.psrc2 = preg
        if file.ready[preg] <= now:
            if file.inv[preg]:
                inst.src_inv_mask |= which
            return 0
        file.waiters[preg].append(inst)
        return 1

    # --------------------------------------------------------------- fetch

    def _fetch_stage(self, now: int) -> None:
        order = self.policy.fetch_order(now)
        fetched_total = 0
        threads_used = 0
        width = self._width
        fetch_threads = self._fetch_threads
        threads = self.threads
        for tid in order:
            if threads_used >= fetch_threads:
                break
            if fetched_total >= width:
                break
            thread = threads[tid]
            if (now < thread.fetch_blocked_until     # inlined can_fetch
                    or now < thread.fetch_gated_until):
                self.gstats.fetch_conflicts += 1
                continue
            taken = self._fetch_thread(thread, now, width - fetched_total)
            if taken > 0:
                fetched_total += taken
                threads_used += 1

    def _fetch_thread(self, thread: ThreadContext, now: int,
                      limit: int) -> int:
        fetch_queue = thread.fetch_queue
        buffer_room = self._fetch_buffer_size - len(fetch_queue)
        if buffer_room <= 0:
            # Full fetch buffer (dispatch is the bottleneck): bail before
            # paying for the hot-loop hoists below.
            return 0
        if buffer_room < limit:
            limit = buffer_room
        count = 0
        icache_done = now + self._icache_latency
        stats = thread.stats
        gseq = self._gseq
        # Trace columns and address math, hoisted for the inlined
        # ThreadContext.next_inst below (this loop materializes every
        # dynamic instruction in the simulation).  The mode is stable
        # within a fetch block: runahead entry/exit happen at commit.
        # ``pcs_off``/``fetch_lines`` carry the thread's code offset and
        # the i-cache line index pre-folded (see __init__).
        pcs_off = thread.pcs_off
        lines = thread.fetch_lines
        ops = thread.ops
        dests = thread.dests
        src1s = thread.src1s
        src2s = thread.src2s
        addrs = thread.addrs
        takens = thread.takens
        tid = thread.tid
        data_base = thread.data_base
        pass_stride = thread._pass_stride
        data_region = thread.data_region
        trace_len = len(ops)
        in_runahead = thread.mode is _RUNAHEAD
        seq = thread.seq
        cursor = thread.cursor
        append = fetch_queue.append
        ifetch_packed = self.mem.ifetch_packed
        while count < limit:
            line = lines[cursor]
            if line != thread.fetch_line:
                complete = ifetch_packed(pcs_off[cursor], now, tid,
                                         speculative=in_runahead) >> 2
                thread.fetch_line = line
                if complete > icache_done:
                    thread.block_fetch_until(complete)
                    break
            # Inlined thread.next_inst over the precomputed columns.
            pc = pcs_off[cursor]
            pass_no = thread.pass_no
            inst = DynInst(
                tid, seq, cursor, pass_no,
                ops[cursor], pc, 0,
                dests[cursor], src1s[cursor], src2s[cursor],
                takens[cursor],
            )
            inst.gseq = gseq
            gseq += 1
            if inst.is_mem:
                inst.addr = data_base + (
                    (addrs[cursor] + pass_no * pass_stride) % data_region)
            inst.runahead = in_runahead
            seq += 1
            cursor += 1
            if cursor >= trace_len:
                cursor = 0
                thread.pass_no = pass_no + 1
            inst.counted = True
            append(inst)
            count += 1
            if inst.is_branch:
                stats.branches += 1
                correct = self.predictor.predict(tid, pc, inst.taken)
                inst.mispredicted = not correct
                if inst.taken:
                    # Taken branch ends this thread's fetch block; a BTB
                    # miss costs one redirect bubble.
                    if not self.btb.lookup_and_insert(pc):
                        thread.block_fetch_until(now + 2)
                    break
        thread.cursor = cursor
        if count:
            # Per-instruction counters, applied once per fetch block.
            self._gseq = gseq
            thread.seq = seq
            thread.icount += count
            stats.fetched += count
        return count

    # --------------------------------------------------------------- sampling

    def _sample_stats(self) -> None:
        for thread in self.threads:
            held = thread.regs_held[0] + thread.regs_held[1]
            stats = thread.stats
            if thread.mode is _RUNAHEAD:
                stats.runahead_cycles += 1
                stats.runahead_reg_samples += 1
                stats.runahead_regs_held += held
            else:
                stats.normal_reg_samples += 1
                stats.normal_regs_held += held
        self.gstats.cycles += 1

    # --------------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Structural consistency checks (used heavily by tests)."""
        self.int_file.check_conservation()
        self.fp_file.check_conservation()
        self.rob.check_occupancy()
        for thread in self.threads:
            thread.rename.check_maps()
        total_held_int = sum(t.regs_held[0] for t in self.threads)
        total_held_fp = sum(t.regs_held[1] for t in self.threads)
        if total_held_int != self.int_file.allocated_count:
            raise SimulationError(
                f"INT regs_held {total_held_int} != allocated "
                f"{self.int_file.allocated_count}")
        if total_held_fp != self.fp_file.allocated_count:
            raise SimulationError(
                f"FP regs_held {total_held_fp} != allocated "
                f"{self.fp_file.allocated_count}")
