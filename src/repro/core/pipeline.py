"""The SMT pipeline: fetch, dispatch, issue, complete, commit.

One :class:`SMTPipeline` simulates the whole machine cycle by cycle.  The
stage order inside :meth:`step` is back-to-front (completions and commit
before issue, issue before dispatch, dispatch before fetch) so every stage
observes the previous cycle's downstream state, as a real pipeline would.

Wakeup is event-driven (see :mod:`repro.core.issue_queue`), and memory and
execution latencies are carried by a cycle-indexed event table rather than
per-cycle scans, which keeps the Python model fast enough for full Table 2
sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..branch import BranchTargetBuffer, PerceptronPredictor
from ..config import SMTConfig
from ..errors import DeadlockError, SimulationError
from ..isa import (
    FP_OPS,
    FUKind,
    IssueQueueKind,
    NO_REG,
    OP_LATENCY,
    OP_QUEUE,
    OpClass,
    RegClass,
    reg_class,
)
from ..mem import MemoryHierarchy
from ..trace.trace import Trace
from .dyninst import DynInst, InstState
from .fu import FUPool
from .issue_queue import IssueQueue
from .regfile import PhysRegFile
from .rename import RenameState
from .rob import SharedROB
from .runahead import RunaheadController
from .stats import GlobalStats
from .thread import ThreadContext, ThreadMode

#: Event kinds in the cycle-indexed event table.
_EV_COMPLETE = 0
_EV_L2_DETECT = 1

#: Cycles without a single commit before the deadlock guard trips.
_DEADLOCK_WINDOW = 100_000


class SMTPipeline:
    """Cycle-level model of the Table 1 SMT processor."""

    def __init__(self, config: SMTConfig, traces: List[Trace],
                 policy) -> None:
        config.validate()
        if not traces:
            raise SimulationError("at least one thread trace is required")
        if len(traces) > config.max_threads():
            raise SimulationError(
                f"{len(traces)} threads need "
                f"{len(traces) * 32} architectural registers per file; "
                f"config provides {config.int_regs}/{config.fp_regs}")
        self.config = config
        self.num_threads = len(traces)
        self.cycle = 0
        self.gstats = GlobalStats()

        self.int_file = PhysRegFile("int", config.int_regs)
        self.fp_file = PhysRegFile("fp", config.fp_regs)
        self.rob = SharedROB(config.rob_size, self.num_threads)
        self.queues = (
            IssueQueue("int", config.int_iq_size, self.num_threads),
            IssueQueue("fp", config.fp_iq_size, self.num_threads),
            IssueQueue("ls", config.ls_iq_size, self.num_threads),
        )
        self.fus = FUPool(config.int_units, config.fp_units,
                          config.ldst_units)
        self.mem = MemoryHierarchy(config, self.num_threads)
        self.predictor = PerceptronPredictor(
            config.predictor_entries, config.predictor_history,
            self.num_threads)
        self.btb = BranchTargetBuffer(config.btb_entries)

        self.threads: List[ThreadContext] = []
        cacheable_limit = int(0.75 * config.l2.size_bytes)
        for tid, trace in enumerate(traces):
            rename = RenameState(tid, self.int_file, self.fp_file)
            shift = trace.data_region_bytes > cacheable_limit
            self.threads.append(ThreadContext(tid, trace, rename,
                                              pass_shift=shift))
            # Architectural state occupies registers from cycle 0.
            self.threads[tid].regs_held = [32, 32]

        self.runahead = RunaheadController(self)
        self.policy = policy
        policy.attach(self)

        self._events: Dict[int, List[Tuple[int, DynInst]]] = {}
        self._gseq = 0
        self._last_commit_cycle = 0
        self._fold_worklist: List[DynInst] = []

    # ------------------------------------------------------------------ cycle

    def step(self) -> None:
        """Advance the machine by one cycle."""
        now = self.cycle
        self.fus.new_cycle()
        self._process_events(now)
        self.policy.on_cycle(now)
        self._commit_stage(now)
        self._issue_stage(now)
        self._dispatch_stage(now)
        self._fetch_stage(now)
        self._sample_stats()
        self.cycle = now + 1
        if now - self._last_commit_cycle > _DEADLOCK_WINDOW:
            raise DeadlockError(now, "no instruction committed recently")

    # --------------------------------------------------------------- events

    def schedule(self, cycle: int, kind: int, inst: DynInst) -> None:
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [(kind, inst)]
        else:
            bucket.append((kind, inst))

    def _process_events(self, now: int) -> None:
        bucket = self._events.pop(now, None)
        if not bucket:
            return
        for kind, inst in bucket:
            state = inst.state
            if state == InstState.SQUASHED or state == InstState.RETIRED:
                continue
            if kind == _EV_COMPLETE:
                if state == InstState.ISSUED:
                    self._complete(inst, now)
            elif kind == _EV_L2_DETECT:
                if state < InstState.RETIRED:
                    self._on_l2_detected(inst, now)
        self._drain_folds(now)

    def _complete(self, inst: DynInst, now: int) -> None:
        inst.state = InstState.COMPLETED
        thread = self.threads[inst.tid]
        if inst.l2_counted:
            inst.l2_counted = False
            thread.pending_l2_misses -= 1
        if inst.pdest != NO_REG:
            file = self.int_file if reg_class(inst.dest_arch) == RegClass.INT \
                else self.fp_file
            woken = file.set_ready(inst.pdest, now, invalid=inst.invalid)
            for waiter in woken:
                self._src_ready(waiter, now, inst.pdest, inst.invalid)
            if inst.invalid and self.threads[inst.tid].in_runahead:
                self._recycle_runahead_dest(self.threads[inst.tid], inst)
        if inst.is_branch and not inst.invalid and inst.mispredicted:
            self._resolve_misprediction(inst, now)

    def _on_l2_detected(self, inst: DynInst, now: int) -> None:
        """A demand load has been discovered to miss in the L2 cache."""
        inst.l2_miss = True
        inst.l2_counted = True
        thread = self.threads[inst.tid]
        thread.pending_l2_misses += 1
        self.policy.on_l2_miss_detected(thread, inst, now)

    # --------------------------------------------------------------- wakeup / fold

    def _src_ready(self, inst: DynInst, now: int, preg: int,
                   invalid: bool) -> None:
        if inst.state != InstState.DISPATCHED:
            return
        if invalid:
            # Record validity *now*: the producing register may be
            # recycled (runahead frees INV registers at pseudo-retire)
            # before this instruction's other operands arrive.
            if inst.psrc1 == preg:
                inst.src_inv_mask |= 1
            if inst.psrc2 == preg:
                inst.src_inv_mask |= 2
        inst.pending_srcs -= 1
        if inst.pending_srcs > 0:
            return
        if self._operands_invalid(inst):
            self._fold_worklist.append(inst)
        else:
            inst.state = InstState.READY
            self.queues[OP_QUEUE[OpClass(inst.op)]].mark_ready(inst)

    def _operands_invalid(self, inst: DynInst) -> bool:
        """Fold test: does any operand needed for execution carry INV?

        Validity was latched into ``src_inv_mask`` when each operand became
        known (dispatch for already-ready sources, wakeup for the rest).
        Stores fold only on an invalid *address* (src1); invalid store data
        merely marks the forwarded value invalid (§3.3, runahead cache
        discussion).
        """
        mask = inst.src_inv_mask
        if inst.is_store:
            return bool(mask & 1)
        return mask != 0

    def _fold(self, inst: DynInst, now: int) -> None:
        """Squash-free cancellation: complete instantly with an INV result."""
        inst.invalid = True
        inst.state = InstState.COMPLETED
        inst.complete_cycle = now
        if inst.in_iq:
            self.queues[OP_QUEUE[OpClass(inst.op)]].remove(inst)
        self._uncount(inst)
        thread = self.threads[inst.tid]
        # Folded instructions never execute (paper §3.1), so they are kept
        # out of the executed-instruction energy proxy.
        thread.stats.folded += 1
        if inst.pdest != NO_REG:
            file = self.int_file if reg_class(inst.dest_arch) == RegClass.INT \
                else self.fp_file
            woken = file.set_ready(inst.pdest, now, invalid=True)
            for waiter in woken:
                self._src_ready(waiter, now, inst.pdest, True)
            if thread.in_runahead:
                self._recycle_runahead_dest(thread, inst)

    def _drain_folds(self, now: int) -> None:
        while self._fold_worklist:
            inst = self._fold_worklist.pop()
            if inst.state == InstState.DISPATCHED:
                self._fold(inst, now)

    def _uncount(self, inst: DynInst) -> None:
        if inst.counted:
            inst.counted = False
            self.threads[inst.tid].icount -= 1

    # --------------------------------------------------------------- commit

    def _commit_stage(self, now: int) -> None:
        budget = self.config.width
        start = now % self.num_threads
        for offset in range(self.num_threads):
            thread = self.threads[(start + offset) % self.num_threads]
            if self.runahead.should_exit(thread, now):
                self.runahead.exit(thread, now)
                continue
            budget = self._commit_thread(thread, now, budget)
            if budget <= 0:
                break

    def _commit_thread(self, thread: ThreadContext, now: int,
                       budget: int) -> int:
        rob = self.rob
        tid = thread.tid
        while budget > 0 and not rob.is_empty(tid):
            head = rob.head(tid)
            if thread.mode == ThreadMode.NORMAL:
                if head.state == InstState.COMPLETED:
                    self._commit(thread, head, now)
                    budget -= 1
                elif (self.policy.uses_runahead
                      and self.runahead.should_enter(thread, head, now)):
                    self._enter_runahead(thread, head, now)
                    budget -= 1
                    break
                else:
                    break
            else:
                if head.state == InstState.COMPLETED:
                    self._pseudo_retire(thread, head, now)
                    budget -= 1
                else:
                    break
        return budget

    def _commit(self, thread: ThreadContext, inst: DynInst,
                now: int) -> None:
        self.rob.pop_head(thread.tid)
        inst.state = InstState.RETIRED
        thread.rob_held -= 1
        thread.stats.committed += 1
        self.gstats.committed += 1
        self._last_commit_cycle = now
        if inst.pdest != NO_REG:
            klass = reg_class(inst.dest_arch)
            arch_index = inst.dest_arch if klass == RegClass.INT \
                else inst.dest_arch - 32
            old = thread.rename.commit_dest(klass, arch_index, inst.pdest)
            if old != inst.pdest:
                self._release_preg(thread, klass, old)
        if inst.is_store:
            self.mem.data_access(inst.addr, True, now, thread.tid)
        if inst.trace_index == len(thread.trace) - 1:
            thread.finished_passes += 1
            thread.stats.passes += 1

    def _pseudo_retire(self, thread: ThreadContext, inst: DynInst,
                       now: int) -> None:
        self.rob.pop_head(thread.tid)
        inst.state = InstState.RETIRED
        thread.rob_held -= 1
        thread.stats.pseudo_retired += 1
        self._last_commit_cycle = now  # forward progress, albeit speculative
        if inst.dest_arch == NO_REG:
            return
        klass = reg_class(inst.dest_arch)
        file = self.int_file if klass == RegClass.INT else self.fp_file
        if inst.old_pdest != NO_REG and not file.pinned[inst.old_pdest]:
            self._release_preg(thread, klass, inst.old_pdest)
        self._recycle_runahead_dest(thread, inst)

    def _enter_runahead(self, thread: ThreadContext, trigger: DynInst,
                        now: int) -> None:
        """Checkpoint and pseudo-retire the triggering L2-miss load (§3.1)."""
        self.runahead.enter(thread, trigger, now)
        self.rob.pop_head(thread.tid)
        trigger.state = InstState.RETIRED
        thread.rob_held -= 1
        thread.stats.pseudo_retired += 1
        if trigger.l2_counted:
            trigger.l2_counted = False
            thread.pending_l2_misses -= 1
        # Bogus INV value: dependents fold as they wake.
        if trigger.pdest != NO_REG:
            klass = reg_class(trigger.dest_arch)
            file = self.int_file if klass == RegClass.INT else self.fp_file
            woken = file.set_ready(trigger.pdest, now, invalid=True)
            for waiter in woken:
                self._src_ready(waiter, now, trigger.pdest, True)
            if trigger.old_pdest != NO_REG \
                    and not file.pinned[trigger.old_pdest]:
                self._release_preg(thread, klass, trigger.old_pdest)
        # §3.2: every other in-flight long-latency load of this thread is
        # invalidated too — its fill continues as a prefetch, but its
        # dependents fold instead of clogging the shared issue queues for
        # the whole episode.
        horizon = now + self.config.dcache.latency + self.config.l2.latency
        for inflight in self.rob.thread_window(thread.tid):
            if (inflight.is_load and inflight.state == InstState.ISSUED
                    and (inflight.l2_miss or inflight.complete_cycle > horizon)):
                inflight.invalid = True
                self._complete(inflight, now)
        self._drain_folds(now)

    def _release_preg(self, thread: ThreadContext, klass: int,
                      preg: int) -> None:
        file = self.int_file if klass == RegClass.INT else self.fp_file
        file.release(preg)
        thread.regs_held[klass] -= 1

    def _recycle_runahead_dest(self, thread: ThreadContext,
                               inst: DynInst) -> None:
        """Early release of a runahead destination register (§3.3).

        Invalid results hold no value ("when a physical register is
        invalid this can be freed and used for the rest of the threads");
        valid pseudo-retired results live on conceptually through the
        checkpointed map — values are already computed, so later consumers
        resolving to the architectural register observe correct timing.
        Only applies while the mapping is still current and unpinned.
        """
        if inst.pdest == NO_REG:
            return
        klass = reg_class(inst.dest_arch)
        file = self.int_file if klass == RegClass.INT else self.fp_file
        if file.pinned[inst.pdest]:
            return
        arch_index = inst.dest_arch if klass == RegClass.INT \
            else inst.dest_arch - 32
        front = thread.rename.front[klass]
        if front[arch_index] != inst.pdest:
            return
        front[arch_index] = thread.rename.arch[klass][arch_index]
        self._release_preg(thread, klass, inst.pdest)
        thread.note_arch_invalid(inst.dest_arch, inst.invalid)
        inst.pdest = NO_REG

    # --------------------------------------------------------------- issue

    _QUEUE_FU = {
        IssueQueueKind.INT: FUKind.INT,
        IssueQueueKind.FP: FUKind.FP,
        IssueQueueKind.LS: FUKind.LDST,
    }

    def _issue_stage(self, now: int) -> None:
        for queue_kind in (IssueQueueKind.LS, IssueQueueKind.INT,
                           IssueQueueKind.FP):
            queue = self.queues[queue_kind]
            budget = self.fus.available(self._QUEUE_FU[queue_kind])
            if budget <= 0:
                continue
            for inst in queue.take_ready(budget):
                self._issue(inst, queue, now)
        self._drain_folds(now)

    def _issue(self, inst: DynInst, queue: IssueQueue, now: int) -> None:
        thread = self.threads[inst.tid]
        if inst.is_load:
            issued = self._issue_load(thread, inst, queue, now)
            if not issued:
                return
        elif inst.is_store:
            self._issue_store(thread, inst, now)
        else:
            latency = OP_LATENCY[OpClass(inst.op)]
            inst.complete_cycle = now + latency
            self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)
        self.fus.acquire(inst.op)
        inst.state = InstState.ISSUED
        queue.remove(inst)
        self._uncount(inst)
        thread.stats.issued += 1
        thread.stats.executed += 1
        self.gstats.executed += 1

    def _issue_store(self, thread: ThreadContext, inst: DynInst,
                     now: int) -> None:
        """Stores compute their address at issue; memory is written at
        commit (write buffer).  Runahead stores never write memory but do
        prefetch their line and feed the runahead cache (§3.3)."""
        inst.complete_cycle = now + 1
        self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)
        if thread.in_runahead:
            data_valid = not (inst.src_inv_mask & 2)
            self.runahead.on_runahead_store(thread, inst, data_valid)
            if self.runahead.prefetch:
                self.mem.data_access(inst.addr, True, now, thread.tid,
                                     speculative=True)

    def _issue_load(self, thread: ThreadContext, inst: DynInst,
                    queue: IssueQueue, now: int) -> bool:
        """Issue a load; returns False if it must retry (MSHRs full)."""
        if thread.in_runahead:
            self._issue_runahead_load(thread, inst, now)
            return True
        result = self.mem.data_access(inst.addr, False, now, thread.tid)
        if result is None:
            # Demand miss rejected by a full MSHR file: replay next cycle.
            queue.requeue(inst)
            return False
        inst.complete_cycle = result.complete_cycle
        self.schedule(result.complete_cycle, _EV_COMPLETE, inst)
        if result.l2_miss:
            detect = min(result.complete_cycle,
                         now + self.config.dcache.latency
                         + self.config.l2.latency)
            self.schedule(detect, _EV_L2_DETECT, inst)
        return True

    def _issue_runahead_load(self, thread: ThreadContext, inst: DynInst,
                             now: int) -> None:
        """Runahead loads: cache hits complete normally; L2 misses become
        prefetches and produce INV at L2-lookup time (§3.2)."""
        l1_latency = self.config.dcache.latency
        detect_latency = l1_latency + self.config.l2.latency
        forwarded = self.runahead.load_forward_validity(thread, inst)
        if forwarded is not None:
            inst.invalid = not forwarded
            inst.complete_cycle = now + l1_latency
            self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)
            return
        if not self.runahead.prefetch:
            # Figure 4 ablation: no L2/memory traffic from runahead.
            level = self.mem.peek_data(inst.addr)
            if level == "l1":
                inst.complete_cycle = now + l1_latency
            elif level == "l2":
                inst.complete_cycle = now + detect_latency
            else:
                inst.invalid = True
                inst.complete_cycle = now + detect_latency
                thread.no_retrigger.add((inst.pass_no, inst.trace_index))
            self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)
            return
        result = self.mem.data_access(inst.addr, False, now, thread.tid,
                                      speculative=True)
        if result is None:
            # Prefetch dropped (MSHRs full): bogus value, no retry.
            inst.invalid = True
            inst.complete_cycle = now + l1_latency
        elif result.l2_miss:
            # Long-latency: invalidate the dest, keep the fill as prefetch.
            inst.invalid = True
            inst.complete_cycle = min(result.complete_cycle,
                                      now + detect_latency)
            if self.runahead.stop_fetch_on_l2_miss:
                thread.gate_fetch_until(thread.runahead_trigger_ready)
        else:
            inst.complete_cycle = result.complete_cycle
        self.schedule(inst.complete_cycle, _EV_COMPLETE, inst)

    # --------------------------------------------------------------- branch resolution

    def _resolve_misprediction(self, inst: DynInst, now: int) -> None:
        thread = self.threads[inst.tid]
        thread.stats.mispredicts += 1
        self.squash_thread_younger(thread, inst.seq)
        next_index = inst.trace_index + 1
        next_pass = inst.pass_no
        if next_index >= len(thread.trace):
            next_index = 0
            next_pass += 1
        thread.rewind_to(next_index, next_pass)
        thread.block_fetch_until(now + self.config.redirect_penalty)

    # --------------------------------------------------------------- squash

    def squash_thread_younger(self, thread: ThreadContext,
                              boundary_seq: int) -> int:
        """Cancel all of a thread's instructions younger than a boundary.

        Returns the number of instructions squashed.  Rename repair runs
        youngest-first so front-end map restoration is exact.
        """
        count = 0
        for inst in thread.fetch_queue:
            self._uncount(inst)
            inst.state = InstState.SQUASHED
            thread.stats.squashed += 1
            count += 1
        thread.fetch_queue.clear()
        for inst in self.rob.squash_younger(thread.tid, boundary_seq):
            self._squash_rob_entry(thread, inst)
            count += 1
        thread.fetch_line = -1
        return count

    def squash_thread_all(self, thread: ThreadContext) -> int:
        """Cancel every in-flight instruction of a thread (runahead exit)."""
        return self.squash_thread_younger(thread, -1)

    def _squash_rob_entry(self, thread: ThreadContext,
                          inst: DynInst) -> None:
        if inst.in_iq:
            self.queues[OP_QUEUE[OpClass(inst.op)]].remove(inst)
        self._uncount(inst)
        if inst.l2_counted:
            inst.l2_counted = False
            thread.pending_l2_misses -= 1
        thread.rob_held -= 1
        if inst.pdest != NO_REG:
            klass = reg_class(inst.dest_arch)
            arch_index = inst.dest_arch if klass == RegClass.INT \
                else inst.dest_arch - 32
            thread.rename.undo_rename(klass, arch_index, inst.old_pdest)
            self._release_preg(thread, klass, inst.pdest)
        inst.state = InstState.SQUASHED
        thread.stats.squashed += 1

    # --------------------------------------------------------------- dispatch

    def _dispatch_stage(self, now: int) -> None:
        budget = self.config.width
        start = now % self.num_threads
        for offset in range(self.num_threads):
            thread = self.threads[(start + offset) % self.num_threads]
            while budget > 0 and thread.fetch_queue:
                inst = thread.fetch_queue[0]
                if not self._dispatch(thread, inst, now):
                    self.gstats.dispatch_stalls += 1
                    break
                thread.fetch_queue.popleft()
                budget -= 1
            if budget <= 0:
                break
        self._drain_folds(now)

    def _dispatch(self, thread: ThreadContext, inst: DynInst,
                  now: int) -> bool:
        """Rename and insert one instruction; False if resources lack."""
        if self.rob.is_full():
            return False
        op = OpClass(inst.op)

        drop_at_decode = thread.in_runahead and (
            (self.runahead.fp_invalidation and op in FP_OPS)
            or op is OpClass.SYNC)
        if drop_at_decode:
            # §3.3: FP compute and synchronization ops in runahead use no
            # resources past decode — straight to pseudo-commit, INV.
            self.rob.append(inst)
            thread.rob_held += 1
            inst.state = InstState.COMPLETED
            inst.invalid = True
            inst.complete_cycle = now
            self._uncount(inst)
            if op in FP_OPS and inst.dest_arch != NO_REG:
                thread.note_arch_invalid(inst.dest_arch, True)
            thread.stats.dispatched += 1
            thread.stats.folded += 1
            return True

        queue = self.queues[OP_QUEUE[op]]
        if queue.is_full():
            return False
        dest_file: Optional[PhysRegFile] = None
        if inst.dest_arch != NO_REG:
            dest_file = self.int_file \
                if reg_class(inst.dest_arch) == RegClass.INT else self.fp_file
            if dest_file.free_count == 0:
                return False

        self.rob.append(inst)
        thread.rob_held += 1
        inst.state = InstState.DISPATCHED
        thread.stats.dispatched += 1

        pending = 0
        pending += self._rename_source(thread, inst, 1, now)
        pending += self._rename_source(thread, inst, 2, now)
        inst.pending_srcs = pending

        if dest_file is not None:
            preg = dest_file.alloc()
            klass = reg_class(inst.dest_arch)
            arch_index = inst.dest_arch if klass == RegClass.INT \
                else inst.dest_arch - 32
            inst.pdest = preg
            inst.old_pdest = thread.rename.rename_dest(klass, arch_index,
                                                       preg)
            thread.regs_held[klass] += 1
            # A renamed write supersedes any early-reclaimed INV producer.
            thread.note_arch_invalid(inst.dest_arch, False)

        queue.insert(inst)
        if pending == 0:
            if self._operands_invalid(inst):
                self._fold(inst, now)
            else:
                inst.state = InstState.READY
                queue.mark_ready(inst)
        return True

    def _rename_source(self, thread: ThreadContext, inst: DynInst,
                       which: int, now: int) -> int:
        """Rename one source; returns 1 if the operand is outstanding."""
        arch = inst.src1_arch if which == 1 else inst.src2_arch
        if arch == NO_REG:
            return 0
        if thread.arch_is_invalid(arch):
            # The producer's register was reclaimed early (INV recycling or
            # FP decode drop): the value is INV at architectural level;
            # nothing to wait for, no register to read.
            inst.src_inv_mask |= which
            return 0
        klass = reg_class(arch)
        arch_index = arch if klass == RegClass.INT else arch - 32
        preg = thread.rename.lookup(klass, arch_index)
        file = self.int_file if klass == RegClass.INT else self.fp_file
        if which == 1:
            inst.psrc1 = preg
        else:
            inst.psrc2 = preg
        if file.is_ready(preg, now):
            if file.inv[preg]:
                inst.src_inv_mask |= which
            return 0
        file.add_waiter(preg, inst)
        return 1

    # --------------------------------------------------------------- fetch

    def _fetch_stage(self, now: int) -> None:
        order = self.policy.fetch_order(now)
        fetched_total = 0
        threads_used = 0
        width = self.config.width
        for tid in order:
            if threads_used >= self.config.fetch_threads:
                break
            if fetched_total >= width:
                break
            thread = self.threads[tid]
            if not thread.can_fetch(now):
                self.gstats.fetch_conflicts += 1
                continue
            taken = self._fetch_thread(thread, now, width - fetched_total)
            if taken > 0:
                fetched_total += taken
                threads_used += 1

    def _fetch_thread(self, thread: ThreadContext, now: int,
                      limit: int) -> int:
        count = 0
        buffer_room = self.config.fetch_buffer_size - len(thread.fetch_queue)
        limit = min(limit, buffer_room)
        trace = thread.trace
        while count < limit:
            pc = int(trace.pc[thread.cursor]) + thread.code_offset
            line = self.mem.icache.line_of(pc)
            if line != thread.fetch_line:
                result = self.mem.ifetch(pc, now, thread.tid,
                                         speculative=thread.in_runahead)
                thread.fetch_line = line
                if result.complete_cycle > now + self.config.icache.latency:
                    thread.block_fetch_until(result.complete_cycle)
                    break
            inst = thread.next_inst(self._gseq)
            self._gseq += 1
            inst.counted = True
            thread.icount += 1
            thread.stats.fetched += 1
            thread.fetch_queue.append(inst)
            count += 1
            if inst.is_branch:
                thread.stats.branches += 1
                correct = self.predictor.predict(thread.tid, inst.pc,
                                                 inst.taken)
                inst.mispredicted = not correct
                if inst.taken:
                    # Taken branch ends this thread's fetch block; a BTB
                    # miss costs one redirect bubble.
                    if not self.btb.lookup_and_insert(inst.pc):
                        thread.block_fetch_until(now + 2)
                    break
        return count

    # --------------------------------------------------------------- sampling

    def _sample_stats(self) -> None:
        for thread in self.threads:
            held = thread.regs_held[0] + thread.regs_held[1]
            stats = thread.stats
            if thread.in_runahead:
                stats.runahead_cycles += 1
                stats.runahead_reg_samples += 1
                stats.runahead_regs_held += held
            else:
                stats.normal_reg_samples += 1
                stats.normal_regs_held += held
        self.gstats.cycles += 1

    # --------------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Structural consistency checks (used heavily by tests)."""
        self.int_file.check_conservation()
        self.fp_file.check_conservation()
        self.rob.check_occupancy()
        for thread in self.threads:
            thread.rename.check_maps()
        total_held_int = sum(t.regs_held[0] for t in self.threads)
        total_held_fp = sum(t.regs_held[1] for t in self.threads)
        if total_held_int != self.int_file.allocated_count:
            raise SimulationError(
                f"INT regs_held {total_held_int} != allocated "
                f"{self.int_file.allocated_count}")
        if total_held_fp != self.fp_file.allocated_count:
            raise SimulationError(
                f"FP regs_held {total_held_fp} != allocated "
                f"{self.fp_file.allocated_count}")
