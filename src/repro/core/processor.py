"""Top-level simulator facade.

:class:`SMTProcessor` wires traces, a configuration and a policy into an
:class:`~repro.core.pipeline.SMTPipeline` and runs it under the FAME
measurement discipline (threads loop their traces; measurement ends when
every thread has completed the requested number of full passes), producing
a :class:`SimResult`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..config import SMTConfig
from ..errors import SimulationError
from ..trace.trace import Trace
from .pipeline import SMTPipeline
from .stats import ThreadStats


@dataclasses.dataclass
class SimResult:
    """Outcome of one simulation run."""

    benchmarks: List[str]
    policy: str
    cycles: int
    thread_stats: List[ThreadStats]
    truncated: bool = False
    l2_misses: List[int] = dataclasses.field(default_factory=list)

    @property
    def num_threads(self) -> int:
        return len(self.benchmarks)

    @property
    def ipcs(self) -> List[float]:
        """Per-thread IPC over the whole measured interval."""
        return [stats.ipc(self.cycles) for stats in self.thread_stats]

    @property
    def throughput(self) -> float:
        """Equation (1): average of per-thread IPCs."""
        ipcs = self.ipcs
        return sum(ipcs) / len(ipcs) if ipcs else 0.0

    @property
    def total_committed(self) -> int:
        return sum(stats.committed for stats in self.thread_stats)

    @property
    def total_executed(self) -> int:
        """Executed work, including speculative/squashed (energy proxy)."""
        return sum(stats.executed for stats in self.thread_stats)

    @property
    def avg_cpi(self) -> float:
        """Cycles per committed instruction, machine-wide."""
        committed = self.total_committed
        if committed == 0:
            return float("inf")
        return self.cycles / committed

    def ed2(self) -> float:
        """The paper's efficiency proxy, per unit of architectural work.

        ED^2 = executed instructions x CPI^2, normalized by committed
        instructions so runs of different FAME lengths are comparable:
        (executed / committed) is the energy spent per useful instruction
        and CPI^2 the squared delay per useful instruction.
        """
        committed = self.total_committed
        if committed == 0:
            return float("inf")
        return (self.total_executed / committed) * self.avg_cpi ** 2

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": float(self.cycles),
            "throughput": self.throughput,
            "committed": float(self.total_committed),
            "executed": float(self.total_executed),
            "ed2": self.ed2(),
        }

    def to_dict(self) -> Dict:
        """Canonical JSON-ready form.

        Every field is an int, bool, str or a list thereof — no floats —
        so a JSON round trip reconstructs a bit-identical result (the
        disk cache relies on this).
        """
        return {
            "benchmarks": list(self.benchmarks),
            "policy": self.policy,
            "cycles": self.cycles,
            "thread_stats": [stats.to_dict() for stats in self.thread_stats],
            "truncated": self.truncated,
            "l2_misses": list(self.l2_misses),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        return cls(
            benchmarks=list(data["benchmarks"]),
            policy=data["policy"],
            cycles=data["cycles"],
            thread_stats=[ThreadStats.from_dict(stats)
                          for stats in data["thread_stats"]],
            truncated=data.get("truncated", False),
            l2_misses=list(data.get("l2_misses", ())),
        )


class SMTProcessor:
    """User-facing simulator: configure, run, inspect."""

    def __init__(self, config: SMTConfig, traces: Sequence[Trace],
                 policy=None) -> None:
        """Build a processor.

        Args:
            config: Machine configuration (Table 1 defaults via
                ``SMTConfig()``).
            traces: One trace per hardware thread (1, 2 or 4 in the paper).
            policy: A policy instance; by default ``config.policy`` is
                resolved through :mod:`repro.policies.registry`.
        """
        from ..policies.registry import create_policy
        if policy is None:
            policy = create_policy(config.policy, config)
        self.config = config
        self.policy = policy
        self.pipeline = SMTPipeline(config, list(traces), policy)
        if config.warmup:
            self._warm()

    def _warm(self) -> None:
        """Functional warmup: replay each trace's memory and branch streams
        through the caches, BTB and predictor (no timing), then reset the
        statistics so measurement starts from steady state.

        Warmup is *selective*: a benchmark whose true working set (from its
        profile) fits in the L2 would, in reality, keep it resident, so all
        its lines are warmed.  A benchmark whose working set exceeds the L2
        can only keep its temporally re-touched (hot) lines resident —
        warming everything would let a short trace's small footprint
        masquerade as cacheable — so only lines whose touches span a good
        part of the trace are installed; bursty stream/cold-chase lines
        stay cold and keep missing during measurement, as they would at
        steady state.
        """
        import numpy as np
        from ..isa import OpClass
        pipeline = self.pipeline
        mem = pipeline.mem
        l2_bytes = self.config.l2.size_bytes
        line_shift = self.config.l2.line_bytes.bit_length() - 1
        for thread in pipeline.threads:
            trace = thread.trace
            ops = trace.op
            mem_mask = np.isin(ops, (int(OpClass.LOAD), int(OpClass.STORE),
                                     int(OpClass.FLOAD),
                                     int(OpClass.FSTORE)))
            addrs = trace.addr[mem_mask]
            if thread.data_region <= 0.75 * l2_bytes:
                chosen = addrs
            else:
                lines = addrs >> line_shift
                order = np.arange(len(lines))
                first: dict = {}
                last: dict = {}
                for position, line in zip(order, lines):
                    line_key = int(line)
                    if line_key not in first:
                        first[line_key] = position
                    last[line_key] = position
                span_needed = max(1, len(lines) // 4)
                resident = {line for line in first
                            if last[line] - first[line] >= span_needed}
                keep = np.fromiter((int(line) in resident for line in lines),
                                   dtype=bool, count=len(lines))
                chosen = addrs[keep]
            for addr in chosen:
                mem.warm_data(thread.physical_addr(int(addr), 0))
            line_bytes = self.config.icache.line_bytes
            last_line = -1
            branch_op = int(OpClass.BRANCH)
            taken_col = trace.taken
            branch_pcs = []
            for index, pc in enumerate(trace.pc):
                full_pc = int(pc) + thread.code_offset
                line = full_pc // line_bytes
                if line != last_line:
                    mem.warm_ifetch(full_pc)
                    last_line = line
                if ops[index] == branch_op:
                    branch_pcs.append((full_pc, bool(taken_col[index])))
                    if taken_col[index]:
                        pipeline.btb.lookup_and_insert(full_pc)
            # Two training passes: the perceptron needs more than one
            # exposure per branch site to reach its steady accuracy.
            for _ in range(2):
                for full_pc, taken in branch_pcs:
                    pipeline.predictor.predict(thread.tid, full_pc, taken)
        mem.reset_stats()
        pipeline.predictor.predictions = 0
        pipeline.predictor.mispredictions = 0
        pipeline.btb.hits = 0
        pipeline.btb.misses = 0

    @property
    def cycle(self) -> int:
        return self.pipeline.cycle

    @property
    def threads(self):
        return self.pipeline.threads

    def step(self, cycles: int = 1) -> None:
        """Advance the machine (mainly for tests and debugging)."""
        for _ in range(cycles):
            self.pipeline.step()

    def run(self, min_passes: int = 1,
            max_cycles: Optional[int] = None) -> SimResult:
        """Run under FAME: stop once every thread finished ``min_passes``
        full trace executions (or at the cycle cap, flagged ``truncated``).

        The loop drives :meth:`SMTPipeline.advance`, so stretches where
        every thread is blocked on memory are jumped over in one go
        (event-driven cycle skipping) instead of being stepped cycle by
        cycle; results are bit-identical either way.
        """
        if min_passes < 1:
            raise SimulationError("min_passes must be >= 1")
        cap = max_cycles if max_cycles is not None else self.config.max_cycles
        # Late import: the kernel registry lives in repro.sim (it is a
        # selection concern, beside the executor registry), which pulls
        # config/cli-adjacent modules the core package must not depend
        # on at import time.
        from ..sim.kernels import resolve_run_loop
        run_loop = resolve_run_loop(self.pipeline)
        truncated = run_loop(self.pipeline, min_passes, cap)
        return self._result(truncated)

    def _result(self, truncated: bool) -> SimResult:
        pipeline = self.pipeline
        return SimResult(
            benchmarks=[t.trace.name for t in pipeline.threads],
            policy=self.policy.name,
            cycles=max(1, pipeline.cycle),
            thread_stats=[t.stats for t in pipeline.threads],
            truncated=truncated,
            l2_misses=[s.l2_misses for s in pipeline.mem.stats],
        )
