"""Shared physical register file with renaming support.

One :class:`PhysRegFile` instance exists per register class (INT, FP).  It
tracks, per physical register:

* the free list (allocation/release),
* the cycle at which the value becomes available (``ready``),
* the runahead INV bit (validity of the value, §3.2),
* a pin flag protecting checkpointed architectural state during runahead
  (a pinned register is never recycled until its thread's checkpoint is
  released), and
* the waiter list used for event-driven wakeup of dependent instructions.

The conservation invariant — every register is either free or allocated,
never both — is cheap to check and exercised heavily by the test suite.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import SimulationError
from .dyninst import DynInst

#: Sentinel ready-cycle for "value not yet produced".
NEVER = 1 << 60


class PhysRegFile:
    """A pool of physical registers of one class."""

    __slots__ = ("size", "name", "_free", "_allocated", "ready", "inv",
                 "pinned", "waiters", "high_water")

    def __init__(self, name: str, size: int) -> None:
        if size < 1:
            raise ValueError("register file size must be >= 1")
        self.name = name
        self.size = size
        self._free: List[int] = list(range(size - 1, -1, -1))
        self._allocated = [False] * size
        self.ready = [0] * size
        self.inv = [False] * size
        self.pinned = [False] * size
        self.waiters: List[List[DynInst]] = [[] for _ in range(size)]
        self.high_water = 0

    # --- allocation --------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        return self.size - len(self._free)

    def alloc(self) -> int:
        """Allocate a register; -1 if none are free."""
        free = self._free
        if not free:
            return -1
        preg = free.pop()
        self._allocated[preg] = True
        self.ready[preg] = NEVER
        self.inv[preg] = False
        self.pinned[preg] = False
        used = self.size - len(free)   # allocated_count sans property call
        if used > self.high_water:
            self.high_water = used
        return preg

    def release(self, preg: int) -> None:
        """Return a register to the free list.

        Pinned registers must be unpinned first; releasing a free register
        is an internal invariant violation and raises.
        """
        if not self._allocated[preg]:
            raise SimulationError(
                f"{self.name}: double release of p{preg}")
        if self.pinned[preg]:
            raise SimulationError(
                f"{self.name}: releasing pinned register p{preg}")
        self._allocated[preg] = False
        self.waiters[preg].clear()
        self._free.append(preg)

    def is_allocated(self, preg: int) -> bool:
        return self._allocated[preg]

    # --- checkpoint pinning --------------------------------------------------

    def pin(self, preg: int) -> None:
        if not self._allocated[preg]:
            raise SimulationError(
                f"{self.name}: pinning unallocated register p{preg}")
        self.pinned[preg] = True

    def unpin(self, preg: int) -> None:
        self.pinned[preg] = False

    # --- value state -----------------------------------------------------------

    def set_ready(self, preg: int, cycle: int,
                  invalid: bool = False) -> List[DynInst]:
        """Mark a register's value available; returns (and clears) waiters."""
        self.ready[preg] = cycle
        self.inv[preg] = invalid
        woken = self.waiters[preg]
        self.waiters[preg] = []
        return woken

    def is_ready(self, preg: int, now: int) -> bool:
        return self.ready[preg] <= now

    def add_waiter(self, preg: int, inst: DynInst) -> None:
        self.waiters[preg].append(inst)

    # --- invariants ---------------------------------------------------------------

    def check_conservation(self) -> None:
        """Raise if the free list and allocation flags disagree."""
        allocated = sum(1 for a in self._allocated if a)
        if allocated + len(self._free) != self.size:
            raise SimulationError(
                f"{self.name}: conservation broken "
                f"({allocated} allocated + {len(self._free)} free "
                f"!= {self.size})")
        free_set = set(self._free)
        if len(free_set) != len(self._free):
            raise SimulationError(f"{self.name}: duplicate free-list entry")
        for preg in free_set:
            if self._allocated[preg]:
                raise SimulationError(
                    f"{self.name}: p{preg} both free and allocated")

    def snapshot_occupancy(self) -> Optional[int]:
        """Currently allocated register count (for Figure 5 sampling)."""
        return self.allocated_count
