"""Per-thread register rename state.

Each thread owns two map pairs per register class:

* the **front-end map** — the speculative mapping used to rename newly
  dispatched instructions, updated at dispatch and repaired on squashes;
* the **architectural map** — the committed mapping, updated only at commit
  (never during runahead), which therefore doubles as the runahead
  checkpoint: entering runahead simply pins the architectural registers and
  exiting restores the front-end map from them (§3.3, "Checkpoints": each
  thread checkpoints only its own architectural registers).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import SimulationError
from ..isa import NUM_FP_ARCH_REGS, NUM_INT_ARCH_REGS, RegClass
from .regfile import PhysRegFile


class RenameState:
    """Rename maps for one hardware thread context."""

    __slots__ = ("tid", "front", "arch", "_files")

    def __init__(self, tid: int, int_file: PhysRegFile,
                 fp_file: PhysRegFile) -> None:
        self.tid = tid
        self._files = (int_file, fp_file)
        self.front: List[List[int]] = [[], []]
        self.arch: List[List[int]] = [[], []]
        for klass, count in ((RegClass.INT, NUM_INT_ARCH_REGS),
                             (RegClass.FP, NUM_FP_ARCH_REGS)):
            file = self._files[klass]
            regs = []
            for _ in range(count):
                preg = file.alloc()
                if preg < 0:
                    raise SimulationError(
                        f"register file too small to hold architectural "
                        f"state of thread {tid}")
                # Architectural values exist from cycle 0.
                file.set_ready(preg, 0)
                regs.append(preg)
            self.front[klass] = list(regs)
            self.arch[klass] = list(regs)

    def file(self, klass: int) -> PhysRegFile:
        return self._files[klass]

    # --- front-end operations ------------------------------------------------

    def lookup(self, klass: int, arch_reg: int) -> int:
        return self.front[klass][arch_reg]

    def rename_dest(self, klass: int, arch_reg: int, preg: int) -> int:
        """Point ``arch_reg`` at a new physical register.

        Returns the previous front-end mapping (the instruction's
        ``old_pdest``), which retirement or squash will dispose of.
        """
        old = self.front[klass][arch_reg]
        self.front[klass][arch_reg] = preg
        return old

    def undo_rename(self, klass: int, arch_reg: int, old_preg: int) -> None:
        """Squash repair: restore the previous mapping."""
        self.front[klass][arch_reg] = old_preg

    # --- commit operations ----------------------------------------------------------

    def commit_dest(self, klass: int, arch_reg: int, preg: int) -> int:
        """Advance the architectural map at commit.

        Returns the physical register holding the *previous* architectural
        value, which is now dead and must be released by the caller.
        """
        old = self.arch[klass][arch_reg]
        self.arch[klass][arch_reg] = preg
        return old

    # --- runahead checkpointing ------------------------------------------------------

    def pin_architectural(self) -> None:
        """Pin the architectural registers (runahead entry)."""
        for klass in (RegClass.INT, RegClass.FP):
            file = self._files[klass]
            for preg in self.arch[klass]:
                file.pin(preg)

    def unpin_architectural(self) -> None:
        for klass in (RegClass.INT, RegClass.FP):
            file = self._files[klass]
            for preg in self.arch[klass]:
                file.unpin(preg)

    def restore_front_to_arch(self) -> Tuple[int, int]:
        """Reset the front-end map to architectural state (runahead exit).

        Any front-end mapping that differs from the architectural one points
        at a register allocated during runahead by an already pseudo-retired
        instruction; those are released here.  Returns the number released
        per class as ``(int_released, fp_released)``.
        """
        released = [0, 0]
        for klass in (RegClass.INT, RegClass.FP):
            file = self._files[klass]
            front = self.front[klass]
            arch = self.arch[klass]
            for arch_reg, current in enumerate(front):
                target = arch[arch_reg]
                if current != target:
                    if file.is_allocated(current) and not file.pinned[current]:
                        file.release(current)
                        released[klass] += 1
                    front[arch_reg] = target
        return released[RegClass.INT], released[RegClass.FP]

    # --- invariants -------------------------------------------------------------------

    def check_maps(self) -> None:
        """Every mapped register must be allocated; maps must be in range."""
        for klass in (RegClass.INT, RegClass.FP):
            file = self._files[klass]
            for label, mapping in (("front", self.front[klass]),
                                   ("arch", self.arch[klass])):
                for arch_reg, preg in enumerate(mapping):
                    if not 0 <= preg < file.size:
                        raise SimulationError(
                            f"t{self.tid} {label} map[{arch_reg}] out of "
                            f"range: {preg}")
                    if not file.is_allocated(preg):
                        raise SimulationError(
                            f"t{self.tid} {label} map[{arch_reg}] points at "
                            f"free register p{preg}")
