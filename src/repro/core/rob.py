"""Shared reorder buffer.

The paper's machine uses a single 512-entry ROB shared by all threads
(Table 1, §4): a thread blocked on memory starves co-runners by *occupying*
entries, not by head-of-line blocking — each thread retires its own stream
in order.  This is modelled as one FIFO per thread plus a shared capacity
counter.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List

from ..errors import SimulationError
from .dyninst import DynInst


class SharedROB:
    """Per-thread in-order windows drawing from one shared entry pool."""

    __slots__ = ("capacity", "_queues", "_occupancy", "per_thread")

    def __init__(self, capacity: int, num_threads: int) -> None:
        if capacity < 1 or num_threads < 1:
            raise ValueError("capacity and num_threads must be >= 1")
        self.capacity = capacity
        self._queues: List[Deque[DynInst]] = [deque()
                                              for _ in range(num_threads)]
        self._occupancy = 0
        self.per_thread = [0] * num_threads

    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def free_entries(self) -> int:
        return self.capacity - self._occupancy

    def is_full(self) -> bool:
        return self._occupancy >= self.capacity

    def append(self, inst: DynInst) -> None:
        if self.is_full():
            raise SimulationError("ROB overflow")
        self._queues[inst.tid].append(inst)
        self._occupancy += 1
        self.per_thread[inst.tid] += 1

    def head(self, tid: int) -> DynInst:
        """Oldest un-retired instruction of a thread (raises if empty)."""
        return self._queues[tid][0]

    def is_empty(self, tid: int) -> bool:
        return not self._queues[tid]

    def pop_head(self, tid: int) -> DynInst:
        """Retire the thread's oldest instruction."""
        inst = self._queues[tid].popleft()
        self._occupancy -= 1
        self.per_thread[tid] -= 1
        return inst

    def squash_younger(self, tid: int, boundary_seq: int) -> List[DynInst]:
        """Remove all of a thread's instructions younger than ``boundary_seq``.

        Returned youngest-first, which is the order squash repair must
        undo renames in.
        """
        queue = self._queues[tid]
        squashed: List[DynInst] = []
        while queue and queue[-1].seq > boundary_seq:
            squashed.append(queue.pop())
            self._occupancy -= 1
            self.per_thread[tid] -= 1
        return squashed

    def squash_all(self, tid: int) -> List[DynInst]:
        """Remove every instruction of a thread (runahead exit), youngest-first."""
        return self.squash_younger(tid, -1)

    def thread_window(self, tid: int) -> Iterable[DynInst]:
        """The thread's in-flight instructions, oldest first (read-only)."""
        return iter(self._queues[tid])

    def check_occupancy(self) -> None:
        total = sum(len(q) for q in self._queues)
        if total != self._occupancy:
            raise SimulationError(
                f"ROB occupancy counter {self._occupancy} != {total}")
        for tid, queue in enumerate(self._queues):
            if len(queue) != self.per_thread[tid]:
                raise SimulationError(
                    f"ROB per-thread counter broken for t{tid}")
