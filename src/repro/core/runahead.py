"""The Runahead Threads mechanism (paper §3).

The controller implements the mode machinery:

* **Entry** — when a load that has been detected as an L2 miss reaches the
  head of its thread's reorder-buffer window, the thread checkpoints its
  architectural register map (by pinning it — the architectural map is
  frozen during runahead, so no copy is needed), pseudo-retires the load
  with an INV destination, and switches to runahead mode.
* **During runahead** — handled in the pipeline: instructions dispatch,
  execute and pseudo-retire as usual, but never update architectural state;
  invalid instructions fold; further L2-missing loads become prefetches; FP
  compute ops are dropped at decode (§3.3).
* **Exit** — when the triggering miss resolves, all in-flight speculative
  work is squashed, the front-end map is restored from the architectural
  map, and fetch rewinds to the triggering load, which re-executes against
  a now-warm cache.

The optional runahead cache (§3.3) forwards store validity to subsequent
runahead loads; the paper measured it as insignificant and left it out of
RaT, and it defaults off here too (`SMTConfig.rat_runahead_cache`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, TYPE_CHECKING

from .dyninst import DynInst
from .thread import ThreadContext, ThreadMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pipeline import SMTPipeline


class RunaheadCache:
    """Per-thread store->load validity forwarding during runahead.

    Tracks, per 8-byte word, whether the last runahead store to it carried
    a valid value.  Bounded capacity with FIFO eviction; cleared at exit.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses")

    WORD = 8

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity = max(1, capacity_bytes // self.WORD)
        self._entries: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def record_store(self, addr: int, valid: bool) -> None:
        word = addr // self.WORD
        if word in self._entries:
            self._entries.move_to_end(word)
        self._entries[word] = valid
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def probe_load(self, addr: int) -> Optional[bool]:
        """Validity of forwarded data, or None if no store matched."""
        word = addr // self.WORD
        if word in self._entries:
            self.hits += 1
            return self._entries[word]
        self.misses += 1
        return None

    def clear(self) -> None:
        self._entries.clear()


class RunaheadController:
    """Coordinates runahead entry/exit against the pipeline's structures."""

    def __init__(self, pipeline: "SMTPipeline") -> None:
        self._pipeline = pipeline
        config = pipeline.config
        self.fp_invalidation = config.rat_fp_invalidation
        self.prefetch = config.rat_prefetch
        self.stop_fetch_on_l2_miss = config.rat_stop_fetch_in_runahead
        self.caches: list = []
        if config.rat_runahead_cache:
            self.caches = [RunaheadCache(config.rat_runahead_cache_bytes)
                           for _ in pipeline.threads]

    # --- entry -------------------------------------------------------------

    def should_enter(self, thread: ThreadContext, head: DynInst,
                     now: int) -> bool:
        """Entry test for the instruction at the thread's window head."""
        if thread.mode != ThreadMode.NORMAL:
            return False
        if not head.is_load or not head.l2_miss:
            return False
        if head.complete_cycle >= 0 and head.complete_cycle <= now:
            return False  # data already arrived; commit normally
        if (head.pass_no * thread.retrigger_stride + head.trace_index
                in thread.no_retrigger):
            # One episode per dynamic load (forward-progress guarantee),
            # and the Figure 4 prefetch ablation: a load whose prefetch
            # was suppressed must not re-trigger runahead after recovery.
            return False
        return True

    def enter(self, thread: ThreadContext, trigger: DynInst,
              now: int) -> None:
        """Switch ``thread`` into runahead mode on ``trigger``."""
        # One episode per dynamic load: if the trigger misses again after
        # recovery (e.g. its line was evicted by the episode's own
        # prefetches), the thread waits for it like a normal miss instead
        # of re-entering — guaranteeing forward progress (no livelock).
        thread.no_retrigger.add(
            trigger.pass_no * thread.retrigger_stride + trigger.trace_index)
        thread.rename.pin_architectural()
        thread.mode = ThreadMode.RUNAHEAD
        thread.runahead_trigger_ready = trigger.complete_cycle
        thread.runahead_trigger_index = trigger.trace_index
        thread.runahead_trigger_pass = trigger.pass_no
        thread.stats.runahead_episodes += 1
        if self.stop_fetch_on_l2_miss:
            # Figure 4 "resource availability" ablation: the runahead
            # thread executes only already-fetched instructions.
            thread.gate_fetch_until(trigger.complete_cycle)
        if self.caches:
            self.caches[thread.tid].clear()

    # --- exit --------------------------------------------------------------------

    def should_exit(self, thread: ThreadContext, now: int) -> bool:
        return (thread.mode == ThreadMode.RUNAHEAD
                and now >= thread.runahead_trigger_ready)

    def exit(self, thread: ThreadContext, now: int) -> None:
        """Roll the thread back to its checkpoint and resume normal mode."""
        pipeline = self._pipeline
        pipeline.squash_thread_all(thread)
        int_freed, fp_freed = thread.rename.restore_front_to_arch()
        thread.regs_held[0] -= int_freed
        thread.regs_held[1] -= fp_freed
        thread.rename.unpin_architectural()
        thread.clear_arch_invalid()
        thread.mode = ThreadMode.NORMAL
        thread.rewind_to(thread.runahead_trigger_index,
                         thread.runahead_trigger_pass)
        thread.block_fetch_until(now + pipeline.config.redirect_penalty)
        thread.runahead_trigger_ready = -1
        thread.runahead_trigger_index = -1
        thread.runahead_trigger_pass = -1
        if self.caches:
            self.caches[thread.tid].clear()

    # --- runahead store/load forwarding ----------------------------------------------

    def on_runahead_store(self, thread: ThreadContext, inst: DynInst,
                          data_valid: bool) -> None:
        if self.caches:
            self.caches[thread.tid].record_store(inst.addr, data_valid)

    def load_forward_validity(self, thread: ThreadContext,
                              inst: DynInst) -> Optional[bool]:
        """Validity of store-forwarded data for a runahead load, if any."""
        if not self.caches:
            return None
        return self.caches[thread.tid].probe_load(inst.addr)
