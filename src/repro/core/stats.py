"""Simulation statistics.

``executed`` counts every instruction the machine did work for — committed,
pseudo-retired, folded, and squashed-after-execution alike — because the
paper's energy proxy is "number of executed instructions" (§5.3).
``committed`` counts only architecturally-retired work, the numerator of IPC.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

#: Stats slots that participate in result digests: every
#: :class:`ThreadStats` field is serialized into
#: :class:`~repro.core.processor.SimResult` via ``to_dict`` and is
#: therefore covered by the golden-digest regime — adding a field here
#: requires a CODE_VERSION_SALT bump and re-pinned goldens.  The
#: ``digest-safety`` lint rule (see :mod:`repro.analysis.digests`)
#: fails any stats field missing from this tuple and from
#: :data:`DIGEST_SAFE_DIAGNOSTICS`, so new counters must pick a side.
THREAD_DIGEST_FIELDS = (
    "fetched", "dispatched", "issued", "folded", "executed",
    "committed", "pseudo_retired", "squashed", "branches",
    "mispredicts", "runahead_episodes", "runahead_cycles", "passes",
    "normal_reg_samples", "normal_regs_held",
    "runahead_reg_samples", "runahead_regs_held",
)

#: Stats slots declared digest-exempt: :class:`GlobalStats` is a
#: diagnostics surface, never serialized into SimResult, so these may
#: grow without touching salts or goldens.
DIGEST_SAFE_DIAGNOSTICS = (
    "cycles", "executed", "committed", "fetch_conflicts",
    "dispatch_stalls", "macro_steps", "macro_insts",
    "macro_guard_aborts", "macro_abort_causes",
)


@dataclasses.dataclass(slots=True)
class ThreadStats:
    """Per-thread counters (slotted: these fields are incremented on
    per-instruction hot paths)."""

    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    folded: int = 0           # invalid instructions never executed (runahead)
    executed: int = 0         # finished execution (valid) or folded
    committed: int = 0        # architectural retirement
    pseudo_retired: int = 0   # runahead-mode retirement
    squashed: int = 0
    branches: int = 0
    mispredicts: int = 0
    runahead_episodes: int = 0
    runahead_cycles: int = 0
    passes: int = 0           # complete trace re-executions (FAME)

    # Register-file occupancy sampling for Figure 5, split by mode.
    normal_reg_samples: int = 0
    normal_regs_held: int = 0
    runahead_reg_samples: int = 0
    runahead_regs_held: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Canonical JSON-ready form (all fields are plain ints)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ThreadStats":
        return cls(**data)

    def ipc(self, cycles: int) -> float:
        return self.committed / cycles if cycles > 0 else 0.0

    def avg_regs_normal(self) -> float:
        if self.normal_reg_samples == 0:
            return 0.0
        return self.normal_regs_held / self.normal_reg_samples

    def avg_regs_runahead(self) -> float:
        if self.runahead_reg_samples == 0:
            return 0.0
        return self.runahead_regs_held / self.runahead_reg_samples


@dataclasses.dataclass(slots=True)
class GlobalStats:
    """Whole-processor counters (slotted, as ThreadStats).

    Unlike :class:`ThreadStats`, these are *diagnostics*: they are not
    part of :class:`~repro.core.processor.SimResult` and therefore not
    covered by the golden-digest regime — new counters may be added
    without a cache salt bump.
    """

    cycles: int = 0
    executed: int = 0
    committed: int = 0
    fetch_conflicts: int = 0   # cycles a gated thread was skipped at fetch
    dispatch_stalls: int = 0   # dispatch attempts blocked by a full resource

    # Macro-step speculation accounting (see SMTPipeline._macro_dispatch):
    # fused runs taken, instructions dispatched through them, and entry
    # guards that failed after a plan was found (by cause in the dict —
    # "rob", "iq", "regfile", "policy", "desync").
    macro_steps: int = 0
    macro_insts: int = 0
    macro_guard_aborts: int = 0
    macro_abort_causes: Dict[str, int] = dataclasses.field(
        default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)
