"""Per-thread hardware context.

A :class:`ThreadContext` owns everything private to one hardware thread:
its trace cursor (the program counter of the trace-driven model), rename
state, fetch queue, gating/blocking state, runahead bookkeeping, and
statistics.  Shared structures (ROB, issue queues, register files, caches)
live in the pipeline.

Address spaces
--------------
Threads in a multiprogrammed workload share nothing: each thread's code and
data addresses are offset into a private segment.  Data addresses are
additionally shifted by a per-pass offset within the benchmark's working
set, so that looping a trace (the FAME measurement methodology re-executes
traces) keeps touching fresh lines when the working set exceeds the caches
instead of artificially re-hitting the first pass's footprint.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Set

from ..isa import (
    IS_SPEC_UNSAFE_BY_CODE,
    NO_REG,
    NUM_ARCH_REGS,
    NUM_INT_ARCH_REGS,
    batch_decode,
)
from ..trace.trace import Trace
from .dyninst import DynInst
from .rename import RenameState
from .stats import ThreadStats

#: Byte offset between consecutive passes' data footprints (multiple of the
#: line size, prime line count, so passes interleave rather than alias).
PASS_STRIDE_BYTES = 64 * 16381

#: Private data segment base and per-thread spacing.
DATA_BASE = 0x4000_0000
THREAD_DATA_SPACING = 1 << 36
THREAD_CODE_SPACING = 1 << 33


class ThreadMode(enum.IntEnum):
    NORMAL = 0
    RUNAHEAD = 1


#: Hoisted member: ``mode is _RUNAHEAD_MODE`` on the fetch hot path costs
#: one global load instead of an enum attribute chain.
_RUNAHEAD_MODE = ThreadMode.RUNAHEAD


class MacroPlan:
    """One pre-decoded macro-step: a hot linear run of trace rows.

    Recorded the first time the dispatch stage finds the run's head row
    at the front of a fetch queue; executed thereafter as one fused
    rename+dispatch step whenever the entry guards hold (see
    :meth:`SMTPipeline._macro_dispatch
    <repro.core.pipeline.SMTPipeline._macro_dispatch>`).  Every column
    is a plain tuple indexed by position in the run — the same flat
    int-table layout as :meth:`Trace.hot_columns
    <repro.trace.trace.Trace.hot_columns>`, pulled once from the
    :mod:`repro.isa` tables via :func:`~repro.isa.batch_decode` so the
    fused loop never touches a per-op lookup table again.

    ``normal_demand[k]`` / ``runahead_demand[k]`` give the exact shared-
    resource demand of the run's first ``k`` instructions as an
    ``(int-queue, fp-queue, ls-queue, int-dest, fp-dest)`` entry-count
    tuple.  The runahead variant excludes FP-pipeline ops: with FP
    invalidation on (§3.3) those dispatch as decode-drops needing only a
    ROB slot.  Runs never contain speculation-unsafe ops (SYNC) and
    never cross the trace end (a pass wrap breaks index linearity), so a
    run's rows always describe consecutive fetch-queue entries.
    """

    __slots__ = ("start", "length", "queues", "fus", "latencies",
                 "dest", "dest_klass", "dest_aidx", "src1", "src2",
                 "is_fp", "is_store", "normal_demand", "runahead_demand",
                 "jit_normal", "jit_runahead", "hot_normal",
                 "hot_runahead", "jit_prefix", "hot_prefix")

    def __init__(self, start: int, codes, dests, src1s, src2s) -> None:
        length = len(codes)
        self.start = start
        self.length = length
        (self.queues, self.fus, self.latencies, self.is_fp,
         self.is_store, _unsafe) = batch_decode(codes)
        self.dest = tuple(dests)
        self.dest_klass = tuple(
            0 if dest < NUM_INT_ARCH_REGS else 1 for dest in dests)
        self.dest_aidx = tuple(
            dest if dest < NUM_INT_ARCH_REGS else dest - NUM_INT_ARCH_REGS
            for dest in dests)
        self.src1 = tuple(src1s)
        self.src2 = tuple(src2s)
        queues = self.queues
        is_fp = self.is_fp
        normal = [(0, 0, 0, 0, 0)]
        runahead = [(0, 0, 0, 0, 0)]
        nq = [0, 0, 0]
        nd = [0, 0]
        rq = [0, 0, 0]
        rd = [0, 0]
        for index in range(length):
            nq[queues[index]] += 1
            dest = dests[index]
            if dest != NO_REG:
                nd[0 if dest < NUM_INT_ARCH_REGS else 1] += 1
            if not is_fp[index]:
                rq[queues[index]] += 1
                if dest != NO_REG:
                    rd[0 if dest < NUM_INT_ARCH_REGS else 1] += 1
            normal.append((nq[0], nq[1], nq[2], nd[0], nd[1]))
            runahead.append((rq[0], rq[1], rq[2], rd[0], rd[1]))
        self.normal_demand = tuple(normal)
        self.runahead_demand = tuple(runahead)
        #: JIT tier (see :mod:`repro.core.macro_jit`): per-variant
        #: specialized handlers, compiled once the execution counters
        #: cross the hotness threshold.
        self.jit_normal = None
        self.jit_runahead = None
        self.hot_normal = 0
        self.hot_runahead = 0
        #: Truncated-prefix tier: handlers and hit counters keyed by
        #: ``(k << 1) | drop_active`` for recurring clamp lengths
        #: ``2 <= k < length`` (compiled at ``PREFIX_JIT_THRESHOLD``).
        self.jit_prefix = {}
        self.hot_prefix = {}


def build_macro_plan(thread: "ThreadContext", start: int,
                     max_len: int) -> Optional[MacroPlan]:
    """Record the macro run starting at trace row ``start``, if any.

    The run extends over consecutive non-speculation-unsafe rows, capped
    at ``max_len`` (the machine width — dispatch can never take more in
    one cycle) and at the trace end.  Returns ``None`` when no run of at
    least two instructions starts here — fusing a single instruction
    would only add guard overhead to the per-stage path.
    """
    ops = thread.ops
    stop = start + max_len
    trace_len = len(ops)
    if stop > trace_len:
        stop = trace_len
    end = start
    while end < stop and not IS_SPEC_UNSAFE_BY_CODE[ops[end]]:
        end += 1
    if end - start < 2:
        return None
    return MacroPlan(start, ops[start:end], thread.dests[start:end],
                     thread.src1s[start:end], thread.src2s[start:end])


class ThreadContext:
    """All architectural and microarchitectural state private to a thread."""

    __slots__ = (
        "tid", "trace", "rename", "mode", "stats", "_pass_stride",
        "ops", "dests", "src1s", "src2s", "addrs", "takens", "pcs",
        "cursor", "pass_no", "seq",
        "fetch_queue", "fetch_blocked_until", "fetch_gated_until",
        "fetch_line", "fetch_line_ready",
        "icount", "regs_held", "rob_held", "last_index",
        "runahead_trigger_ready", "runahead_trigger_index",
        "runahead_trigger_pass", "no_retrigger", "retrigger_stride",
        "arch_inv",
        "pending_l2_misses", "finished_passes",
        "data_base", "code_offset", "data_region",
        "macro_plans", "pcs_off", "fetch_lines",
    )

    def __init__(self, tid: int, trace: Trace, rename: RenameState,
                 pass_shift: bool = True) -> None:
        self.tid = tid
        self.trace = trace
        self.rename = rename
        # Hot per-instruction fetch views (plain lists, shared per trace).
        (self.ops, self.dests, self.src1s, self.src2s,
         self.addrs, self.takens, self.pcs) = trace.hot_columns()
        self._pass_stride = PASS_STRIDE_BYTES if pass_shift else 0
        self.mode = ThreadMode.NORMAL
        self.stats = ThreadStats()

        self.cursor = 0
        self.pass_no = 0
        self.seq = 0

        self.fetch_queue: Deque[DynInst] = deque()
        self.fetch_blocked_until = 0   # structural: redirects, i-cache miss
        self.fetch_gated_until = 0     # policy: STALL / DCRA / hill climbing
        self.fetch_line = -1
        self.fetch_line_ready = 0

        self.icount = 0                # instructions in pre-issue stages
        self.regs_held = [0, 0]        # INT, FP rename registers in use
        self.rob_held = 0
        self.last_index = len(trace) - 1   # pass boundary (commit hot path)

        self.runahead_trigger_ready = -1
        self.runahead_trigger_index = -1
        self.runahead_trigger_pass = -1
        #: Dynamic loads barred from re-triggering runahead, keyed by
        #: ``pass_no * retrigger_stride + trace_index`` — a plain int
        #: instead of a (pass, index) tuple, so the membership test on
        #: the commit/skip hot paths allocates nothing.
        self.no_retrigger: Set[int] = set()
        self.retrigger_stride = len(trace)
        self.arch_inv = [False] * NUM_ARCH_REGS

        self.pending_l2_misses = 0
        self.finished_passes = 0

        #: Macro-step plan cache, keyed by the run's starting trace row
        #: (the trace-driven model's program counter).  ``None`` marks a
        #: row where no fusable run starts, so the dispatch stage probes
        #: each row at most once.  The pipeline rebinds this to the
        #: trace-wide cache (:meth:`Trace.macro_plan_cache
        #: <repro.trace.trace.Trace.macro_plan_cache>`) so co-threads
        #: and repeated runs share recordings.
        self.macro_plans: Dict[int, Optional[MacroPlan]] = {}

        self.data_base = DATA_BASE + tid * THREAD_DATA_SPACING
        self.code_offset = tid * THREAD_CODE_SPACING
        self.data_region = max(64, trace.data_region_bytes)

        #: Fetch address columns with the thread's code offset folded in,
        #: and the i-cache line index of each row.  Filled by the pipeline
        #: at construction (it owns the i-cache geometry); the fetch loop
        #: then subscripts instead of recomputing ``pc + offset`` and the
        #: line shift per instruction.
        self.pcs_off: List[int] = self.pcs
        self.fetch_lines: List[int] = []

    # --- trace-driven fetch -----------------------------------------------------

    @property
    def in_runahead(self) -> bool:
        return self.mode == ThreadMode.RUNAHEAD

    def trace_exhausted(self) -> bool:
        return self.cursor >= len(self.trace)

    def next_inst(self, gseq: int) -> DynInst:
        """Materialize the next trace instruction at the fetch cursor."""
        index = self.cursor
        pass_no = self.pass_no
        # Positional DynInst construction: this is the hottest allocation
        # in the simulator (one per fetched instruction).
        inst = DynInst(
            self.tid, self.seq, index, pass_no,
            self.ops[index], self.pcs[index] + self.code_offset, 0,
            self.dests[index], self.src1s[index], self.src2s[index],
            self.takens[index],
        )
        inst.gseq = gseq
        if inst.is_mem:
            # physical_addr(), inlined for the per-instruction hot path.
            inst.addr = self.data_base + (
                (self.addrs[index] + pass_no * self._pass_stride)
                % self.data_region)
        inst.runahead = self.mode is _RUNAHEAD_MODE
        self.seq += 1
        self.cursor += 1
        if self.cursor >= len(self.ops):
            self.cursor = 0
            self.pass_no = pass_no + 1
        return inst

    def physical_addr(self, trace_addr: int, pass_no: int) -> int:
        """Thread-private data address with the per-pass shift applied.

        The shift only applies to threads whose working set exceeds the L2
        (``pass_shift`` at construction): looping a big-working-set trace
        must keep touching fresh lines, while a cacheable benchmark's
        re-executions legitimately re-hit its resident footprint.
        """
        shifted = (trace_addr + pass_no * self._pass_stride) % self.data_region
        return self.data_base + shifted

    def rewind_to(self, trace_index: int, pass_no: int) -> None:
        """Redirect the fetch cursor (squash repair or runahead exit)."""
        self.cursor = trace_index
        self.pass_no = pass_no

    # --- gating ---------------------------------------------------------------------

    def can_fetch(self, now: int) -> bool:
        return (now >= self.fetch_blocked_until
                and now >= self.fetch_gated_until)

    def block_fetch_until(self, cycle: int) -> None:
        """Structural fetch block (redirect penalty, i-cache miss)."""
        if cycle > self.fetch_blocked_until:
            self.fetch_blocked_until = cycle

    def gate_fetch_until(self, cycle: int) -> None:
        """Policy-imposed fetch gate (STALL, DCRA, hill climbing)."""
        if cycle > self.fetch_gated_until:
            self.fetch_gated_until = cycle

    def ungate_fetch(self) -> None:
        self.fetch_gated_until = 0

    # --- runahead helpers --------------------------------------------------------------

    def note_arch_invalid(self, arch_reg: int, invalid: bool) -> None:
        """Track architectural-level INV state during runahead (§3.3).

        Set when a producer's register was reclaimed early (INV results
        are freed at pseudo-retire — "when a physical register is invalid
        this can be freed and used for the rest of the threads") or when
        an FP producer was dropped at decode; cleared when a renamed write
        supersedes it.  Consumers reading a flagged register fold at
        dispatch without waiting.
        """
        self.arch_inv[arch_reg] = invalid

    def arch_is_invalid(self, arch_reg: int) -> bool:
        if arch_reg == NO_REG:
            return False
        return self.arch_inv[arch_reg]

    def clear_arch_invalid(self) -> None:
        for index in range(NUM_ARCH_REGS):
            self.arch_inv[index] = False
