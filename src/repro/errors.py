"""Exception hierarchy for the repro package.

All errors raised by the simulator derive from :class:`ReproError` so that
callers can catch simulator problems without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An :class:`~repro.config.SMTConfig` field is invalid or inconsistent."""


class TraceError(ReproError):
    """A trace is malformed or a trace generator was misconfigured."""


class UnknownBenchmarkError(TraceError):
    """A benchmark name has no registered profile."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown benchmark: {name!r}")
        self.name = name


class UnknownWorkloadError(TraceError):
    """A workload-class name is not one of the Table 2 classes."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown workload class: {name!r}")
        self.name = name


class UnknownPolicyError(ReproError):
    """A policy name has no registered implementation."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown policy: {name!r}")
        self.name = name


class UnknownExhibitError(ReproError):
    """An exhibit name has no registered driver."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown exhibit: {name!r}")
        self.name = name


class ManifestError(ReproError):
    """A campaign manifest is malformed, stale, or sharded inconsistently."""


class IncompleteBatchError(ReproError):
    """A backend finished without producing results for every cell.

    The assembly path (``SimEngine.run_cells``) needs the whole batch;
    a sharded executor deliberately computes only its slice, so pointing
    assembly at one is an error — execute each shard first, then
    assemble the union from the shared store.
    """

    def __init__(self, missing: int, total: int, hint: str = "") -> None:
        message = (f"backend produced results for {total - missing} of "
                   f"{total} cells")
        if hint:
            message = f"{message}: {hint}"
        super().__init__(message)
        self.missing = missing
        self.total = total


class SimulationError(ReproError):
    """The simulator reached an impossible state (internal invariant broken)."""


class DeadlockError(SimulationError):
    """No forward progress was made for an implausible number of cycles."""

    def __init__(self, cycle: int, detail: str = "") -> None:
        message = f"simulator deadlock detected at cycle {cycle}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.cycle = cycle
