"""Experiment drivers: one declarative exhibit per paper table/figure.

Each module defines an :class:`~.common.Exhibit` subclass registered via
the :func:`~.registry.exhibit` decorator.  Exhibits are two pure phases:
``plan(ctx)`` declares every simulation cell up front, ``assemble(ctx,
runs)`` turns the memoized runs into an :class:`~.common.ExhibitResult`
with structured sections (renderable as text, JSON or CSV).

A :class:`~.common.Campaign` unions any set of exhibits' planned cells
into one deduplicated, cost-ordered engine batch — e.g. Figure 3's ED²
numbers reuse the very runs Figures 1 and 2 measured, exactly like the
paper's single simulation campaign — and, with a disk store, runs are
shared across invocations too.

Each module also keeps an imperative ``run(...)`` wrapper (re-exported
below under the exhibit's name) that executes a single-exhibit campaign.
"""

from .common import (Campaign, Exhibit, ExhibitContext, ExhibitResult,
                     ExhibitSection, RegenReport, bench_spec,
                     bench_workloads_per_class)
from .registry import all_exhibits, exhibit_names, get_exhibit
from .table1 import run as table1
from .table2 import run as table2
from .figure1 import run as figure1
from .figure2 import run as figure2
from .figure3 import run as figure3
from .figure4 import run as figure4
from .figure5 import run as figure5
from .figure6 import run as figure6

#: Imperative driver per exhibit name (kept for API compatibility; new
#: code should go through the registry / Campaign).
EXHIBITS = {
    "table1": table1,
    "table2": table2,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
}

__all__ = [
    "Campaign",
    "Exhibit",
    "ExhibitContext",
    "ExhibitResult",
    "ExhibitSection",
    "RegenReport",
    "bench_spec",
    "bench_workloads_per_class",
    "all_exhibits",
    "exhibit_names",
    "get_exhibit",
    "EXHIBITS",
    "table1",
    "table2",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
]
