"""Experiment drivers: one module per paper exhibit.

Each module exposes ``run(...)`` returning an :class:`ExhibitResult` whose
``render()`` prints the same rows/series the paper reports.  Every driver
accepts an ``engine`` argument (defaulting to the process-wide
:func:`repro.sim.engine.get_engine`) and submits its simulation cells in
batches, so a parallel backend overlaps a whole campaign and a result
store shares runs across drivers — e.g. Figure 3's ED² numbers reuse the
very runs Figures 1 and 2 measured, exactly like the paper's single
simulation campaign — and, with a disk store, across invocations.
"""

from .common import ExhibitResult, bench_spec, bench_workloads_per_class
from .table1 import run as table1
from .table2 import run as table2
from .figure1 import run as figure1
from .figure2 import run as figure2
from .figure3 import run as figure3
from .figure4 import run as figure4
from .figure5 import run as figure5
from .figure6 import run as figure6

EXHIBITS = {
    "table1": table1,
    "table2": table2,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
}

__all__ = [
    "ExhibitResult",
    "bench_spec",
    "bench_workloads_per_class",
    "EXHIBITS",
    "table1",
    "table2",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
]
