"""The declarative exhibit API and shared pieces of the drivers.

An exhibit (one of the paper's tables or figures) is described in two
pure phases, mirroring the paper's methodology of one simulation
campaign sliced many ways:

* :meth:`Exhibit.plan` declares, up front, every simulation cell the
  exhibit's numbers derive from — a plain ``list[SweepCell]`` value that
  can be unioned, deduplicated, hashed and shipped;
* :meth:`Exhibit.assemble` consumes the memoized runs of those cells
  (a :class:`~repro.sim.engine.RunIndex`) and produces an
  :class:`ExhibitResult` with structured sections.

A :class:`Campaign` unions the planned cells of any set of exhibits into
**one** deduplicated, cost-ordered batch for the simulation engine, so
``repro all`` drains the worker pool exactly once and shared cells (the
ICOUNT baselines, RaT runs, single-thread fairness references) are
simulated once no matter how many exhibits slice them.

Exhibits register under a CLI name via the :func:`~.registry.exhibit`
decorator (mirroring ``policies/registry.py``); see ``figure1.py`` for
the canonical example.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import SMTConfig, baseline
from ..sim.engine import RunIndex, SweepCell
from ..sim.manifest import (CampaignManifest, ExhibitPlan, ManifestEntry,
                            exhibit_render_key)
from ..sim.runner import RunSpec, default_spec
from ..trace.workloads import WORKLOAD_CLASSES

#: The static I-fetch policies of §5.1 (ICOUNT is the common baseline).
FETCH_POLICIES = ("icount", "stall", "flush", "rat")

#: The dynamic resource-control comparison of §5.2.
RESOURCE_POLICIES = ("icount", "dcra", "hill", "rat")

#: Everything Figure 3 charges for energy, normalized to ICOUNT.
ENERGY_POLICIES = ("stall", "flush", "dcra", "hill", "rat")

#: Environment variable limiting workloads per class (benchmark harness
#: uses this to keep wall-clock sane; unset = the full Table 2 set).
BENCH_WORKLOADS_ENV = "REPRO_BENCH_WORKLOADS"

#: Renderings every exhibit supports.
RENDER_FORMATS = ("text", "json", "csv")


def bench_workloads_per_class(default: Optional[int] = None) -> Optional[int]:
    """Workloads-per-class cap from the environment, if any.

    Unset or empty means ``default``; 0 or negative means uncapped.
    """
    raw = os.environ.get(BENCH_WORKLOADS_ENV)
    if raw is None or not raw.strip():
        return default
    value = int(raw)
    return value if value > 0 else None


def bench_spec() -> RunSpec:
    """Run spec used by the benchmark harness (env-tunable)."""
    return default_spec()


@dataclasses.dataclass(frozen=True)
class ExhibitContext:
    """Everything an exhibit's plan/assemble phases may depend on.

    Both phases are pure functions of this context (plus, for assemble,
    the planned cells' runs), which is what makes planned cell sets
    deterministic, hashable and therefore cacheable.
    """

    config: SMTConfig
    spec: RunSpec
    classes: Tuple[str, ...]
    workloads_per_class: Optional[int] = None

    @classmethod
    def make(cls, config: Optional[SMTConfig] = None,
             spec: Optional[RunSpec] = None,
             classes: Optional[Sequence[str]] = None,
             workloads_per_class: Optional[int] = None) -> "ExhibitContext":
        """Fill in the experiment defaults."""
        return cls(config=config if config is not None else baseline(),
                   spec=spec if spec is not None else default_spec(),
                   classes=tuple(classes) if classes else WORKLOAD_CLASSES,
                   workloads_per_class=workloads_per_class)

    def to_payload(self) -> Dict:
        """Canonical JSON-safe form (feeds manifest and render keys)."""
        return {
            "config": self.config.to_dict(),
            "spec": self.spec.to_dict(),
            "classes": list(self.classes),
            "workloads_per_class": self.workloads_per_class,
        }


@dataclasses.dataclass
class ExhibitSection:
    """One table of an exhibit: headers, rows, optional title and note."""

    headers: Tuple[str, ...]
    rows: List[List[object]]
    title: str = ""
    note: str = ""

    def render_text(self) -> str:
        from .report import ascii_table
        text = ascii_table(self.headers, self.rows, title=self.title)
        if self.note:
            text += "\n" + self.note
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExhibitSection":
        return cls(headers=tuple(data["headers"]),
                   rows=[list(row) for row in data["rows"]],
                   title=data.get("title", ""),
                   note=data.get("note", ""))


@dataclasses.dataclass
class ExhibitResult:
    """Outcome of one exhibit: structured sections plus raw data.

    ``sections`` drive every rendering; ``data`` holds the rich
    in-process values (sweeps, aggregates) programmatic callers slice,
    and ``payload`` is the JSON-safe subset exported by :meth:`to_dict`.
    """

    exhibit: str
    title: str
    sections: List[ExhibitSection] = dataclasses.field(default_factory=list)
    data: Dict = dataclasses.field(default_factory=dict, repr=False)
    payload: Dict = dataclasses.field(default_factory=dict, repr=False)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form: identity, data payload, and every section."""
        return {
            "exhibit": self.exhibit,
            "title": self.title,
            "data": self.payload,
            "sections": [section.to_dict() for section in self.sections],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExhibitResult":
        """Rebuild a result from its JSON-safe form (the render cache).

        Renderings of the rebuilt result are byte-identical to the
        original's — every renderer consumes only sections and payload.
        ``data`` is rehydrated from the serialized payload, so a render
        -cache hit is sliceable programmatically without forcing a full
        assembly; entries come back in their canonical JSON-safe
        projection (lists for tuples, string-keyed mappings for
        tuple-keyed series — exactly what each exhibit exports through
        its payload), not the original in-process types.
        """
        payload = data["data"]
        return cls(exhibit=data["exhibit"], title=data["title"],
                   sections=[ExhibitSection.from_dict(section)
                             for section in data["sections"]],
                   data=dict(payload), payload=payload)

    def render(self, fmt: str = "text") -> str:
        """Render as ``text`` (the paper's ASCII tables), ``json`` or
        ``csv``."""
        if fmt == "text":
            return self.render_text()
        if fmt == "json":
            return json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if fmt == "csv":
            return self.render_csv()
        raise ValueError(f"unknown exhibit format {fmt!r}; "
                         f"expected one of {RENDER_FORMATS}")

    def render_text(self) -> str:
        header = f"== {self.exhibit}: {self.title} =="
        body = "\n\n".join(section.render_text()
                           for section in self.sections)
        return f"{header}\n{body}"

    def render_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        for index, section in enumerate(self.sections):
            if index:
                writer.writerow([])
            writer.writerow([f"# {self.exhibit}: "
                             f"{section.title or self.title}"])
            writer.writerow(section.headers)
            writer.writerows(section.rows)
            if section.note:
                writer.writerow([f"# {section.note}"])
        return buffer.getvalue()


class Exhibit:
    """Base class of the declarative two-phase exhibit API.

    Subclasses implement :meth:`plan` and :meth:`assemble`; both must be
    pure functions of their arguments so a planned cell set can serve as
    a cache key for the assembled exhibit.  The :func:`~.registry.exhibit`
    decorator fills in ``name``/``title`` and registers an instance.
    """

    name: str = ""
    title: str = ""
    #: Assembly/render version, folded into the exhibit's render-cache
    #: key.  Bump it when *this* exhibit's ``assemble`` output changes
    #: (new column, different note, reshaped payload) so only its cached
    #: renderings are invalidated; presentation changes shared by every
    #: exhibit bump ``EXHIBIT_RENDER_SALT`` in ``sim/store.py`` instead.
    version: int = 1

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        """Declare every simulation cell this exhibit derives from."""
        raise NotImplementedError

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        """Build the exhibit from the planned cells' memoized runs."""
        raise NotImplementedError

    def run(self, config: Optional[SMTConfig] = None,
            spec: Optional[RunSpec] = None,
            classes: Optional[Sequence[str]] = None,
            workloads_per_class: Optional[int] = None,
            engine=None) -> ExhibitResult:
        """Plan and assemble this one exhibit (a single-exhibit campaign)."""
        ctx = ExhibitContext.make(config, spec, classes, workloads_per_class)
        campaign = Campaign([self], ctx=ctx, engine=engine)
        return self.assemble(ctx, campaign.execute())


def resolve_engine(engine):
    """The given engine, or the process-wide default."""
    if engine is not None:
        return engine
    from ..sim.engine import get_engine
    return get_engine()


def class_workloads(klass: str, workloads_per_class: Optional[int]):
    """One class's Table 2 workloads, optionally capped."""
    from ..trace.workloads import get_workloads
    return get_workloads(klass, limit=workloads_per_class)


def cell_cost(cell: SweepCell) -> Tuple[int, int]:
    """Estimated relative simulation cost of a cell.

    Primary weight is thread-count x trace-length (the work the pipeline
    chews through); ties break toward memory-bound benchmarks, whose
    400-cycle misses make them the slowest cells of a campaign.
    """
    from ..trace.profiles import get_profile
    mem_threads = sum(1 for name in cell.workload.benchmarks
                      if get_profile(name).is_mem)
    return (cell.workload.num_threads * cell.spec.trace_len, mem_threads)


def order_cells_by_cost(cells: Sequence[SweepCell]) -> List[SweepCell]:
    """Costliest-first, stable order — so a parallel pool starts the slow
    4-thread MEM cells immediately and drains evenly."""
    return sorted(cells, key=cell_cost, reverse=True)


@dataclasses.dataclass(frozen=True)
class RegenReport:
    """How a cache-aware regeneration satisfied its exhibits."""

    assembled: Tuple[str, ...]    # assembled fresh from runs
    from_cache: Tuple[str, ...]   # served whole from the render cache
    cells_executed: int           # batch size handed to the engine


class Campaign:
    """One deduplicated simulation batch serving any set of exhibits.

    ``plan()`` unions every requested exhibit's planned cells, drops
    duplicates (by content-addressed cell key), orders the remainder
    costliest-first and returns a serializable
    :class:`~repro.sim.manifest.CampaignManifest` — the artifact the
    execute (``SimEngine.execute_cells``, optionally sharded) and
    assemble stages consume.  ``execute()``/``run()`` keep the one-shot
    in-process path: one ``run_cells`` batch, then each exhibit is
    assembled from the shared :class:`~repro.sim.engine.RunIndex` — no
    further simulation.  ``regenerate()`` additionally consults an
    exhibit-render cache so untouched figures skip assembly (and their
    cells skip execution) entirely.
    """

    def __init__(self, exhibits: Sequence[Union[str, Exhibit]],
                 ctx: Optional[ExhibitContext] = None,
                 engine=None) -> None:
        from .registry import get_exhibit
        self.exhibits: List[Exhibit] = [
            get_exhibit(item) if isinstance(item, str) else item
            for item in exhibits
        ]
        self.ctx = ctx if ctx is not None else ExhibitContext.make()
        self.engine = resolve_engine(engine)
        self._plans: Optional[Dict[str, List[SweepCell]]] = None
        self._manifest: Optional[CampaignManifest] = None

    def plans(self) -> Dict[str, List[SweepCell]]:
        """Each exhibit's declared cells, keyed by exhibit name."""
        if self._plans is None:
            self._plans = {ex.name: ex.plan(self.ctx)
                           for ex in self.exhibits}
        return self._plans

    def plan(self) -> CampaignManifest:
        """The campaign's manifest: deduplicated, cost-ordered, keyed.

        A pure function of the exhibit set and context — two machines
        planning the same campaign emit byte-identical manifests, which
        is what makes the K/N shard split coordination-free.
        """
        if self._manifest is None:
            unique: Dict[str, SweepCell] = {}
            owners: Dict[str, set] = {}
            for name, cells in self.plans().items():
                for cell in cells:
                    key = cell.key()
                    unique.setdefault(key, cell)
                    owners.setdefault(key, set()).add(name)
            ordered = order_cells_by_cost(unique.values())
            ctx_payload = self.ctx.to_payload()
            entries = []
            for cell in ordered:
                key = cell.key()
                entries.append(ManifestEntry(
                    key=key, cell=cell, cost=cell_cost(cell),
                    exhibits=tuple(sorted(owners[key]))))
            plans = []
            for ex in self.exhibits:
                cell_keys = tuple(sorted(
                    {cell.key() for cell in self.plans()[ex.name]}))
                plans.append(ExhibitPlan(
                    name=ex.name, title=ex.title, version=ex.version,
                    cell_keys=cell_keys,
                    render_key=exhibit_render_key(
                        ex.name, ex.version, cell_keys, ctx_payload)))
            self._manifest = CampaignManifest(
                entries=tuple(entries), exhibits=tuple(plans),
                context=ctx_payload)
        return self._manifest

    def execute(self, progress=None) -> RunIndex:
        """Simulate the single unified batch; returns the run index."""
        batch = self.plan().cells()
        runs = self.engine.run_cells(batch, progress=progress)
        return RunIndex.from_runs(batch, runs)

    def assemble(self, runs: RunIndex) -> Dict[str, ExhibitResult]:
        """Assemble every exhibit from an executed batch's runs."""
        return {ex.name: ex.assemble(self.ctx, runs)
                for ex in self.exhibits}

    def run(self, progress=None) -> Dict[str, ExhibitResult]:
        """Plan, execute and assemble in one call."""
        return self.assemble(self.execute(progress=progress))

    def regenerate(self, cache=None, progress=None
                   ) -> Tuple[Dict[str, ExhibitResult], RegenReport]:
        """Assemble every exhibit, serving untouched ones from a cache.

        ``cache`` is an
        :class:`~repro.sim.store.ExhibitRenderCache` (or ``None`` to
        always assemble).  Exhibits whose manifest ``render_key`` hits
        are rebuilt from their cached document without touching any run;
        only the union of the *remaining* exhibits' cells is executed.
        A campaign whose every exhibit hits performs zero simulations
        and zero re-renders.
        """
        manifest = self.plan()
        results: Dict[str, ExhibitResult] = {}
        from_cache: List[str] = []
        pending: List[Exhibit] = []
        for ex in self.exhibits:
            document = (cache.get(manifest.exhibit_plan(ex.name).render_key)
                        if cache is not None else None)
            if document is not None:
                results[ex.name] = ExhibitResult.from_dict(document)
                from_cache.append(ex.name)
            else:
                pending.append(ex)
        batch: List[SweepCell] = []
        if pending:
            needed = set()
            for ex in pending:
                needed.update(manifest.exhibit_plan(ex.name).cell_keys)
            batch = [entry.cell for entry in manifest.entries
                     if entry.key in needed]
            runs = self.engine.run_cells(batch, progress=progress)
            index = RunIndex.from_runs(batch, runs)
            for ex in pending:
                result = ex.assemble(self.ctx, index)
                results[ex.name] = result
                if cache is not None:
                    cache.put(manifest.exhibit_plan(ex.name).render_key,
                              result.to_dict())
        return results, RegenReport(
            assembled=tuple(ex.name for ex in pending),
            from_cache=tuple(from_cache),
            cells_executed=len(batch))
