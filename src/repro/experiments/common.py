"""Shared pieces of the experiment drivers."""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, Optional, Sequence

from ..config import SMTConfig, baseline
from ..sim.runner import RunSpec, default_spec
from ..trace.workloads import WORKLOAD_CLASSES

#: The static I-fetch policies of §5.1 (ICOUNT is the common baseline).
FETCH_POLICIES = ("icount", "stall", "flush", "rat")

#: The dynamic resource-control comparison of §5.2.
RESOURCE_POLICIES = ("icount", "dcra", "hill", "rat")

#: Everything Figure 3 charges for energy, normalized to ICOUNT.
ENERGY_POLICIES = ("stall", "flush", "dcra", "hill", "rat")

#: Environment variable limiting workloads per class (benchmark harness
#: uses this to keep wall-clock sane; unset = the full Table 2 set).
BENCH_WORKLOADS_ENV = "REPRO_BENCH_WORKLOADS"


def bench_workloads_per_class(default: Optional[int] = None) -> Optional[int]:
    """Workloads-per-class cap from the environment, if any.

    Unset or empty means ``default``; 0 or negative means uncapped.
    """
    raw = os.environ.get(BENCH_WORKLOADS_ENV)
    if raw is None or not raw.strip():
        return default
    value = int(raw)
    return value if value > 0 else None


def bench_spec() -> RunSpec:
    """Run spec used by the benchmark harness (env-tunable)."""
    return default_spec()


@dataclasses.dataclass
class ExhibitResult:
    """Outcome of one experiment driver."""

    exhibit: str
    title: str
    data: Dict
    _renderer: Callable[["ExhibitResult"], str] = dataclasses.field(
        repr=False, default=None)  # type: ignore[assignment]

    def render(self) -> str:
        """Plain-text reproduction of the paper's table/figure."""
        header = f"== {self.exhibit}: {self.title} =="
        body = self._renderer(self) if self._renderer else str(self.data)
        return f"{header}\n{body}"


def resolve(config: Optional[SMTConfig],
            spec: Optional[RunSpec],
            classes: Optional[Sequence[str]]):
    """Fill in experiment defaults."""
    return (config or baseline(),
            spec or default_spec(),
            tuple(classes) if classes else WORKLOAD_CLASSES)


def resolve_engine(engine):
    """The given engine, or the process-wide default."""
    if engine is not None:
        return engine
    from ..sim.engine import get_engine
    return get_engine()


def class_workloads(klass: str, workloads_per_class: Optional[int]):
    """One class's Table 2 workloads, optionally capped."""
    from ..trace.workloads import get_workloads
    return get_workloads(klass, limit=workloads_per_class)
