"""Figure 1: throughput and fairness of the static I-fetch policies.

Compares ICOUNT (baseline), STALL, FLUSH and RaT over the six workload
classes — the paper's headline comparison (§5.1).
"""

from __future__ import annotations

from typing import List

from ..sim.engine import RunIndex, SweepCell
from ..sim.sweep import (PolicySweep, assemble_policy_sweep,
                         plan_policy_sweep)
from .common import (Exhibit, ExhibitContext, ExhibitResult, ExhibitSection,
                     FETCH_POLICIES)
from .registry import exhibit


def _sweep_tables(policies, classes, sweep):
    throughput_rows = [
        [policy] + [sweep.metric(policy, klass, "throughput")
                    for klass in classes]
        for policy in policies
    ]
    fairness_rows = [
        [policy] + [sweep.metric(policy, klass, "fairness")
                    for klass in classes]
        for policy in policies
    ]
    return throughput_rows, fairness_rows


class SweepExhibit(Exhibit):
    """Shared shape of Figures 1 and 2: one policy sweep, three tables."""

    policies: tuple = ()
    #: Human-facing exhibit label ("Figure 1"); set by subclasses.
    exhibit_label = ""

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        return plan_policy_sweep(self.policies, ctx.classes, ctx.config,
                                 ctx.spec, ctx.workloads_per_class)

    def sweep(self, ctx: ExhibitContext, runs: RunIndex) -> PolicySweep:
        return assemble_policy_sweep(self.policies, ctx.classes, runs,
                                     ctx.config, ctx.spec,
                                     ctx.workloads_per_class)

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        sweep = self.sweep(ctx, runs)
        classes = ctx.classes
        throughput_rows, fairness_rows = _sweep_tables(self.policies,
                                                       classes, sweep)
        relative = [
            [policy] + sweep.relative(policy, "icount", "throughput")
            for policy in self.policies
        ]
        headers = ("Policy",) + tuple(classes)
        sections = [
            ExhibitSection(headers, throughput_rows,
                           title="(a) Throughput (IPC)"),
            ExhibitSection(headers, fairness_rows,
                           title="(b) Fairness (hmean of speedups)"),
            ExhibitSection(headers, relative,
                           title="Throughput relative to ICOUNT"),
        ]
        payload = {
            "classes": list(classes),
            "policies": list(self.policies),
            "throughput": throughput_rows,
            "fairness": fairness_rows,
            "relative_throughput": relative,
        }
        return ExhibitResult(
            exhibit=self.exhibit_label,
            title=self.title,
            sections=sections,
            data=dict(payload, sweep=sweep),
            payload=payload,
        )


@exhibit("figure1", title="Throughput and fairness for I-Fetch policies "
                          "(ICOUNT / STALL / FLUSH / RaT)")
class Figure1(SweepExhibit):
    policies = FETCH_POLICIES
    exhibit_label = "Figure 1"


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("figure1").run(config, spec, classes,
                                      workloads_per_class, engine)
