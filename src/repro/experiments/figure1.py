"""Figure 1: throughput and fairness of the static I-fetch policies.

Compares ICOUNT (baseline), STALL, FLUSH and RaT over the six workload
classes — the paper's headline comparison (§5.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SMTConfig
from ..sim.runner import RunSpec
from ..sim.sweep import sweep_policies
from .common import ExhibitResult, FETCH_POLICIES, resolve
from .report import ascii_table


def _sweep_tables(policies, classes, sweep):
    throughput_rows = [
        [policy] + [sweep.metric(policy, klass, "throughput")
                    for klass in classes]
        for policy in policies
    ]
    fairness_rows = [
        [policy] + [sweep.metric(policy, klass, "fairness")
                    for klass in classes]
        for policy in policies
    ]
    return throughput_rows, fairness_rows


def _render_sweep(result: ExhibitResult) -> str:
    classes = result.data["classes"]
    headers = ("Policy",) + tuple(classes)
    parts = [ascii_table(headers, result.data["throughput"],
                         title="(a) Throughput (IPC)")]
    parts.append("")
    parts.append(ascii_table(headers, result.data["fairness"],
                             title="(b) Fairness (hmean of speedups)"))
    relatives = result.data["relative_throughput"]
    parts.append("")
    parts.append(ascii_table(
        ("Policy",) + tuple(classes),
        relatives, title="Throughput relative to ICOUNT"))
    return "\n".join(parts)


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None,
        classes: Optional[Sequence[str]] = None,
        workloads_per_class: Optional[int] = None,
        engine=None) -> ExhibitResult:
    config, spec, classes = resolve(config, spec, classes)
    sweep = sweep_policies(FETCH_POLICIES, classes, config, spec,
                           workloads_per_class, engine=engine)
    throughput_rows, fairness_rows = _sweep_tables(FETCH_POLICIES, classes,
                                                   sweep)
    relative = [
        [policy] + sweep.relative(policy, "icount", "throughput")
        for policy in FETCH_POLICIES
    ]
    return ExhibitResult(
        exhibit="Figure 1",
        title="Throughput and fairness for I-Fetch policies "
              "(ICOUNT / STALL / FLUSH / RaT)",
        data={
            "classes": list(classes),
            "policies": list(FETCH_POLICIES),
            "throughput": throughput_rows,
            "fairness": fairness_rows,
            "relative_throughput": relative,
            "sweep": sweep,
        },
        _renderer=_render_sweep,
    )
