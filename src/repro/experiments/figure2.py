"""Figure 2: throughput and fairness of dynamic resource-control policies.

Compares ICOUNT (baseline), DCRA, Hill Climbing (Hill-Thru variant) and
RaT over the six workload classes (§5.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SMTConfig
from ..sim.runner import RunSpec
from ..sim.sweep import sweep_policies
from .common import ExhibitResult, RESOURCE_POLICIES, resolve
from .figure1 import _render_sweep, _sweep_tables


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None,
        classes: Optional[Sequence[str]] = None,
        workloads_per_class: Optional[int] = None,
        engine=None) -> ExhibitResult:
    config, spec, classes = resolve(config, spec, classes)
    sweep = sweep_policies(RESOURCE_POLICIES, classes, config, spec,
                           workloads_per_class, engine=engine)
    throughput_rows, fairness_rows = _sweep_tables(RESOURCE_POLICIES,
                                                   classes, sweep)
    relative = [
        [policy] + sweep.relative(policy, "icount", "throughput")
        for policy in RESOURCE_POLICIES
    ]
    return ExhibitResult(
        exhibit="Figure 2",
        title="Throughput and fairness for resource control policies "
              "(ICOUNT / DCRA / HillClimbing / RaT)",
        data={
            "classes": list(classes),
            "policies": list(RESOURCE_POLICIES),
            "throughput": throughput_rows,
            "fairness": fairness_rows,
            "relative_throughput": relative,
            "sweep": sweep,
        },
        _renderer=_render_sweep,
    )
