"""Figure 2: throughput and fairness of dynamic resource-control policies.

Compares ICOUNT (baseline), DCRA, Hill Climbing (Hill-Thru variant) and
RaT over the six workload classes (§5.2).
"""

from __future__ import annotations

from .common import ExhibitResult, RESOURCE_POLICIES
from .figure1 import SweepExhibit
from .registry import exhibit


@exhibit("figure2", title="Throughput and fairness for resource control "
                          "policies (ICOUNT / DCRA / HillClimbing / RaT)")
class Figure2(SweepExhibit):
    policies = RESOURCE_POLICIES
    exhibit_label = "Figure 2"


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("figure2").run(config, spec, classes,
                                      workloads_per_class, engine)
