"""Figure 3: Energy-Delay² normalized to ICOUNT (§5.3).

ED² = executed instructions x CPI², with all executed work (committed,
squashed, runahead-speculative) charged at unit energy — the paper's own
approximation.  Bars below 1.0 beat the ICOUNT baseline.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..config import SMTConfig
from ..sim.runner import RunSpec
from ..sim.sweep import sweep_policies
from .common import ENERGY_POLICIES, ExhibitResult, resolve
from .report import ascii_table


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None,
        classes: Optional[Sequence[str]] = None,
        workloads_per_class: Optional[int] = None,
        engine=None) -> ExhibitResult:
    config, spec, classes = resolve(config, spec, classes)
    policies = ("icount",) + ENERGY_POLICIES
    sweep = sweep_policies(policies, classes, config, spec,
                           workloads_per_class, engine=engine)

    normalized: Dict[str, Dict[str, float]] = {}
    for policy in ENERGY_POLICIES:
        normalized[policy] = {}
        for klass in classes:
            baseline_ed2 = sweep.metric("icount", klass, "ed2")
            own = sweep.metric(policy, klass, "ed2")
            normalized[policy][klass] = (own / baseline_ed2
                                         if baseline_ed2 else float("inf"))

    rows = [
        [policy] + [normalized[policy][klass] for klass in classes]
        + [sum(normalized[policy][klass] for klass in classes)
           / len(classes)]
        for policy in ENERGY_POLICIES
    ]

    def _render(result: ExhibitResult) -> str:
        headers = ("Policy",) + tuple(result.data["classes"]) + ("avg",)
        return ascii_table(
            headers, result.data["rows"],
            title="ED^2 normalized to ICOUNT (lower is better)")

    return ExhibitResult(
        exhibit="Figure 3",
        title="Energy-Delay^2 relative to ICOUNT",
        data={"classes": list(classes), "rows": rows,
              "normalized": normalized, "sweep": sweep},
        _renderer=_render,
    )
