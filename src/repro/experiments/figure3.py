"""Figure 3: Energy-Delay² normalized to ICOUNT (§5.3).

ED² = executed instructions x CPI², with all executed work (committed,
squashed, runahead-speculative) charged at unit energy — the paper's own
approximation.  Bars below 1.0 beat the ICOUNT baseline.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.engine import RunIndex, SweepCell
from ..sim.sweep import assemble_policy_sweep, plan_policy_sweep
from .common import (ENERGY_POLICIES, Exhibit, ExhibitContext,
                     ExhibitResult, ExhibitSection)
from .registry import exhibit


@exhibit("figure3", title="Energy-Delay^2 relative to ICOUNT")
class Figure3(Exhibit):

    #: ICOUNT supplies the normalization baseline, so it is swept too.
    policies = ("icount",) + ENERGY_POLICIES

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        return plan_policy_sweep(self.policies, ctx.classes, ctx.config,
                                 ctx.spec, ctx.workloads_per_class)

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        classes = ctx.classes
        sweep = assemble_policy_sweep(self.policies, classes, runs,
                                      ctx.config, ctx.spec,
                                      ctx.workloads_per_class)
        normalized: Dict[str, Dict[str, float]] = {}
        for policy in ENERGY_POLICIES:
            normalized[policy] = {}
            for klass in classes:
                baseline_ed2 = sweep.metric("icount", klass, "ed2")
                own = sweep.metric(policy, klass, "ed2")
                normalized[policy][klass] = (own / baseline_ed2
                                             if baseline_ed2
                                             else float("inf"))

        rows = [
            [policy] + [normalized[policy][klass] for klass in classes]
            + [sum(normalized[policy][klass] for klass in classes)
               / len(classes)]
            for policy in ENERGY_POLICIES
        ]
        payload = {"classes": list(classes), "rows": rows,
                   "normalized": normalized}
        return ExhibitResult(
            exhibit="Figure 3",
            title=self.title,
            sections=[ExhibitSection(
                ("Policy",) + tuple(classes) + ("avg",), rows,
                title="ED^2 normalized to ICOUNT (lower is better)")],
            data=dict(payload, sweep=sweep),
            payload=payload,
        )


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("figure3").run(config, spec, classes,
                                      workloads_per_class, engine)
