"""Figure 4: sources of RaT's improvement (§6.1).

Three experiments isolate where the benefit comes from:

* **Prefetching** — RaT vs RaT with all runahead L2/memory traffic
  disabled (``rat_prefetch=False``; suppressed loads are barred from
  re-triggering runahead after recovery, keeping runahead periods
  comparable, exactly as the paper describes).
* **Resource availability** — RaT that stops fetching at runahead entry
  (``rat_stop_fetch_in_runahead=True``) vs ICOUNT: the thread releases its
  resources early but does no speculative work, isolating the
  early-release benefit.
* **Overhead** — degradation of the *co-running* threads when a runahead
  thread performs only useless work (RaT without prefetching), measured
  against the same threads running beside a STALL-parked neighbour (the
  least-disturbing baseline).  The paper reports this worst-case
  disturbance at about 4%.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..config import SMTConfig
from ..sim.engine import SweepCell
from ..sim.runner import RunSpec
from .common import ExhibitResult, class_workloads, resolve, resolve_engine
from .report import ascii_table


def _class_throughput(engine, klass: str, policy: str, config: SMTConfig,
                      spec: RunSpec,
                      workloads_per_class: Optional[int]) -> float:
    workloads = class_workloads(klass, workloads_per_class)
    values = [engine.run_workload(w, policy, config, spec).throughput
              for w in workloads]
    return sum(values) / len(values)


def _overhead(engine, klass: str, rat_noprefetch: SMTConfig,
              config: SMTConfig, spec: RunSpec,
              workloads_per_class: Optional[int]) -> float:
    """Mean co-runner degradation under useless runahead vs STALL."""
    workloads = class_workloads(klass, workloads_per_class)
    degradations: List[float] = []
    for workload in workloads:
        noisy = engine.run_workload(workload, "rat", rat_noprefetch, spec)
        quiet = engine.run_workload(workload, "stall", config, spec)
        episodes = [stats.runahead_episodes
                    for stats in noisy.result.thread_stats]
        for tid in range(workload.num_threads):
            if episodes[tid]:
                continue  # the runahead thread itself is not a co-runner
            reference = quiet.ipcs[tid]
            if reference <= 0:
                continue
            degradations.append(1.0 - noisy.ipcs[tid] / reference)
    if not degradations:
        return 0.0
    return sum(degradations) / len(degradations)


@dataclasses.dataclass
class _Sources:
    prefetching: float
    resource_availability: float
    overhead: float


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None,
        classes: Optional[Sequence[str]] = None,
        workloads_per_class: Optional[int] = None,
        engine=None) -> ExhibitResult:
    config, spec, classes = resolve(config, spec, classes)
    engine = resolve_engine(engine)
    no_prefetch = dataclasses.replace(config, policy="rat",
                                      rat_prefetch=False)
    stop_fetch = dataclasses.replace(config, policy="rat",
                                     rat_stop_fetch_in_runahead=True)

    # Submit every variant's cells in one batch so a parallel backend
    # overlaps the whole ablation campaign; the helpers below then read
    # the memoized runs back cell by cell.
    variants = (("rat", config), ("rat", no_prefetch),
                ("rat", stop_fetch), ("icount", config),
                ("stall", config))
    cells = [SweepCell.make(workload, policy, cfg, spec)
             for klass in classes
             for workload in class_workloads(klass, workloads_per_class)
             for policy, cfg in variants]
    engine.run_cells(cells)

    per_class: Dict[str, _Sources] = {}
    for klass in classes:
        rat = _class_throughput(engine, klass, "rat", config, spec,
                                workloads_per_class)
        rat_nopf = _class_throughput(engine, klass, "rat", no_prefetch,
                                     spec, workloads_per_class)
        rat_stop = _class_throughput(engine, klass, "rat", stop_fetch,
                                     spec, workloads_per_class)
        icount = _class_throughput(engine, klass, "icount", config, spec,
                                   workloads_per_class)
        per_class[klass] = _Sources(
            prefetching=(rat / rat_nopf - 1.0) if rat_nopf else 0.0,
            resource_availability=(rat_stop / icount - 1.0) if icount
            else 0.0,
            overhead=_overhead(engine, klass, no_prefetch, config, spec,
                               workloads_per_class),
        )

    rows = [
        [klass,
         per_class[klass].prefetching * 100.0,
         per_class[klass].resource_availability * 100.0,
         per_class[klass].overhead * 100.0]
        for klass in classes
    ]
    averages = ["average"] + [
        sum(getattr(per_class[klass], field) for klass in classes)
        / len(classes) * 100.0
        for field in ("prefetching", "resource_availability", "overhead")
    ]
    rows.append(averages)

    def _render(result: ExhibitResult) -> str:
        return ascii_table(
            ("Workloads", "Prefetching %", "Resource avail. %",
             "Overhead %"),
            result.data["rows"],
            title="Sources of improvement of RaT (percent)")

    return ExhibitResult(
        exhibit="Figure 4",
        title="Sources of improvement of RaT",
        data={"classes": list(classes), "rows": rows,
              "per_class": per_class},
        _renderer=_render,
    )
