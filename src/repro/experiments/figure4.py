"""Figure 4: sources of RaT's improvement (§6.1).

Three experiments isolate where the benefit comes from:

* **Prefetching** — RaT vs RaT with all runahead L2/memory traffic
  disabled (``rat_prefetch=False``; suppressed loads are barred from
  re-triggering runahead after recovery, keeping runahead periods
  comparable, exactly as the paper describes).
* **Resource availability** — RaT that stops fetching at runahead entry
  (``rat_stop_fetch_in_runahead=True``) vs ICOUNT: the thread releases its
  resources early but does no speculative work, isolating the
  early-release benefit.
* **Overhead** — degradation of the *co-running* threads when a runahead
  thread performs only useless work (RaT without prefetching), measured
  against the same threads running beside a STALL-parked neighbour (the
  least-disturbing baseline).  The paper reports this worst-case
  disturbance at about 4%.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..config import SMTConfig
from ..sim.engine import RunIndex, SweepCell
from ..sim.runner import RunSpec
from .common import (Exhibit, ExhibitContext, ExhibitResult, ExhibitSection,
                     class_workloads)
from .registry import exhibit


def _class_throughput(runs: RunIndex, klass: str, policy: str,
                      config: SMTConfig, spec: RunSpec,
                      workloads_per_class: Optional[int]) -> float:
    workloads = class_workloads(klass, workloads_per_class)
    values = [runs[SweepCell.make(w, policy, config, spec)].throughput
              for w in workloads]
    return sum(values) / len(values)


def _overhead(runs: RunIndex, klass: str, rat_noprefetch: SMTConfig,
              config: SMTConfig, spec: RunSpec,
              workloads_per_class: Optional[int]) -> float:
    """Mean co-runner degradation under useless runahead vs STALL."""
    workloads = class_workloads(klass, workloads_per_class)
    degradations: List[float] = []
    for workload in workloads:
        noisy = runs[SweepCell.make(workload, "rat", rat_noprefetch, spec)]
        quiet = runs[SweepCell.make(workload, "stall", config, spec)]
        episodes = [stats.runahead_episodes
                    for stats in noisy.result.thread_stats]
        for tid in range(workload.num_threads):
            if episodes[tid]:
                continue  # the runahead thread itself is not a co-runner
            reference = quiet.ipcs[tid]
            if reference <= 0:
                continue
            degradations.append(1.0 - noisy.ipcs[tid] / reference)
    if not degradations:
        return 0.0
    return sum(degradations) / len(degradations)


@dataclasses.dataclass
class _Sources:
    prefetching: float
    resource_availability: float
    overhead: float


def _variants(config: SMTConfig) -> Tuple[Tuple[str, SMTConfig], ...]:
    no_prefetch = dataclasses.replace(config, policy="rat",
                                      rat_prefetch=False)
    stop_fetch = dataclasses.replace(config, policy="rat",
                                     rat_stop_fetch_in_runahead=True)
    return (("rat", config), ("rat", no_prefetch), ("rat", stop_fetch),
            ("icount", config), ("stall", config))


@exhibit("figure4", title="Sources of improvement of RaT")
class Figure4(Exhibit):

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        return [SweepCell.make(workload, policy, cfg, ctx.spec)
                for klass in ctx.classes
                for workload in class_workloads(klass,
                                                ctx.workloads_per_class)
                for policy, cfg in _variants(ctx.config)]

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        config, spec, classes = ctx.config, ctx.spec, ctx.classes
        wpc = ctx.workloads_per_class
        (_, no_prefetch), (_, stop_fetch) = _variants(config)[1:3]

        per_class: Dict[str, _Sources] = {}
        for klass in classes:
            rat = _class_throughput(runs, klass, "rat", config, spec, wpc)
            rat_nopf = _class_throughput(runs, klass, "rat", no_prefetch,
                                         spec, wpc)
            rat_stop = _class_throughput(runs, klass, "rat", stop_fetch,
                                         spec, wpc)
            icount = _class_throughput(runs, klass, "icount", config,
                                       spec, wpc)
            per_class[klass] = _Sources(
                prefetching=(rat / rat_nopf - 1.0) if rat_nopf else 0.0,
                resource_availability=(rat_stop / icount - 1.0) if icount
                else 0.0,
                overhead=_overhead(runs, klass, no_prefetch, config, spec,
                                   wpc),
            )

        rows = [
            [klass,
             per_class[klass].prefetching * 100.0,
             per_class[klass].resource_availability * 100.0,
             per_class[klass].overhead * 100.0]
            for klass in classes
        ]
        averages = ["average"] + [
            sum(getattr(per_class[klass], field) for klass in classes)
            / len(classes) * 100.0
            for field in ("prefetching", "resource_availability",
                          "overhead")
        ]
        rows.append(averages)

        payload = {
            "classes": list(classes),
            "rows": rows,
            "per_class": {klass: dataclasses.asdict(per_class[klass])
                          for klass in classes},
        }
        return ExhibitResult(
            exhibit="Figure 4",
            title=self.title,
            sections=[ExhibitSection(
                ("Workloads", "Prefetching %", "Resource avail. %",
                 "Overhead %"), rows,
                title="Sources of improvement of RaT (percent)")],
            data={"classes": list(classes), "rows": rows,
                  "per_class": per_class},
            payload=payload,
        )


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("figure4").run(config, spec, classes,
                                      workloads_per_class, engine)
