"""Figure 5: physical registers allocated per cycle, normal vs runahead.

For RaT runs, the pipeline samples each thread's allocated register count
every cycle, split by the thread's mode.  The paper's point: runahead-mode
threads hold far fewer registers (memory-bound workloads use less than
half), which is what later justifies shrinking the register file
(Figure 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import SMTConfig
from ..sim.engine import RunIndex, SweepCell
from ..sim.runner import RunSpec
from .common import (Exhibit, ExhibitContext, ExhibitResult, ExhibitSection,
                     class_workloads)
from .registry import exhibit


def _class_register_usage(runs: RunIndex, klass: str, config: SMTConfig,
                          spec: RunSpec,
                          workloads_per_class: Optional[int]
                          ) -> Tuple[float, float]:
    """(avg regs/cycle in normal mode, avg in runahead mode) per thread."""
    workloads = class_workloads(klass, workloads_per_class)
    normal_values = []
    runahead_values = []
    for workload in workloads:
        run = runs[SweepCell.make(workload, "rat", config, spec)]
        for stats in run.result.thread_stats:
            # Compare the two modes of the *same* threads: only programs
            # that actually run ahead contribute, otherwise ILP co-runners
            # (which never enter runahead) would dilute the normal-mode bar.
            if not stats.runahead_reg_samples:
                continue
            if stats.normal_reg_samples:
                normal_values.append(stats.avg_regs_normal())
            runahead_values.append(stats.avg_regs_runahead())
    normal = sum(normal_values) / len(normal_values) if normal_values else 0.0
    runahead = (sum(runahead_values) / len(runahead_values)
                if runahead_values else 0.0)
    return normal, runahead


@exhibit("figure5", title="Average physical registers used per cycle, "
                          "normal vs runahead mode")
class Figure5(Exhibit):

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        return [SweepCell.make(workload, "rat", ctx.config, ctx.spec)
                for klass in ctx.classes
                for workload in class_workloads(klass,
                                                ctx.workloads_per_class)]

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        classes = ctx.classes
        usage: Dict[str, Tuple[float, float]] = {
            klass: _class_register_usage(runs, klass, ctx.config, ctx.spec,
                                         ctx.workloads_per_class)
            for klass in classes
        }
        rows = []
        for klass in classes:
            normal, runahead = usage[klass]
            ratio = runahead / normal if normal else 0.0
            rows.append([klass, normal, runahead, ratio])

        payload = {
            "classes": list(classes),
            "rows": rows,
            "usage": {klass: list(usage[klass]) for klass in classes},
        }
        return ExhibitResult(
            exhibit="Figure 5",
            title=self.title,
            sections=[ExhibitSection(
                ("Workloads", "Normal mode", "Runahead mode", "RA/normal"),
                rows,
                title="Average physical registers allocated per cycle "
                      "(per thread)")],
            data={"classes": list(classes), "rows": rows, "usage": usage},
            payload=payload,
        )


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("figure5").run(config, spec, classes,
                                      workloads_per_class, engine)
