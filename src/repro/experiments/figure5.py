"""Figure 5: physical registers allocated per cycle, normal vs runahead.

For RaT runs, the pipeline samples each thread's allocated register count
every cycle, split by the thread's mode.  The paper's point: runahead-mode
threads hold far fewer registers (memory-bound workloads use less than
half), which is what later justifies shrinking the register file
(Figure 6).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..config import SMTConfig
from ..sim.engine import SweepCell
from ..sim.runner import RunSpec
from .common import ExhibitResult, class_workloads, resolve, resolve_engine
from .report import ascii_table


def _class_register_usage(engine, klass: str, config: SMTConfig,
                          spec: RunSpec,
                          workloads_per_class: Optional[int]
                          ) -> Tuple[float, float]:
    """(avg regs/cycle in normal mode, avg in runahead mode) per thread."""
    workloads = class_workloads(klass, workloads_per_class)
    normal_values = []
    runahead_values = []
    for workload in workloads:
        run = engine.run_workload(workload, "rat", config, spec)
        for stats in run.result.thread_stats:
            # Compare the two modes of the *same* threads: only programs
            # that actually run ahead contribute, otherwise ILP co-runners
            # (which never enter runahead) would dilute the normal-mode bar.
            if not stats.runahead_reg_samples:
                continue
            if stats.normal_reg_samples:
                normal_values.append(stats.avg_regs_normal())
            runahead_values.append(stats.avg_regs_runahead())
    normal = sum(normal_values) / len(normal_values) if normal_values else 0.0
    runahead = (sum(runahead_values) / len(runahead_values)
                if runahead_values else 0.0)
    return normal, runahead


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None,
        classes: Optional[Sequence[str]] = None,
        workloads_per_class: Optional[int] = None,
        engine=None) -> ExhibitResult:
    config, spec, classes = resolve(config, spec, classes)
    engine = resolve_engine(engine)
    engine.run_cells([
        SweepCell.make(workload, "rat", config, spec)
        for klass in classes
        for workload in class_workloads(klass, workloads_per_class)])
    usage: Dict[str, Tuple[float, float]] = {
        klass: _class_register_usage(engine, klass, config, spec,
                                     workloads_per_class)
        for klass in classes
    }
    rows = []
    for klass in classes:
        normal, runahead = usage[klass]
        ratio = runahead / normal if normal else 0.0
        rows.append([klass, normal, runahead, ratio])

    def _render(result: ExhibitResult) -> str:
        return ascii_table(
            ("Workloads", "Normal mode", "Runahead mode", "RA/normal"),
            result.data["rows"],
            title="Average physical registers allocated per cycle "
                  "(per thread)")

    return ExhibitResult(
        exhibit="Figure 5",
        title="Average physical registers used per cycle, "
              "normal vs runahead mode",
        data={"classes": list(classes), "rows": rows, "usage": usage},
        _renderer=_render,
    )
