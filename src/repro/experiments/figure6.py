"""Figure 6: throughput vs register-file size, FLUSH vs RaT (§6.2).

Sweeps the physical register file from 64 to 320 entries for both FLUSH
(the strongest static policy that also releases registers) and RaT, for
2-thread (a) and 4-thread (b) workload classes.  The paper's findings to
reproduce: RaT degrades far more gracefully as registers shrink, and RaT
with a reduced file matches or beats FLUSH with the full 320 registers.

Model caveat (documented in EXPERIMENTS.md): n threads reserve 32n
physical registers for architectural state and need a margin to rename at
all, so requested sizes below ``min_registers_for(n)`` are clamped — the
4-thread 64- and 128-register points are measured at 144.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import SMTConfig, min_registers_for
from ..sim.engine import RunIndex, SweepCell
from ..sim.runner import RunSpec
from .common import (Exhibit, ExhibitContext, ExhibitResult, ExhibitSection,
                     class_workloads)
from .registry import exhibit

#: The register-file sizes on the paper's x-axis.
REGISTER_SIZES = (64, 128, 192, 256, 320)

#: Policies compared in the sweep.
SWEEP_POLICIES = ("flush", "rat")


def effective_size(requested: int, num_threads: int) -> int:
    """Clamp a requested register-file size to a runnable one."""
    return max(requested, min_registers_for(num_threads))


def _sized_cell(workload, policy: str, size: int, config: SMTConfig,
                spec: RunSpec) -> SweepCell:
    actual = effective_size(size, workload.num_threads)
    sized = config.with_registers(actual)
    return SweepCell.make(workload, policy, sized, spec)


def _class_series(runs: RunIndex, klass: str, policy: str,
                  config: SMTConfig, spec: RunSpec,
                  workloads_per_class: Optional[int]) -> List[float]:
    workloads = class_workloads(klass, workloads_per_class)
    series = []
    for size in REGISTER_SIZES:
        sized = [runs[_sized_cell(workload, policy, size, config, spec)]
                 for workload in workloads]
        series.append(sum(run.throughput for run in sized) / len(sized))
    return series


@exhibit("figure6", title="Throughput vs register file size "
                          "(FLUSH vs RaT)")
class Figure6(Exhibit):

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        return [_sized_cell(workload, policy, size, ctx.config, ctx.spec)
                for klass in ctx.classes
                for workload in class_workloads(klass,
                                                ctx.workloads_per_class)
                for policy in SWEEP_POLICIES
                for size in REGISTER_SIZES]

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        classes = ctx.classes
        series: Dict[Tuple[str, str], List[float]] = {}
        for klass in classes:
            for policy in SWEEP_POLICIES:
                series[(klass, policy)] = _class_series(
                    runs, klass, policy, ctx.config, ctx.spec,
                    ctx.workloads_per_class)

        rows = []
        for klass in classes:
            for policy in SWEEP_POLICIES:
                rows.append([f"{klass}/{policy}"]
                            + series[(klass, policy)])

        payload = {
            "classes": list(classes),
            "sizes": list(REGISTER_SIZES),
            "rows": rows,
            "series": {f"{klass}/{policy}": values
                       for (klass, policy), values in series.items()},
        }
        note = ("Note: sizes below 32*threads+16 are clamped "
                "(4-thread: 64,128 -> 144; 2-thread: 64 -> 80).")
        return ExhibitResult(
            exhibit="Figure 6",
            title=self.title,
            sections=[ExhibitSection(
                ("Class/Policy",) + tuple(str(size)
                                          for size in REGISTER_SIZES),
                rows,
                title="Throughput (IPC) vs register file size",
                note=note)],
            data={"classes": list(classes), "sizes": list(REGISTER_SIZES),
                  "rows": rows, "series": series},
            payload=payload,
        )


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("figure6").run(config, spec, classes,
                                      workloads_per_class, engine)
