"""Figure 6: throughput vs register-file size, FLUSH vs RaT (§6.2).

Sweeps the physical register file from 64 to 320 entries for both FLUSH
(the strongest static policy that also releases registers) and RaT, for
2-thread (a) and 4-thread (b) workload classes.  The paper's findings to
reproduce: RaT degrades far more gracefully as registers shrink, and RaT
with a reduced file matches or beats FLUSH with the full 320 registers.

Model caveat (documented in EXPERIMENTS.md): n threads reserve 32n
physical registers for architectural state and need a margin to rename at
all, so requested sizes below ``min_registers_for(n)`` are clamped — the
4-thread 64- and 128-register points are measured at 144.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SMTConfig, min_registers_for
from ..sim.engine import SweepCell
from ..sim.runner import RunSpec
from .common import ExhibitResult, class_workloads, resolve, resolve_engine
from .report import ascii_table

#: The register-file sizes on the paper's x-axis.
REGISTER_SIZES = (64, 128, 192, 256, 320)

#: Policies compared in the sweep.
SWEEP_POLICIES = ("flush", "rat")


def effective_size(requested: int, num_threads: int) -> int:
    """Clamp a requested register-file size to a runnable one."""
    return max(requested, min_registers_for(num_threads))


def _sized_cell(workload, policy: str, size: int, config: SMTConfig,
                spec: RunSpec) -> SweepCell:
    actual = effective_size(size, workload.num_threads)
    sized = config.with_registers(actual)
    return SweepCell.make(workload, policy, sized, spec)


def _class_series(engine, klass: str, policy: str, config: SMTConfig,
                  spec: RunSpec,
                  workloads_per_class: Optional[int]) -> List[float]:
    workloads = class_workloads(klass, workloads_per_class)
    series = []
    for size in REGISTER_SIZES:
        runs = engine.run_cells(
            [_sized_cell(workload, policy, size, config, spec)
             for workload in workloads],
            progress=False)
        series.append(sum(run.throughput for run in runs) / len(runs))
    return series


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None,
        classes: Optional[Sequence[str]] = None,
        workloads_per_class: Optional[int] = None,
        engine=None) -> ExhibitResult:
    config, spec, classes = resolve(config, spec, classes)
    engine = resolve_engine(engine)
    # Whole register-file sweep as one batch for the parallel backend.
    engine.run_cells([
        _sized_cell(workload, policy, size, config, spec)
        for klass in classes
        for workload in class_workloads(klass, workloads_per_class)
        for policy in SWEEP_POLICIES
        for size in REGISTER_SIZES])
    series: Dict[Tuple[str, str], List[float]] = {}
    for klass in classes:
        for policy in SWEEP_POLICIES:
            series[(klass, policy)] = _class_series(
                engine, klass, policy, config, spec, workloads_per_class)

    rows = []
    for klass in classes:
        for policy in SWEEP_POLICIES:
            rows.append([f"{klass}/{policy}"]
                        + series[(klass, policy)])

    def _render(result: ExhibitResult) -> str:
        headers = ("Class/Policy",) + tuple(
            str(size) for size in REGISTER_SIZES)
        note = ("Note: sizes below 32*threads+16 are clamped "
                "(4-thread: 64,128 -> 144; 2-thread: 64 -> 80).")
        return ascii_table(headers, result.data["rows"],
                           title="Throughput (IPC) vs register file size"
                           ) + "\n" + note

    return ExhibitResult(
        exhibit="Figure 6",
        title="Throughput vs register file size (FLUSH vs RaT)",
        data={"classes": list(classes), "sizes": list(REGISTER_SIZES),
              "rows": rows, "series": series},
        _renderer=_render,
    )
