"""Exhibit name resolution (mirrors ``policies/registry.py``).

Exhibit classes register themselves with the :func:`exhibit` decorator::

    @exhibit("figure1", title="Throughput and fairness ...")
    class Figure1(Exhibit):
        def plan(self, ctx): ...
        def assemble(self, ctx, runs): ...

The registry maps CLI names to ready-to-use exhibit *instances*; the
:class:`~.common.Campaign` orchestrator and the CLI resolve through it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type

from ..errors import UnknownExhibitError

_REGISTRY: Dict[str, "Exhibit"] = {}  # type: ignore[name-defined]  # noqa: F821


def exhibit(name: str, title: str = "",
            version: Optional[int] = None) -> Callable[[Type], Type]:
    """Class decorator registering an exhibit instance under ``name``.

    ``version`` (default: the class attribute, 1) feeds the exhibit's
    render-cache key — bump it when the exhibit's assembled output
    changes so stale cached renderings of *this* exhibit miss; see
    ``Exhibit.version``.
    """
    def _register(cls: Type) -> Type:
        cls.name = name
        if title:
            cls.title = title
        if version is not None:
            cls.version = version
        _REGISTRY[name] = cls()
        return cls
    return _register


def exhibit_names() -> Tuple[str, ...]:
    """All registered exhibit names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_exhibit(name: str):
    """Look up a registered exhibit instance by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExhibitError(name) from None


def all_exhibits() -> Dict[str, "Exhibit"]:  # type: ignore[name-defined]  # noqa: F821
    """Snapshot of the registry (name -> exhibit instance)."""
    return dict(_REGISTRY)
