"""Plain-text rendering of experiment results (tables and bar charts)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def manifest_summary(manifest) -> str:
    """Human-readable digest of a :class:`CampaignManifest`.

    ``repro plan`` prints this to stderr beside the JSON document: one
    row per exhibit (planned cells, estimated share of the campaign's
    cost, render-key prefix) plus campaign totals and, when the manifest
    is a shard, the slice it owns.
    """
    key_cost = {entry.key: entry.cost[0] for entry in manifest.entries}
    total_cost = sum(key_cost.values()) or 1
    rows = []
    for plan in manifest.exhibits:
        cost = sum(key_cost[key] for key in plan.cell_keys
                   if key in key_cost)
        rows.append([plan.name, len(plan.cell_keys),
                     f"{100.0 * cost / total_cost:.0f}%",
                     plan.render_key[:12]])
    table = ascii_table(("Exhibit", "Cells", "Cost share", "Render key"),
                        rows)
    shard = f", shard {manifest.shard}" if manifest.shard else ""
    header = (f"campaign manifest: {len(manifest)} unique cells, "
              f"{len(manifest.exhibits)} exhibits{shard} "
              f"(salt {manifest.salt})")
    return f"{header}\n{table}"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str = "") -> str:
    """Fixed-width table; floats are rendered with 3 decimals."""
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    formatted = [[_format(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[column])
                            for column, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(cell.rjust(widths[column]) if column else
                               cell.ljust(widths[column])
                               for column, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(series: Dict[str, Dict[str, float]],
              title: str = "", width: int = 40,
              value_format: str = "{:.3f}",
              max_value: Optional[float] = None) -> str:
    """Horizontal bar chart: ``series[group][bar] = value``.

    Groups render as blocks of labelled bars, the way the paper's grouped
    bar figures read.
    """
    values = [value for bars in series.values() for value in bars.values()]
    if not values:
        return title
    scale = max_value if max_value is not None else max(values)
    scale = scale if scale > 0 else 1.0
    label_width = max((len(bar) for bars in series.values()
                       for bar in bars), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for group, bars in series.items():
        lines.append(f"{group}:")
        for bar_label, value in bars.items():
            filled = int(round(width * min(value, scale) / scale))
            bar = "#" * filled
            lines.append(f"  {bar_label.ljust(label_width)} "
                         f"{value_format.format(value).rjust(7)} |{bar}")
    return "\n".join(lines)
