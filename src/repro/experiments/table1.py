"""Table 1: the simulated SMT processor baseline configuration."""

from __future__ import annotations

from typing import List

from ..sim.engine import RunIndex, SweepCell
from .common import Exhibit, ExhibitContext, ExhibitResult, ExhibitSection
from .registry import exhibit


@exhibit("table1", title="SMT processor baseline configuration")
class Table1(Exhibit):
    """Renders the active configuration; needs no simulation at all."""

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        return []

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        rows = [list(row) for row in ctx.config.table1_rows()]
        return ExhibitResult(
            exhibit="Table 1",
            title=self.title,
            sections=[ExhibitSection(("Parameter", "Value"), rows)],
            data={"rows": rows, "config": ctx.config},
            payload={"rows": rows, "config": ctx.config.to_dict()},
        )


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None, **_ignored) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("table1").run(config, spec, classes,
                                     workloads_per_class, engine)
