"""Table 1: the simulated SMT processor baseline configuration."""

from __future__ import annotations

from typing import Optional

from ..config import SMTConfig, baseline
from .common import ExhibitResult
from .report import ascii_table


def run(config: Optional[SMTConfig] = None, engine=None,
        **_ignored) -> ExhibitResult:
    """Render the active configuration as the paper's Table 1.

    ``engine`` is accepted for driver-API uniformity; rendering the
    configuration needs no simulation.
    """
    config = config or baseline()
    rows = list(config.table1_rows())

    def _render(result: ExhibitResult) -> str:
        return ascii_table(("Parameter", "Value"), result.data["rows"])

    return ExhibitResult(
        exhibit="Table 1",
        title="SMT processor baseline configuration",
        data={"rows": rows, "config": config},
        _renderer=_render,
    )
