"""Table 2: the 54 multiprogrammed workloads, with measured classification.

Besides listing the Table 2 rows, the driver verifies the premise of the
classification: every benchmark's *measured* single-thread L2 miss rate
must separate the MEM group from the ILP group, as the paper's
characterization methodology requires (§4).
"""

from __future__ import annotations

from typing import Dict, List

from ..config import SMTConfig
from ..sim.engine import SINGLE_CLASS, RunIndex, SweepCell
from ..sim.runner import RunSpec, WorkloadRun
from ..trace.profiles import benchmark_names, get_profile
from ..trace.workloads import WORKLOAD_CLASSES, Workload, get_workloads
from .common import (Exhibit, ExhibitContext, ExhibitResult, ExhibitSection,
                     resolve_engine)
from .registry import exhibit


def _single_cell(benchmark: str, config: SMTConfig,
                 spec: RunSpec) -> SweepCell:
    return SweepCell.make(Workload(SINGLE_CLASS, (benchmark,)),
                          "icount", config, spec)


def _mpki(run: WorkloadRun) -> float:
    misses = run.result.l2_misses[0]
    committed = run.result.thread_stats[0].committed
    return 1000.0 * misses / max(1, committed)


def measure_l2_mpki(benchmark: str, config: SMTConfig,
                    spec: RunSpec, engine=None) -> float:
    """Single-thread L2 misses per kilo-instruction for one benchmark."""
    engine = resolve_engine(engine)
    return _mpki(engine.run_workload(Workload(SINGLE_CLASS, (benchmark,)),
                                     "icount", config, spec))


@exhibit("table2", title="SMT simulation workload classification")
class Table2(Exhibit):
    """Lists all 54 workloads; measures every benchmark's L2 MPKI.

    The class/workloads-per-class context knobs are ignored on purpose:
    the classification premise only holds over the full benchmark set.
    """

    def plan(self, ctx: ExhibitContext) -> List[SweepCell]:
        return [_single_cell(name, ctx.config, ctx.spec)
                for name in benchmark_names()]

    def assemble(self, ctx: ExhibitContext, runs: RunIndex) -> ExhibitResult:
        mpki: Dict[str, float] = {
            name: _mpki(runs[_single_cell(name, ctx.config, ctx.spec)])
            for name in benchmark_names()
        }
        workload_rows = []
        for klass in WORKLOAD_CLASSES:
            for workload in get_workloads(klass):
                workload_rows.append((klass, workload.name))
        class_rows = [
            (name, get_profile(name).spec_class, mpki[name])
            for name in benchmark_names()
        ]

        payload = {
            "workloads": [list(row) for row in workload_rows],
            "classification": [list(row) for row in class_rows],
            "mpki": mpki,
        }
        return ExhibitResult(
            exhibit="Table 2",
            title=self.title,
            sections=[
                ExhibitSection(("Class", "Workload"), workload_rows,
                               title="Workloads (Table 2)"),
                ExhibitSection(("Benchmark", "Group", "measured L2 MPKI"),
                               class_rows,
                               title="Benchmark classification by "
                                     "measured L2 miss rate"),
            ],
            data={"workloads": workload_rows,
                  "classification": class_rows, "mpki": mpki},
            payload=payload,
        )


def run(config=None, spec=None, classes=None, workloads_per_class=None,
        engine=None, **_ignored) -> ExhibitResult:
    """Imperative one-shot driver (a single-exhibit campaign)."""
    from .registry import get_exhibit
    return get_exhibit("table2").run(config, spec, classes,
                                     workloads_per_class, engine)
