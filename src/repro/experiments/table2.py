"""Table 2: the 54 multiprogrammed workloads, with measured classification.

Besides listing the Table 2 rows, the driver verifies the premise of the
classification: every benchmark's *measured* single-thread L2 miss rate
must separate the MEM group from the ILP group, as the paper's
characterization methodology requires (§4).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SMTConfig
from ..core.processor import SMTProcessor
from ..sim.runner import RunSpec
from ..trace.generator import generate_trace
from ..trace.profiles import benchmark_names, get_profile
from ..trace.workloads import WORKLOAD_CLASSES, get_workloads
from .common import ExhibitResult, resolve
from .report import ascii_table


def measure_l2_mpki(benchmark: str, config: SMTConfig,
                    spec: RunSpec) -> float:
    """Single-thread L2 misses per kilo-instruction for one benchmark."""
    trace = generate_trace(benchmark, spec.trace_len, spec.seed)
    processor = SMTProcessor(config.with_policy("icount"), [trace])
    result = processor.run(min_passes=spec.min_passes,
                           max_cycles=spec.max_cycles)
    misses = processor.pipeline.mem.stats[0].l2_misses
    committed = result.thread_stats[0].committed
    return 1000.0 * misses / max(1, committed)


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None, **_ignored) -> ExhibitResult:
    config, spec, _classes = resolve(config, spec, None)
    mpki: Dict[str, float] = {
        name: measure_l2_mpki(name, config, spec)
        for name in benchmark_names()
    }
    workload_rows = []
    for klass in WORKLOAD_CLASSES:
        for workload in get_workloads(klass):
            workload_rows.append((klass, workload.name))
    class_rows = [
        (name, get_profile(name).spec_class, mpki[name])
        for name in benchmark_names()
    ]

    def _render(result: ExhibitResult) -> str:
        parts = [ascii_table(("Class", "Workload"),
                             result.data["workloads"],
                             title="Workloads (Table 2)")]
        parts.append("")
        parts.append(ascii_table(
            ("Benchmark", "Group", "measured L2 MPKI"),
            result.data["classification"],
            title="Benchmark classification by measured L2 miss rate"))
        return "\n".join(parts)

    return ExhibitResult(
        exhibit="Table 2",
        title="SMT simulation workload classification",
        data={"workloads": workload_rows, "classification": class_rows,
              "mpki": mpki},
        _renderer=_render,
    )
