"""Table 2: the 54 multiprogrammed workloads, with measured classification.

Besides listing the Table 2 rows, the driver verifies the premise of the
classification: every benchmark's *measured* single-thread L2 miss rate
must separate the MEM group from the ILP group, as the paper's
characterization methodology requires (§4).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SMTConfig
from ..sim.engine import SINGLE_CLASS, SweepCell
from ..sim.runner import RunSpec
from ..trace.profiles import benchmark_names, get_profile
from ..trace.workloads import WORKLOAD_CLASSES, Workload, get_workloads
from .common import ExhibitResult, resolve, resolve_engine
from .report import ascii_table


def _single_cell(benchmark: str, config: SMTConfig,
                 spec: RunSpec) -> SweepCell:
    return SweepCell.make(Workload(SINGLE_CLASS, (benchmark,)),
                          "icount", config, spec)


def measure_l2_mpki(benchmark: str, config: SMTConfig,
                    spec: RunSpec, engine=None) -> float:
    """Single-thread L2 misses per kilo-instruction for one benchmark."""
    engine = resolve_engine(engine)
    run = engine.run_workload(Workload(SINGLE_CLASS, (benchmark,)),
                              "icount", config, spec)
    misses = run.result.l2_misses[0]
    committed = run.result.thread_stats[0].committed
    return 1000.0 * misses / max(1, committed)


def run(config: Optional[SMTConfig] = None,
        spec: Optional[RunSpec] = None, engine=None,
        **_ignored) -> ExhibitResult:
    config, spec, _classes = resolve(config, spec, None)
    engine = resolve_engine(engine)
    engine.run_cells([_single_cell(name, config, spec)
                      for name in benchmark_names()])
    mpki: Dict[str, float] = {
        name: measure_l2_mpki(name, config, spec, engine=engine)
        for name in benchmark_names()
    }
    workload_rows = []
    for klass in WORKLOAD_CLASSES:
        for workload in get_workloads(klass):
            workload_rows.append((klass, workload.name))
    class_rows = [
        (name, get_profile(name).spec_class, mpki[name])
        for name in benchmark_names()
    ]

    def _render(result: ExhibitResult) -> str:
        parts = [ascii_table(("Class", "Workload"),
                             result.data["workloads"],
                             title="Workloads (Table 2)")]
        parts.append("")
        parts.append(ascii_table(
            ("Benchmark", "Group", "measured L2 MPKI"),
            result.data["classification"],
            title="Benchmark classification by measured L2 miss rate"))
        return "\n".join(parts)

    return ExhibitResult(
        exhibit="Table 2",
        title="SMT simulation workload classification",
        data={"workloads": workload_rows, "classification": class_rows,
              "mpki": mpki},
        _renderer=_render,
    )
