"""Alpha-like ISA abstractions used by the trace generator and the core.

The simulator is trace-driven: values are never computed, so the ISA layer
only needs *structural* information about instructions — operation class,
register operands, memory behaviour, and execution latency.

Register namespace
------------------
Architectural registers are numbered ``0..63``: integer registers occupy
``0..31`` and floating-point registers occupy ``32..63`` (mirroring the
Alpha's 32+32 split used in the paper's register-file discussion, §6.2).
``NO_REG`` (-1) marks an absent operand.
"""

from __future__ import annotations

import enum

NUM_INT_ARCH_REGS = 32
NUM_FP_ARCH_REGS = 32
NUM_ARCH_REGS = NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS

#: Sentinel for "no register operand".
NO_REG = -1

#: Bytes per instruction (Alpha fixed 4-byte encoding); used to lay out
#: synthetic code so that the I-cache sees realistic spatial locality.
INSTRUCTION_BYTES = 4


class RegClass(enum.IntEnum):
    """Which physical register file a register name lives in."""

    INT = 0
    FP = 1


def reg_class(arch_reg: int) -> RegClass:
    """Return the register class of an architectural register number."""
    return RegClass.INT if arch_reg < NUM_INT_ARCH_REGS else RegClass.FP


class OpClass(enum.IntEnum):
    """Operation classes, each mapped to an issue queue and a FU pool.

    The split mirrors the paper's Table 1 (INT/FP/LS issue queues and
    INT/FP/LdSt functional units).
    """

    IALU = 0     # integer add/sub/logic/shift
    IMUL = 1     # integer multiply
    FADD = 2     # FP add/sub/compare/convert
    FMUL = 3     # FP multiply
    FDIV = 4     # FP divide / sqrt (long latency, unpipelined)
    LOAD = 5     # integer load
    STORE = 6    # integer store
    FLOAD = 7    # FP load (address computed in integer pipeline)
    FSTORE = 8   # FP store
    BRANCH = 9   # conditional/unconditional control flow
    NOP = 10     # no-op / ignorable system instruction
    SYNC = 11    # synchronization op (acquire/release); ignored in runahead


#: Execution latency in cycles for each op class, once issued to a FU.
#: Loads/stores add memory latency on top (the 3-cycle D-cache latency of
#: Table 1 is modelled in the memory hierarchy, not here).
OP_LATENCY = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.FADD: 2,
    OpClass.FMUL: 4,
    OpClass.FDIV: 12,
    OpClass.LOAD: 0,
    OpClass.STORE: 0,
    OpClass.FLOAD: 0,
    OpClass.FSTORE: 0,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
    OpClass.SYNC: 1,
}

#: Op classes that access data memory.
MEMORY_OPS = frozenset(
    (OpClass.LOAD, OpClass.STORE, OpClass.FLOAD, OpClass.FSTORE)
)

#: Op classes that read data memory.
LOAD_OPS = frozenset((OpClass.LOAD, OpClass.FLOAD))

#: Op classes that write data memory.
STORE_OPS = frozenset((OpClass.STORE, OpClass.FSTORE))

#: Op classes that execute in the FP pipeline.  FP loads/stores are *not*
#: included: their effective address is computed in the integer pipeline
#: (paper §3.3, "Floating-point resources").
FP_OPS = frozenset((OpClass.FADD, OpClass.FMUL, OpClass.FDIV))

#: Op classes that may never be folded into a speculated macro-step run
#: (see :meth:`repro.core.pipeline.SMTPipeline` macro-step speculation).
#: SYNC marks a synchronization boundary *and* has mode-dependent decode
#: behaviour (dropped outright in runahead); macro runs break before it
#: so the per-stage path keeps exclusive ownership of its semantics.
SPECULATION_UNSAFE_OPS = frozenset((OpClass.SYNC,))


class IssueQueueKind(enum.IntEnum):
    """The three issue queues of Table 1."""

    INT = 0
    FP = 1
    LS = 2


#: Which issue queue each op class dispatches into.
OP_QUEUE = {
    OpClass.IALU: IssueQueueKind.INT,
    OpClass.IMUL: IssueQueueKind.INT,
    OpClass.FADD: IssueQueueKind.FP,
    OpClass.FMUL: IssueQueueKind.FP,
    OpClass.FDIV: IssueQueueKind.FP,
    OpClass.LOAD: IssueQueueKind.LS,
    OpClass.STORE: IssueQueueKind.LS,
    OpClass.FLOAD: IssueQueueKind.LS,
    OpClass.FSTORE: IssueQueueKind.LS,
    OpClass.BRANCH: IssueQueueKind.INT,
    OpClass.NOP: IssueQueueKind.INT,
    OpClass.SYNC: IssueQueueKind.INT,
}


class FUKind(enum.IntEnum):
    """Functional unit pools of Table 1 (6 INT / 3 FP / 4 LdSt)."""

    INT = 0
    FP = 1
    LDST = 2


#: Which FU pool executes each op class.
OP_FU = {
    OpClass.IALU: FUKind.INT,
    OpClass.IMUL: FUKind.INT,
    OpClass.FADD: FUKind.FP,
    OpClass.FMUL: FUKind.FP,
    OpClass.FDIV: FUKind.FP,
    OpClass.LOAD: FUKind.LDST,
    OpClass.STORE: FUKind.LDST,
    OpClass.FLOAD: FUKind.LDST,
    OpClass.FSTORE: FUKind.LDST,
    OpClass.BRANCH: FUKind.INT,
    OpClass.NOP: FUKind.INT,
    OpClass.SYNC: FUKind.INT,
}


# --- hot-path lookup tables -------------------------------------------------
#
# The pipeline touches these once or more per dynamic instruction.  The
# dict-of-enum tables above are the readable source of truth; the tuples
# below are the same data indexed by the raw integer op code, so the hot
# loops never construct an OpClass (enum __call__ is ~10x a tuple index).

#: OP_LATENCY indexed by ``int(op)``.
OP_LATENCY_BY_CODE = tuple(OP_LATENCY[OpClass(code)]
                           for code in range(len(OpClass)))

#: OP_QUEUE indexed by ``int(op)`` (values are plain ints).
OP_QUEUE_BY_CODE = tuple(int(OP_QUEUE[OpClass(code)])
                         for code in range(len(OpClass)))

#: OP_FU indexed by ``int(op)`` (values are plain ints).
OP_FU_BY_CODE = tuple(int(OP_FU[OpClass(code)])
                      for code in range(len(OpClass)))

#: Per-code membership flags for the frozensets above.
IS_LOAD_BY_CODE = tuple(OpClass(code) in LOAD_OPS
                        for code in range(len(OpClass)))
IS_STORE_BY_CODE = tuple(OpClass(code) in STORE_OPS
                         for code in range(len(OpClass)))
IS_MEM_BY_CODE = tuple(OpClass(code) in MEMORY_OPS
                       for code in range(len(OpClass)))
IS_FP_BY_CODE = tuple(OpClass(code) in FP_OPS
                      for code in range(len(OpClass)))
IS_BRANCH_BY_CODE = tuple(OpClass(code) is OpClass.BRANCH
                          for code in range(len(OpClass)))
IS_SPEC_UNSAFE_BY_CODE = tuple(OpClass(code) in SPECULATION_UNSAFE_OPS
                               for code in range(len(OpClass)))


def batch_decode(op_codes):
    """Pre-decode a run of raw op codes into parallel structural tuples.

    One call per macro-run *recording* replaces per-op table lookups on
    every subsequent *execution* of the run: the macro-step layer calls
    this once when a hot linear run is first seen, bakes the result into
    its plan, and the fused fast path then indexes plain tuples.

    Returns ``(queues, fus, latencies, fp, stores, unsafe)`` — issue-queue
    index, FU-pool index, execution latency, FP-pipeline membership
    (decode-drop candidates in runahead, §3.3), store flags, and the
    speculation-unsafe flag, each indexed by position in ``op_codes``.
    """
    return (
        tuple(OP_QUEUE_BY_CODE[op] for op in op_codes),
        tuple(OP_FU_BY_CODE[op] for op in op_codes),
        tuple(OP_LATENCY_BY_CODE[op] for op in op_codes),
        tuple(IS_FP_BY_CODE[op] for op in op_codes),
        tuple(IS_STORE_BY_CODE[op] for op in op_codes),
        tuple(IS_SPEC_UNSAFE_BY_CODE[op] for op in op_codes),
    )


def is_memory_op(op: OpClass) -> bool:
    """True if ``op`` accesses data memory."""
    return op in MEMORY_OPS


def is_load(op: OpClass) -> bool:
    """True if ``op`` reads data memory."""
    return op in LOAD_OPS


def is_store(op: OpClass) -> bool:
    """True if ``op`` writes data memory."""
    return op in STORE_OPS


def is_fp_op(op: OpClass) -> bool:
    """True if ``op`` executes in the FP pipeline (excludes FP loads/stores)."""
    return op in FP_OPS
