"""Memory-hierarchy substrate: caches, MSHRs, and main memory.

Implements the Table 1 memory subsystem: 64 KB 4-way L1 I/D caches, a
unified 1 MB 8-way L2, 64-byte lines, and a 400-cycle main memory, with
MSHR-based miss merging so that overlapping misses to one line collapse
into a single fill (the memory-level parallelism that Runahead Threads
exploit).
"""

from .cache import Cache
from .mshr import MSHRFile
from .hierarchy import AccessResult, MemoryHierarchy, MemStats

__all__ = ["Cache", "MSHRFile", "AccessResult", "MemoryHierarchy", "MemStats"]
