"""Set-associative cache with true LRU replacement.

The cache stores *line addresses* (byte address // line size).  Values are
never stored — the simulator is trace-driven — so a cache is purely a
presence/recency structure.  Each set is an ordered list of line addresses,
most-recently-used last, which makes LRU update and victim selection O(ways)
for the small associativities of Table 1.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import CacheConfig


class Cache:
    """One cache level (geometry from :class:`~repro.config.CacheConfig`)."""

    __slots__ = ("name", "config", "_sets", "_set_mask", "accesses",
                 "misses", "fills", "evictions")

    def __init__(self, name: str, config: CacheConfig) -> None:
        config.validate(name)
        self.name = name
        self.config = config
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self.accesses = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0

    @property
    def ways(self) -> int:
        return self.config.assoc

    @property
    def latency(self) -> int:
        return self.config.latency

    def line_of(self, byte_addr: int) -> int:
        """Line address containing ``byte_addr``."""
        return byte_addr // self.config.line_bytes

    def lookup(self, line_addr: int, update_lru: bool = True) -> bool:
        """Probe for a line; hit updates recency unless told otherwise.

        The membership test runs before ``index`` so the miss path (the
        common case on the MEM workloads' hot loops) is a single C-level
        scan instead of a raised-and-caught ValueError.
        """
        self.accesses += 1
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr not in cache_set:
            self.misses += 1
            return False
        if update_lru and cache_set[-1] != line_addr:
            cache_set.remove(line_addr)
            cache_set.append(line_addr)
        return True

    def contains(self, line_addr: int) -> bool:
        """Presence check without touching statistics or recency."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def touch(self, line_addr: int) -> bool:
        """Promote a line to most-recently-used without statistics.

        Used by functional warmup.  Returns True if the line was present.
        """
        cache_set = self._sets[line_addr & self._set_mask]
        try:
            position = cache_set.index(line_addr)
        except ValueError:
            return False
        if position != len(cache_set) - 1:
            del cache_set[position]
            cache_set.append(line_addr)
        return True

    def fill(self, line_addr: int) -> Optional[int]:
        """Insert a line; returns the evicted line address, if any."""
        self.fills += 1
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            return None
        victim = None
        if len(cache_set) >= self.ways:
            victim = cache_set.pop(0)
            self.evictions += 1
        cache_set.append(line_addr)
        return victim

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns True if it was present."""
        cache_set = self._sets[line_addr & self._set_mask]
        try:
            cache_set.remove(line_addr)
        except ValueError:
            return False
        return True

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
