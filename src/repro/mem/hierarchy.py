"""The full memory hierarchy: L1 I/D, unified L2, main memory, MSHRs.

Timing model
------------
Latencies are sequential probes, per Table 1: an L1 data hit completes in
3 cycles; an L1 miss that hits L2 in 3+20; an L2 miss in 3+20+400.  Cache
arrays are filled eagerly at miss time, and the MSHR file enforces that any
access to a line whose fill is still in flight completes no earlier than
the fill (see :mod:`repro.mem.mshr`).  Misses to one line therefore merge —
this is what lets runahead prefetches overlap.

Stores are write-allocate and never block retirement (a write buffer is
assumed); they bypass MSHR capacity limits.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

from ..config import SMTConfig
from .cache import Cache
from .mshr import MSHRFile


@dataclasses.dataclass(slots=True)
class AccessResult:
    """Outcome of one memory access.

    A plain (non-frozen) dataclass on purpose: the frozen variant routes
    every field through ``object.__setattr__``, which is measurable at
    one instance per simulated memory access.  Treat instances as
    immutable all the same.
    """

    complete_cycle: int   # cycle at which data is available
    l2_miss: bool         # data is being served by main memory
    line_addr: int
    merged: bool = False  # satisfied by an already-outstanding fill


@dataclasses.dataclass(slots=True)
class MemStats:
    """Per-thread memory statistics."""

    loads: int = 0
    stores: int = 0
    ifetches: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0
    l2_misses: int = 0
    merges: int = 0
    prefetches: int = 0
    useful_prefetches: int = 0

    def l2_mpki(self, instructions: int) -> float:
        """L2 misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.l2_misses / instructions


class MemoryHierarchy:
    """Shared I/D L1s, unified L2 and main memory for all SMT threads."""

    __slots__ = ("config", "icache", "dcache", "l2", "mshr",
                 "memory_latency", "stats", "_prefetched_lines")

    def __init__(self, config: SMTConfig, num_threads: int) -> None:
        self.config = config
        self.icache = Cache("icache", config.icache)
        self.dcache = Cache("dcache", config.dcache)
        self.l2 = Cache("l2", config.l2)
        self.mshr = MSHRFile(config.mshr_entries)
        self.memory_latency = config.memory_latency
        self.stats: List[MemStats] = [MemStats() for _ in range(num_threads)]
        self._prefetched_lines: Set[int] = set()

    # --- data side -------------------------------------------------------------

    def data_access(self, addr: int, is_store: bool, now: int,
                    thread_id: int,
                    speculative: bool = False) -> Optional[AccessResult]:
        """Access data memory.

        Args:
            addr: Byte address (already offset into the thread's segment).
            is_store: Write access (write-allocate, never rejected).
            now: Current cycle.
            thread_id: Accessing thread, for statistics.
            speculative: Runahead prefetch; dropped (returns None) instead
                of retried when the MSHR file is full.

        Returns:
            The access result, or None if the access must be retried
            (demand miss with a full MSHR file) or was dropped (speculative
            miss with a full MSHR file).
        """
        packed = self.data_access_packed(addr, is_store, now, thread_id,
                                         speculative)
        if packed < 0:
            return None
        return AccessResult(packed >> 2, bool(packed & 2),
                            addr // self.dcache.config.line_bytes,
                            merged=bool(packed & 1))

    def data_access_packed(self, addr: int, is_store: bool, now: int,
                           thread_id: int, speculative: bool = False) -> int:
        """Allocation-free :meth:`data_access` for the pipeline hot path.

        Returns ``-1`` for a rejected/dropped access, else
        ``(complete_cycle << 2) | (l2_miss << 1) | merged`` — the issue
        stage performs one of these per load/store and only consumes the
        completion cycle and the L2-miss bit, so the boxed
        :class:`AccessResult` is reserved for the friendly wrapper.
        """
        stats = self.stats[thread_id]
        if speculative:
            stats.prefetches += 1
        elif is_store:
            stats.stores += 1
        else:
            stats.loads += 1

        dcache = self.dcache
        mshr = self.mshr
        line = addr // dcache.config.line_bytes   # inlined line_of
        # Inlined MSHRFile.pending: the no-entry case is the
        # overwhelmingly common one on this per-access hot path.
        entry = mshr._entries.get(line)
        if entry is not None:
            ready, from_memory = entry
            if ready > now:
                mshr.merges += 1
                stats.merges += 1
                l1_done = now + dcache.latency
                complete = ready if ready > l1_done else l1_done
                return (complete << 2) | (2 if from_memory else 0) | 1
            del mshr._entries[line]

        if dcache.lookup(line):
            if not speculative and line in self._prefetched_lines:
                self._prefetched_lines.discard(line)   # _credit_prefetch
                stats.useful_prefetches += 1
            return (now + dcache.latency) << 2

        stats.l1d_misses += 1
        probe_done = now + dcache.latency
        if self.l2.lookup(line):
            if not speculative and line in self._prefetched_lines:
                self._prefetched_lines.discard(line)   # _credit_prefetch
                stats.useful_prefetches += 1
            complete = probe_done + self.l2.latency
            dcache.fill(line)
            # Best-effort MSHR registration for the short L2-hit window.
            mshr.allocate(line, complete, False, now)
            return complete << 2

        # L2 miss: full memory round trip.
        complete = probe_done + self.l2.latency + self.memory_latency
        if not mshr.allocate(line, complete, True, now):
            if is_store:
                # Stores drain through a write buffer; never rejected.
                mshr.force(line, complete)
            else:
                return -1
        stats.l2_misses += 1
        self.l2.fill(line)
        dcache.fill(line)
        if speculative:
            self._prefetched_lines.add(line)
        return (complete << 2) | 2

    def next_fill_cycle(self, now: int) -> Optional[int]:
        """Earliest future cycle at which an outstanding fill completes.

        The cycle-skipping fast path uses this as the wakeup horizon for
        issue-queue entries replaying against a full MSHR file: nothing
        can free an entry before the first fill completes, so every cycle
        strictly before it is provably a failed replay (see
        :meth:`~repro.mem.mshr.MSHRFile.next_release_cycle`).
        """
        return self.mshr.next_release_cycle(now)

    def peek_data(self, addr: int) -> str:
        """Side-effect-free presence probe: 'l1', 'l2', or 'memory'.

        Used by the Figure 4 prefetching ablation, where runahead accesses
        must not touch the L2 or memory (no fills, no MSHR traffic, no
        statistics).
        """
        line = self.dcache.line_of(addr)
        if self.dcache.contains(line):
            return "l1"
        if self.l2.contains(line):
            return "l2"
        return "memory"

    # --- instruction side ------------------------------------------------------

    def ifetch(self, pc: int, now: int, thread_id: int,
               speculative: bool = False) -> AccessResult:
        """Fetch the instruction line containing ``pc``."""
        packed = self.ifetch_packed(pc, now, thread_id, speculative)
        return AccessResult(packed >> 2, bool(packed & 2),
                            pc // self.icache.config.line_bytes,
                            merged=bool(packed & 1))

    def ifetch_packed(self, pc: int, now: int, thread_id: int,
                      speculative: bool = False) -> int:
        """Allocation-free :meth:`ifetch` for the fetch hot path.

        Same ``(complete_cycle << 2) | (l2_miss << 1) | merged`` encoding
        as :meth:`data_access_packed`; instruction fetches are never
        rejected, so -1 does not occur.
        """
        stats = self.stats[thread_id]
        stats.ifetches += 1
        icache = self.icache
        mshr = self.mshr
        line = pc // icache.config.line_bytes     # inlined line_of
        entry = mshr._entries.get(line)           # inlined MSHRFile.pending
        if entry is not None:
            ready, from_memory = entry
            if ready > now:
                mshr.merges += 1
                stats.merges += 1
                l1_done = now + icache.latency
                complete = ready if ready > l1_done else l1_done
                return (complete << 2) | (2 if from_memory else 0) | 1
            del mshr._entries[line]
        if icache.lookup(line):
            return (now + icache.latency) << 2
        stats.l1i_misses += 1
        probe_done = now + self.icache.latency
        if self.l2.lookup(line):
            complete = probe_done + self.l2.latency
            self.icache.fill(line)
            self.mshr.allocate(line, complete, False, now)
            return complete << 2
        complete = probe_done + self.l2.latency + self.memory_latency
        stats.l2_misses += 1
        self.icache.fill(line)
        self.l2.fill(line)
        self.mshr.allocate(line, complete, True, now)
        if speculative:
            self._prefetched_lines.add(line)
        return (complete << 2) | 2

    # --- functional warmup -----------------------------------------------------

    def warm_data(self, addr: int) -> None:
        """Install a data line without timing or statistics (warmup)."""
        line = self.dcache.line_of(addr)
        if not self.dcache.touch(line):
            self.dcache.fill(line)
        if not self.l2.touch(line):
            self.l2.fill(line)

    def warm_ifetch(self, pc: int) -> None:
        """Install an instruction line without timing or statistics."""
        line = self.icache.line_of(pc)
        if not self.icache.touch(line):
            self.icache.fill(line)
        if not self.l2.touch(line):
            self.l2.fill(line)

    def reset_stats(self) -> None:
        """Zero all counters (after warmup, before measurement)."""
        for cache in (self.icache, self.dcache, self.l2):
            cache.reset_stats()
        for index in range(len(self.stats)):
            self.stats[index] = MemStats()

    # --- introspection ---------------------------------------------------------

    def total_stats(self) -> MemStats:
        """Aggregate statistics across threads."""
        total = MemStats()
        for stat in self.stats:
            for field in dataclasses.fields(MemStats):
                setattr(total, field.name,
                        getattr(total, field.name) + getattr(stat, field.name))
        return total

    def outstanding_memory_fills(self, now: int) -> int:
        """Fills currently in flight from main memory (MLP snapshot)."""
        return self.mshr.outstanding_memory_fills(now)
