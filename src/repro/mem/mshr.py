"""Miss Status Holding Registers.

MSHRs track in-flight cache fills.  They serve two purposes in this model:

1. **Timing of pending lines.**  Cache arrays are filled eagerly at miss
   time (a standard trace-simulator simplification), so the MSHR file is
   what makes a just-missed line *still cost* its full latency: any access
   to a line with an outstanding fill completes no earlier than the fill.
2. **Miss merging (MLP).**  Concurrent misses to one line collapse into a
   single fill — the mechanism by which runahead prefetches overlap many
   memory accesses instead of serializing them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class MSHRFile:
    """Outstanding-fill tracker with bounded capacity."""

    __slots__ = ("capacity", "_entries", "allocations", "merges", "rejects")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        #: line_addr -> (ready_cycle, fill_is_from_memory)
        self._entries: Dict[int, Tuple[int, bool]] = {}
        self.allocations = 0
        self.merges = 0
        self.rejects = 0

    def __len__(self) -> int:
        return len(self._entries)

    def expire(self, now: int) -> None:
        """Drop entries whose fill has completed."""
        if not self._entries:
            return
        done = [line for line, (ready, _) in self._entries.items()
                if ready <= now]
        for line in done:
            del self._entries[line]

    def pending(self, line_addr: int, now: int) -> Optional[Tuple[int, bool]]:
        """If a fill for ``line_addr`` is outstanding, return
        (ready_cycle, from_memory); else None."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return None
        ready, from_memory = entry
        if ready <= now:
            del self._entries[line_addr]
            return None
        self.merges += 1
        return entry

    def allocate(self, line_addr: int, ready_cycle: int,
                 from_memory: bool, now: int) -> bool:
        """Reserve an entry for a new fill; False if the file is full."""
        # Expire lazily: completed fills only need collecting when the
        # file looks full (pending() already drops them on access).
        if len(self._entries) >= self.capacity:
            self.expire(now)
            if len(self._entries) >= self.capacity:
                self.rejects += 1
                return False
        self.allocations += 1
        self._entries[line_addr] = (ready_cycle, from_memory)
        return True

    def outstanding_memory_fills(self, now: int) -> int:
        """Number of fills currently being served by main memory."""
        self.expire(now)
        return sum(1 for ready, from_memory in self._entries.values()
                   if from_memory and ready > now)
