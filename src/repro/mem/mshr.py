"""Miss Status Holding Registers.

MSHRs track in-flight cache fills.  They serve three purposes in this
model:

1. **Timing of pending lines.**  Cache arrays are filled eagerly at miss
   time (a standard trace-simulator simplification), so the MSHR file is
   what makes a just-missed line *still cost* its full latency: any access
   to a line with an outstanding fill completes no earlier than the fill.
2. **Miss merging (MLP).**  Concurrent misses to one line collapse into a
   single fill — the mechanism by which runahead prefetches overlap many
   memory accesses instead of serializing them.
3. **A skip horizon.**  A demand load rejected by a full file replays every
   cycle until a fill completes and frees an entry; the event-driven fast
   path asks :meth:`next_release_cycle` for that cycle so the whole replay
   window can be jumped over instead of stepped (see
   :meth:`SMTPipeline._skip_target
   <repro.core.pipeline.SMTPipeline._skip_target>`).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple


class MSHRFile:
    """Outstanding-fill tracker with bounded capacity."""

    __slots__ = ("capacity", "_entries", "_release_heap", "allocations",
                 "merges", "rejects")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        #: line_addr -> (ready_cycle, fill_is_from_memory)
        self._entries: Dict[int, Tuple[int, bool]] = {}
        #: Lazily-pruned min-heap of (ready_cycle, line_addr) mirroring
        #: ``_entries``; stale pairs (entry dropped or re-allocated with a
        #: different ready cycle) are discarded when the heap top is read.
        self._release_heap: List[Tuple[int, int]] = []
        self.allocations = 0
        self.merges = 0
        self.rejects = 0

    def __len__(self) -> int:
        return len(self._entries)

    def expire(self, now: int) -> None:
        """Drop entries whose fill has completed.

        Driven by the release heap: every entry has a heap pair, so
        walking pairs with ``ready <= now`` visits every expirable entry
        (plus stale pairs, discarded in passing) — O(expired · log n)
        amortized instead of a scan of the whole file per call, which
        matters because ``allocate`` expires on every attempt against a
        full file.
        """
        heap = self._release_heap
        if not heap:
            return
        entries = self._entries
        while heap:
            ready, line = heap[0]
            if ready > now:
                break
            heapq.heappop(heap)
            entry = entries.get(line)
            if entry is not None and entry[0] == ready:
                del entries[line]

    def pending(self, line_addr: int, now: int) -> Optional[Tuple[int, bool]]:
        """If a fill for ``line_addr`` is outstanding, return
        (ready_cycle, from_memory); else None."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return None
        ready, from_memory = entry
        if ready <= now:
            del self._entries[line_addr]
            return None
        self.merges += 1
        return entry

    def allocate(self, line_addr: int, ready_cycle: int,
                 from_memory: bool, now: int) -> bool:
        """Reserve an entry for a new fill; False if the file is full."""
        # Expire lazily: completed fills only need collecting when the
        # file looks full (pending() already drops them on access).
        if len(self._entries) >= self.capacity:
            self.expire(now)
            if len(self._entries) >= self.capacity:
                self.rejects += 1
                return False
        self.allocations += 1
        self._entries[line_addr] = (ready_cycle, from_memory)
        heapq.heappush(self._release_heap, (ready_cycle, line_addr))
        return True

    def force(self, line_addr: int, ready_cycle: int,
              from_memory: bool = True) -> None:
        """Register a fill past the capacity limit.

        Stores drain through a write buffer and are never rejected, so
        their fills must be trackable even when the file is full (the
        entry still merges later accesses and still feeds the release
        horizon).
        """
        self._entries[line_addr] = (ready_cycle, from_memory)
        heapq.heappush(self._release_heap, (ready_cycle, line_addr))

    def next_release_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle at which the file can release an entry.

        This is the first cycle a full file could accept a new demand
        miss (``allocate`` collects completed fills before rejecting), so
        it bounds how far the cycle-skipping fast path may jump while a
        rejected load is replaying.  The result may be ``<= now``: a
        fill that has already completed but not yet been collected means
        a slot is free *immediately* (callers must not skip past such a
        cycle).  Returns None when the file tracks no fills.  Heap pairs
        whose entry was dropped or re-allocated are pruned here, keeping
        the query O(log n) amortized rather than a scan of the entry
        dict.
        """
        heap = self._release_heap
        entries = self._entries
        while heap:
            ready, line = heap[0]
            entry = entries.get(line)
            if entry is None or entry[0] != ready:
                heapq.heappop(heap)
                continue
            return ready
        return None

    def outstanding_memory_fills(self, now: int) -> int:
        """Number of fills currently being served by main memory."""
        self.expire(now)
        return sum(1 for ready, from_memory in self._entries.values()
                   if from_memory and ready > now)
