"""Evaluation metrics used in the paper (§5).

* Throughput — equation (1): the average of per-thread IPCs.
* Fairness — equation (2), from Luo et al. [9]: the harmonic mean of each
  thread's multithreaded-vs-single-thread IPC speedup.
* ED² — §5.3's efficiency proxy: executed instructions × CPI².
"""

from .ipc import throughput, weighted_speedup
from .fairness import fairness, hmean_speedup
from .energy import ed2, normalized_ed2

__all__ = [
    "throughput",
    "weighted_speedup",
    "fairness",
    "hmean_speedup",
    "ed2",
    "normalized_ed2",
]
