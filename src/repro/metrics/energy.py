"""Energy-efficiency proxy (§5.3).

The paper approximates energy by the number of *executed* instructions
(committed, squashed, and runahead-speculative alike, all assumed to cost
the same) and delay by the machine-wide CPI, giving

    ED² = N_executed · CPI²

presented normalized to the ICOUNT baseline (lower is better).
"""

from __future__ import annotations


def ed2(executed_instructions: int, cpi: float) -> float:
    """Energy-Delay² for one run."""
    if executed_instructions < 0:
        raise ValueError("executed_instructions must be >= 0")
    if cpi <= 0:
        raise ValueError("cpi must be positive")
    return executed_instructions * cpi * cpi


def normalized_ed2(executed: int, cpi: float,
                   baseline_executed: int, baseline_cpi: float) -> float:
    """ED² relative to a baseline run (ICOUNT in the paper's Figure 3)."""
    baseline = ed2(baseline_executed, baseline_cpi)
    if baseline == 0:
        raise ValueError("baseline ED^2 is zero")
    return ed2(executed, cpi) / baseline
