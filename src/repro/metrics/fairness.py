"""Fairness metric (Luo, Gummaraju & Franklin, ISPASS 2001 [9])."""

from __future__ import annotations

from typing import Sequence


def hmean_speedup(mt_ipcs: Sequence[float],
                  st_ipcs: Sequence[float]) -> float:
    """Equation (2): harmonic mean of per-thread IPC speedups.

    ``n / sum_i(IPC_ST,i / IPC_MT,i)``.  The harmonic mean punishes
    workloads where one thread is sacrificed for another, so it balances
    fairness against raw performance.
    """
    if len(mt_ipcs) != len(st_ipcs) or not mt_ipcs:
        raise ValueError("need matching non-empty IPC vectors")
    denominator = 0.0
    for mt, st in zip(mt_ipcs, st_ipcs):
        if st <= 0:
            raise ValueError("single-thread IPC must be positive")
        if mt <= 0:
            return 0.0
        denominator += st / mt
    return len(mt_ipcs) / denominator


#: The paper calls the metric simply "fairness".
fairness = hmean_speedup
