"""Throughput metrics."""

from __future__ import annotations

from typing import Sequence


def throughput(ipcs: Sequence[float]) -> float:
    """Equation (1): the average of per-thread IPCs.

    (The paper words it as "the average sum of IPC of all running
    threads"; the formula divides the sum by n.)
    """
    if not ipcs:
        raise ValueError("throughput needs at least one IPC")
    return sum(ipcs) / len(ipcs)


def weighted_speedup(mt_ipcs: Sequence[float],
                     st_ipcs: Sequence[float]) -> float:
    """Mean per-thread speedup vs single-thread execution (Snavely &
    Tullsen's weighted speedup, used as an auxiliary diagnostic)."""
    if len(mt_ipcs) != len(st_ipcs) or not mt_ipcs:
        raise ValueError("need matching non-empty IPC vectors")
    total = 0.0
    for mt, st in zip(mt_ipcs, st_ipcs):
        if st <= 0:
            raise ValueError("single-thread IPC must be positive")
        total += mt / st
    return total / len(mt_ipcs)
