"""Fetch policies and resource-control schedulers.

The paper compares Runahead Threads against two families of prior work:

* **Static fetch policies** — ICOUNT [18] as the baseline priority scheme,
  plus the long-latency-load handlers STALL and FLUSH [17] built on top of
  it (§5.1).
* **Dynamic resource control** — DCRA [1] and learning-based hill climbing
  [3] (§5.2).

``rat`` (Runahead Threads) is itself exposed as a fetch policy: ICOUNT
priority plus the runahead mode machinery in the core.  The MLP-aware
policy of related work [15] is included as an optional comparator.
"""

from .base import FetchPolicy
from .round_robin import RoundRobinPolicy
from .icount import ICountPolicy
from .stall import StallPolicy
from .flush import FlushPolicy
from .rat import RunaheadThreadsPolicy
from .dcra import DCRAPolicy
from .hill_climbing import HillClimbingPolicy
from .mlp import MLPAwarePolicy
from .registry import POLICY_NAMES, create_policy, policy_names

__all__ = [
    "FetchPolicy",
    "RoundRobinPolicy",
    "ICountPolicy",
    "StallPolicy",
    "FlushPolicy",
    "RunaheadThreadsPolicy",
    "DCRAPolicy",
    "HillClimbingPolicy",
    "MLPAwarePolicy",
    "POLICY_NAMES",
    "create_policy",
    "policy_names",
]
