"""Policy interface.

A policy owns two decisions each cycle:

* **Fetch priority** — :meth:`FetchPolicy.fetch_order` returns thread ids
  in descending priority; the pipeline fetches from the first
  ``fetch_threads`` fetchable ones (ICOUNT.2.8 style).
* **Gating** — policies react to events (:meth:`on_l2_miss_detected`) or
  periodic bookkeeping (:meth:`on_cycle`) by gating threads through
  :meth:`~repro.core.thread.ThreadContext.gate_fetch_until`, or — for
  FLUSH — by asking the pipeline to squash.

``uses_runahead`` turns on the runahead entry check at the commit stage.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..config import SMTConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.dyninst import DynInst
    from ..core.pipeline import SMTPipeline
    from ..core.thread import ThreadContext


class FetchPolicy:
    """Base policy: fixed thread order, no gating, no runahead."""

    name = "base"
    uses_runahead = False

    def __init__(self, config: SMTConfig) -> None:
        self.config = config
        self.pipeline: "SMTPipeline" = None  # type: ignore[assignment]

    def attach(self, pipeline: "SMTPipeline") -> None:
        """Bind to the pipeline once its structures exist."""
        self.pipeline = pipeline
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for subclasses needing per-thread state."""

    @property
    def threads(self) -> List["ThreadContext"]:
        return self.pipeline.threads

    # --- decisions ---------------------------------------------------------

    def fetch_order(self, now: int) -> List[int]:
        """Thread ids in descending fetch priority."""
        return list(range(len(self.threads)))

    # --- event hooks ------------------------------------------------------------

    def on_l2_miss_detected(self, thread: "ThreadContext",
                            inst: "DynInst", now: int) -> None:
        """A demand load of ``thread`` was found to miss in L2."""

    def on_cycle(self, now: int) -> None:
        """Called once per cycle before the commit stage."""

    def macro_step_ok(self, thread: "ThreadContext", length: int,
                      now: int) -> bool:
        """May the dispatch stage fuse ``length`` instructions this cycle?

        The macro-step speculation layer (see
        :meth:`SMTPipeline._macro_dispatch
        <repro.core.pipeline.SMTPipeline._macro_dispatch>`) dispatches a
        pre-decoded run of ``thread``'s instructions in one fused step
        when its resource guards hold.  The fused step leaves every
        counter a policy can observe (ICOUNT, per-thread queue and ROB
        occupancy, register holdings) in exactly the state the per-stage
        path would — so the base contract is simply ``True``.

        The hook exists as the policy's veto term, mirroring the
        :meth:`skip_horizon` opt-in pattern: a policy that overrides
        :meth:`on_cycle` or :meth:`on_l2_miss_detected` with resource
        *accounting* MUST (re)declare this method — even if only to
        ``return True`` — or the pipeline conservatively disables the
        fused path for it under ``REPRO_SPECULATE=auto`` (the default).
        Declaring it asserts the policy's accounting reads only
        end-of-stage state and cannot tell a fused run from the same
        instructions dispatched one at a time.  ``fetch_order`` needs no
        such declaration: it is side-effect-free and runs after dispatch
        has fully settled.
        """
        return True

    def skip_horizon(self, now: int) -> Optional[int]:
        """Earliest future cycle at which :meth:`on_cycle` must run.

        The event-driven fast path (:meth:`SMTPipeline.advance
        <repro.core.pipeline.SMTPipeline.advance>`) consults this before
        jumping over provably idle cycles: ``on_cycle`` is *not* invoked
        for cycles in ``[now, horizon)``.  ``None`` means the policy
        needs no future wakeup; returning ``now`` forbids skipping this
        cycle.

        This is the policy's term in the pipeline's *per-structure
        horizon contract*: every structure that can wake an otherwise
        quiescent machine must clamp the skip target with its own next
        wakeup cycle — issue queues via
        :meth:`~repro.core.issue_queue.IssueQueue.next_ready_cycle`, the
        MSHR file via
        :meth:`~repro.mem.mshr.MSHRFile.next_release_cycle`, the FU
        pools via :meth:`~repro.core.fu.FUPool.next_release_cycle`, the
        event table and the per-thread fetch/runahead gates inside
        ``SMTPipeline._skip_target`` — and the policy, here.  A horizon
        may be conservative (earlier than the true wakeup costs only
        speed) but never late: skipping past a cycle where the structure
        would have acted diverges the simulation.

        A policy that overrides :meth:`on_cycle` with per-cycle
        behaviour MUST override this accordingly — otherwise the
        pipeline disables cycle skipping entirely for that policy, which
        is always safe but slow.  :meth:`fetch_order` must remain
        side-effect-free: it is not called for skipped idle cycles.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
