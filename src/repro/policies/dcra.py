"""DCRA: Dynamically Controlled Resource Allocation (Cazorla et al.,
MICRO-37 [1]).

DCRA monitors per-thread usage of the critical shared resources (physical
registers and issue-queue entries) and continuously computes, for each
thread, how much of each resource it is *entitled* to:

* Threads are classified **slow** (a pending L2 miss — memory-intensive,
  given a larger share so they can exploit distant parallelism) or
  **fast**; slow threads weigh ``dcra_slow_weight`` against 1.
* Threads that do not use a resource at all (e.g. integer programs and the
  FP register file) are **inactive** for it and donate their share.
* A thread whose usage exceeds its entitlement for any resource is fetch-
  gated until the next sampling interval.

This is a faithful-in-spirit approximation; the original paper's exact
sharing formula differs in constants but behaves the same way (protect
memory-bound threads' share without letting them monopolize).  See
DESIGN.md §5.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa import IssueQueueKind, RegClass
from .icount import ICountPolicy


class DCRAPolicy(ICountPolicy):
    """ICOUNT priority + DCRA entitlement-based fetch gating."""

    name = "dcra"

    def on_attach(self) -> None:
        self._interval = self.config.dcra_sample_interval
        self._slow_weight = self.config.dcra_slow_weight
        self._fp_active = [True] * len(self.threads)

    def on_cycle(self, now: int) -> None:
        if now == 0 or now % self._interval:
            return
        self._refresh_fp_activity()
        for thread in self.threads:
            if self._over_entitlement(thread):
                thread.gate_fetch_until(now + self._interval)

    def skip_horizon(self, now: int) -> int:
        # Entitlement is re-evaluated only on sampling-interval
        # boundaries, so idle cycles between boundaries may be skipped.
        remainder = now % self._interval
        return now if remainder == 0 else now + (self._interval - remainder)

    def macro_step_ok(self, thread, length: int, now: int) -> bool:
        # DCRA's accounting (regs_held, per-thread queue occupancy)
        # samples end-of-interval state from on_cycle, which runs before
        # the dispatch stage: a fused dispatch run and the equivalent
        # per-instruction sequence leave those counters identical by the
        # time DCRA next reads them, so runs never cross an accounting
        # boundary mid-observation.
        return True

    # --- classification -----------------------------------------------------

    def _is_slow(self, thread) -> bool:
        return thread.pending_l2_misses > 0 or thread.in_runahead

    def _refresh_fp_activity(self) -> None:
        """A thread is FP-active if it holds FP queue entries or rename
        registers; inactive threads donate their FP share."""
        fp_queue = self.pipeline.queues[IssueQueueKind.FP]
        for tid, thread in enumerate(self.threads):
            self._fp_active[tid] = bool(
                fp_queue.per_thread[tid]
                or thread.regs_held[RegClass.FP] > 32)

    # --- entitlement ---------------------------------------------------------

    def _shares(self, participants: List[int]) -> Dict[int, float]:
        """Entitlement fraction for each participating thread."""
        weights = {tid: (self._slow_weight
                         if self._is_slow(self.threads[tid]) else 1.0)
                   for tid in participants}
        total = sum(weights.values()) or 1.0
        return {tid: weight / total for tid, weight in weights.items()}

    def _over_entitlement(self, thread) -> bool:
        tid = thread.tid
        num = len(self.threads)
        shares_all = self._shares(list(range(num)))
        fp_participants = [t for t in range(num) if self._fp_active[t]]
        fp_shares = self._shares(fp_participants)

        int_rename_pool = self.config.int_regs - 32 * num
        if int_rename_pool > 0:
            usage = thread.regs_held[RegClass.INT] - 32
            if usage > max(1.0, shares_all[tid] * int_rename_pool):
                return True

        fp_rename_pool = self.config.fp_regs - 32 * num
        if fp_rename_pool > 0 and tid in fp_shares:
            usage = thread.regs_held[RegClass.FP] - 32
            if usage > max(1.0, fp_shares[tid] * fp_rename_pool):
                return True

        for kind in (IssueQueueKind.INT, IssueQueueKind.FP,
                     IssueQueueKind.LS):
            queue = self.pipeline.queues[kind]
            if kind == IssueQueueKind.FP:
                if tid not in fp_shares:
                    continue
                share = fp_shares[tid]
            else:
                share = shares_all[tid]
            if queue.per_thread[tid] > max(1.0, share * queue.capacity):
                return True
        return False
