"""FLUSH long-latency handler (Tullsen & Brown, MICRO-34 [17]).

On detecting a pending L2 miss, squash every instruction of the thread
younger than the missing load, releasing all of its resources to the other
threads, and stall fetch until the miss resolves.  The squashed
instructions are re-fetched and re-executed afterwards — the double
execution the paper's energy comparison charges FLUSH for (§5.3).
"""

from __future__ import annotations

from .icount import ICountPolicy


class FlushPolicy(ICountPolicy):
    """ICOUNT + flush-and-stall on L2 miss."""

    name = "flush"

    def on_l2_miss_detected(self, thread, inst, now: int) -> None:
        if inst.complete_cycle <= now:
            return
        pipeline = self.pipeline
        pipeline.squash_thread_younger(thread, inst.seq)
        # Resume fetch just past the missing load once it resolves.
        next_index = inst.trace_index + 1
        next_pass = inst.pass_no
        if next_index >= len(thread.trace):
            next_index = 0
            next_pass += 1
        thread.rewind_to(next_index, next_pass)
        thread.gate_fetch_until(inst.complete_cycle)
        thread.block_fetch_until(
            inst.complete_cycle + pipeline.config.redirect_penalty)

    def macro_step_ok(self, thread, length: int, now: int) -> bool:
        # The flush squash runs at L2-detect time, strictly before the
        # dispatch stage of the same cycle; whether the surviving fetch
        # queue then drains through the fused run or one inst at a time
        # is indistinguishable to this policy (it keeps no counters).
        return True
