"""Learning-based resource distribution via hill climbing (Choi & Yeung,
ISCA-33 [3]) — the throughput-guided "Hill-Thru" variant the paper
evaluates (§5.2; the weighted-speedup and harmonic-mean variants need
single-thread IPCs as an external input, which the paper dismisses as
impractical, so we follow their choice).

Execution proceeds in fixed epochs.  Starting from an equal partition of
the machine, the learner runs one *trial epoch* per thread, each trial
shifting ``hill_delta`` of the allocation toward that thread; after the
sweep it permanently moves the base partition in the direction whose trial
epoch achieved the best throughput, then sweeps again — a stochastic
gradient ascent on the performance function.

Shares are enforced by fetch-gating any thread whose share of the reorder
buffer or of the rename registers exceeds its current allocation.
"""

from __future__ import annotations

from typing import List

from ..isa import RegClass
from .icount import ICountPolicy


class HillClimbingPolicy(ICountPolicy):
    """Epoch-based hill climbing on throughput with share enforcement."""

    name = "hill"

    def on_attach(self) -> None:
        num = len(self.threads)
        self._epoch = self.config.hill_epoch_cycles
        self._delta = self.config.hill_delta
        self._min_share = self.config.hill_min_share
        self.shares: List[float] = [1.0 / num] * num
        self._base: List[float] = list(self.shares)
        self._trial = -1                # -1: measuring the base partition
        self._trial_scores: List[float] = [0.0] * num
        self._epoch_start_committed = 0
        self._base_score = 0.0

    # --- learning ---------------------------------------------------------------

    def on_cycle(self, now: int) -> None:
        if now == 0 or now % self._epoch:
            self._enforce(now)
            return
        committed = self.pipeline.gstats.committed
        score = committed - self._epoch_start_committed
        self._epoch_start_committed = committed
        self._finish_epoch(score)
        self._enforce(now)

    def skip_horizon(self, now: int) -> int:
        # Learning happens only on epoch boundaries.  The per-cycle
        # _enforce merely re-gates threads against occupancy counters
        # that are frozen while the machine is idle, and on_cycle runs
        # again at the wake cycle before any fetch — so skipping the
        # intermediate calls is unobservable in the simulation outcome.
        remainder = now % self._epoch
        return now if remainder == 0 else now + (self._epoch - remainder)

    def macro_step_ok(self, thread, length: int, now: int) -> bool:
        # Epoch scores read gstats.committed and _enforce reads ROB /
        # register occupancy — all from on_cycle, before dispatch runs;
        # the fused path changes no end-of-stage counter, so epochs and
        # share enforcement see identical state either way.
        return True

    def _finish_epoch(self, score: float) -> None:
        num = len(self.threads)
        if self._trial < 0:
            self._base_score = score
        else:
            self._trial_scores[self._trial] = score
        self._trial += 1
        if self._trial < num:
            self.shares = self._shifted(self._base, self._trial)
            return
        # Sweep complete: climb toward the best direction, if it beat the
        # base partition.
        best = max(range(num), key=lambda tid: self._trial_scores[tid])
        if self._trial_scores[best] > self._base_score:
            self._base = self._shifted(self._base, best)
        self.shares = list(self._base)
        self._trial = -1

    def _shifted(self, base: List[float], favored: int) -> List[float]:
        """Move ``hill_delta`` of allocation toward one thread."""
        num = len(base)
        shares = list(base)
        gain = 0.0
        for tid in range(num):
            if tid == favored:
                continue
            available = max(0.0, shares[tid] - self._min_share)
            take = min(available, self._delta / max(1, num - 1))
            shares[tid] -= take
            gain += take
        shares[favored] += gain
        return shares

    # --- enforcement ---------------------------------------------------------------

    def _enforce(self, now: int) -> None:
        pipeline = self.pipeline
        num = len(self.threads)
        rob_capacity = pipeline.rob.capacity
        int_pool = max(1, self.config.int_regs - 32 * num)
        for tid, thread in enumerate(self.threads):
            share = self.shares[tid]
            over_rob = (pipeline.rob.per_thread[tid]
                        > max(1.0, share * rob_capacity))
            over_regs = (thread.regs_held[RegClass.INT] - 32
                         > max(1.0, share * int_pool))
            if over_rob or over_regs:
                thread.gate_fetch_until(now + 1)
