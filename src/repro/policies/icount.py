"""ICOUNT fetch priority (Tullsen et al., ISCA-23 [18]).

Threads with the fewest instructions in the pre-issue stages (fetch queue,
rename, issue queues) get priority: they are making the best forward
progress and are least likely to clog shared structures.  This is the
paper's baseline (§5).
"""

from __future__ import annotations

from typing import List

from .base import FetchPolicy


class ICountPolicy(FetchPolicy):
    """Priority = ascending count of pre-issue instructions."""

    name = "icount"

    def fetch_order(self, now: int) -> List[int]:
        threads = self.pipeline.threads
        if len(threads) == 2:
            # The common Table 2 case, on the per-cycle hot path; the
            # tid tie-break matches sorted()'s stable order.
            return [0, 1] if threads[0].icount <= threads[1].icount \
                else [1, 0]
        # Ascending-tid input + stable sort = tid tie-break, with the
        # key lookup running at C level (this is a per-cycle path).
        icounts = [thread.icount for thread in threads]
        return sorted(range(len(icounts)), key=icounts.__getitem__)
