"""MLP-aware fetch policy (Eyerman & Eeckhout, HPCA-13 [15]).

Included as an optional comparator (the paper discusses it as the closest
related work, §2): on a long-latency load, the thread is allowed to fetch
only as many further instructions as an MLP predictor expects are needed
to expose the miss's memory-level parallelism, and is then stalled until
the miss resolves.  Unlike RaT the speculation distance is bounded by the
predictor, so distant MLP is never exploited.

The predictor here is a simplified per-PC adaptive table: the allowance
grows multiplicatively while extra L2 misses keep being found inside the
window and decays when they are not.
"""

from __future__ import annotations

from typing import Dict, Optional

from .icount import ICountPolicy


class MLPAwarePolicy(ICountPolicy):
    """ICOUNT + bounded run-on after a long-latency load, then stall."""

    name = "mlp"

    def on_attach(self) -> None:
        self._max_extra = self.config.mlp_max_extra
        self._entries = self.config.mlp_predictor_entries
        self._predictions: Dict[int, float] = {}
        num = len(self.threads)
        self._window_end_fetch = [-1] * num   # fetched-count limit
        self._window_resolve = [0] * num      # cycle the trigger resolves
        self._window_pc = [0] * num
        self._window_extra_misses = [0] * num
        #: Minimum pending resolve cycle over all open windows (0 = no
        #: window open), maintained incrementally at window open/close so
        #: :meth:`skip_horizon` is O(1) instead of a per-quiescence-check
        #: scan of ``_window_resolve``.
        self._min_resolve = 0

    def _refresh_min_resolve(self) -> None:
        """Recompute the cached minimum (window closed or replaced)."""
        best = 0
        for resolve in self._window_resolve:
            if resolve > 0 and (best == 0 or resolve < best):
                best = resolve
        self._min_resolve = best

    def _predict(self, pc: int) -> int:
        return int(self._predictions.get(pc % self._entries,
                                         self._max_extra / 4))

    def _train(self, pc: int, extra_misses: int) -> None:
        key = pc % self._entries
        current = self._predictions.get(key, self._max_extra / 4)
        if extra_misses > 0:
            current = min(self._max_extra, current * 1.5 + 1)
        else:
            current = max(4.0, current * 0.75)
        self._predictions[key] = current

    def on_l2_miss_detected(self, thread, inst, now: int) -> None:
        tid = thread.tid
        if now < self._window_resolve[tid]:
            # Additional MLP found inside an open window.
            self._window_extra_misses[tid] += 1
            return
        allowance = self._predict(inst.pc)
        self._window_end_fetch[tid] = thread.stats.fetched + allowance
        previous = self._window_resolve[tid]
        resolve = inst.complete_cycle
        self._window_resolve[tid] = resolve
        self._window_pc[tid] = inst.pc
        self._window_extra_misses[tid] = 0
        if previous > 0:
            # Replaced an expired-but-unclosed window that may have been
            # the cached minimum.
            self._refresh_min_resolve()
        elif self._min_resolve == 0 or resolve < self._min_resolve:
            self._min_resolve = resolve

    def on_cycle(self, now: int) -> None:
        closed = False
        for tid, thread in enumerate(self.threads):
            resolve = self._window_resolve[tid]
            if resolve <= 0:
                continue
            if now >= resolve:
                # Window closed: train the predictor and release the gate.
                self._train(self._window_pc[tid],
                            self._window_extra_misses[tid])
                self._window_resolve[tid] = 0
                self._window_end_fetch[tid] = -1
                thread.ungate_fetch()
                closed = True
            elif (self._window_end_fetch[tid] >= 0
                  and thread.stats.fetched >= self._window_end_fetch[tid]):
                thread.gate_fetch_until(resolve)
        if closed:
            self._refresh_min_resolve()

    def macro_step_ok(self, thread, length: int, now: int) -> bool:
        # The run-on window compares thread.stats.fetched against its
        # allowance; dispatch fusion never touches the fetched counter
        # (fetch is a separate stage), and window open/close react to
        # L2-detect events and on_cycle, both of which run before
        # dispatch — no observable difference.
        return True

    def skip_horizon(self, now: int) -> Optional[int]:
        # Window close (train + ungate) must run exactly at its resolve
        # cycle.  The run-on gate test depends only on the fetched
        # counter, which is frozen while the machine is idle, and is
        # re-applied at the wake cycle before any fetch.  The cached
        # minimum covers expired-but-unclosed windows too (their close
        # still has to run), so this is exactly the scan it replaces.
        resolve = self._min_resolve
        return resolve if resolve > 0 else None
