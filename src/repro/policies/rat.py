"""Runahead Threads as a fetch policy (the paper's proposal, §3).

Fetch priority stays ICOUNT; the difference is entirely in how a
long-latency load is handled.  Instead of gating (STALL) or squashing
(FLUSH) the thread, the commit stage — seeing ``uses_runahead`` — converts
it into a speculative light thread when the missing load reaches the head
of its window (see :mod:`repro.core.runahead`).  No event hook is needed:
the mechanism is armed by the flag alone, making it a *memory-aware fetch
policy that never throttles* its victim thread.
"""

from __future__ import annotations

from .icount import ICountPolicy


class RunaheadThreadsPolicy(ICountPolicy):
    """ICOUNT + runahead execution on L2-missing loads (RaT)."""

    name = "rat"
    uses_runahead = True
