"""Policy name resolution."""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..config import SMTConfig
from ..errors import UnknownPolicyError
from .base import FetchPolicy
from .dcra import DCRAPolicy
from .flush import FlushPolicy
from .hill_climbing import HillClimbingPolicy
from .icount import ICountPolicy
from .mlp import MLPAwarePolicy
from .rat import RunaheadThreadsPolicy
from .round_robin import RoundRobinPolicy
from .stall import StallPolicy

_REGISTRY: Dict[str, Type[FetchPolicy]] = {
    policy.name: policy
    for policy in (
        RoundRobinPolicy,
        ICountPolicy,
        StallPolicy,
        FlushPolicy,
        RunaheadThreadsPolicy,
        DCRAPolicy,
        HillClimbingPolicy,
        MLPAwarePolicy,
    )
}

#: All registered policy names.
POLICY_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def policy_names() -> Tuple[str, ...]:
    return POLICY_NAMES


def create_policy(name: str, config: SMTConfig) -> FetchPolicy:
    """Instantiate a policy by registry name."""
    try:
        policy_class = _REGISTRY[name]
    except KeyError:
        raise UnknownPolicyError(name) from None
    return policy_class(config)
