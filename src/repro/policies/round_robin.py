"""Round-robin fetch (Tullsen et al. [18]'s simplest scheme)."""

from __future__ import annotations

from typing import List

from .base import FetchPolicy


class RoundRobinPolicy(FetchPolicy):
    """Rotate fetch priority one position per cycle."""

    name = "round_robin"

    def fetch_order(self, now: int) -> List[int]:
        n = len(self.threads)
        start = now % n
        return [(start + offset) % n for offset in range(n)]
