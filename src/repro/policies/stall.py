"""STALL long-latency handler (Tullsen & Brown, MICRO-34 [17]).

On detecting that a thread has a pending L2 miss, stop fetching from it
until the miss is serviced.  Allocated resources are *held* for the whole
memory latency — the under-utilization the paper criticizes (§2).
Priority among fetchable threads remains ICOUNT.
"""

from __future__ import annotations

from .icount import ICountPolicy


class StallPolicy(ICountPolicy):
    """ICOUNT + fetch-stall on L2 miss."""

    name = "stall"

    def on_l2_miss_detected(self, thread, inst, now: int) -> None:
        if inst.complete_cycle > now:
            thread.gate_fetch_until(inst.complete_cycle)

    def macro_step_ok(self, thread, length: int, now: int) -> bool:
        # Gating reacts to L2-detect events, which fire before the
        # dispatch stage; a fused dispatch run changes nothing STALL
        # reads (it only ever looks at the event's instruction).
        return True
