"""Measurement layer: FAME methodology, run caching, and sweeps.

Simulation runs are memoized by (workload, policy, configuration, run
spec), so the experiment drivers for different figures share runs — e.g.
Figure 3's ED² numbers reuse the very runs Figures 1 and 2 measured,
exactly as the paper's tables all come from one simulation campaign.
"""

from .runner import RunSpec, WorkloadRun, build_traces, run_workload, clear_run_cache
from .baselines import single_thread_ipc
from .fame import fame_run
from .results import ClassAggregate, aggregate_by_class
from .sweep import PolicySweep, sweep_policies

__all__ = [
    "RunSpec",
    "WorkloadRun",
    "build_traces",
    "run_workload",
    "clear_run_cache",
    "single_thread_ipc",
    "fame_run",
    "ClassAggregate",
    "aggregate_by_class",
    "PolicySweep",
    "sweep_policies",
]
