"""Measurement layer: FAME methodology, the simulation engine, and sweeps.

Every simulation funnels through a pluggable :class:`SimEngine`
(:mod:`repro.sim.engine`): a backend decides *where* cells execute
(serially in-process, or fanned out over worker processes) and a
:class:`~repro.sim.store.ResultStore` decides *whether* they execute at
all — results are content-addressed by (workload, policy, configuration,
run spec), so the experiment drivers for different figures share runs —
e.g. Figure 3's ED² numbers reuse the very runs Figures 1 and 2 measured,
exactly as the paper's tables all come from one simulation campaign —
and, with a disk store, whole invocations reuse earlier campaigns.
"""

from .runner import (RunSpec, WorkloadRun, build_traces, run_workload,
                     clear_run_cache)
from .baselines import single_thread_ipc
from .engine import (ExecutionReport, ProcessPoolBackend, RunIndex,
                     SerialBackend, SimEngine, SweepCell, get_engine,
                     reference_cell, set_engine, simulate_cell)
from .executors import (ShardSpec, ShardedExecutor, ThreadPoolBackend,
                        executor_names, get_executor)
from .fame import fame_run
from .manifest import CampaignManifest, ExhibitPlan, ManifestEntry
from .results import ClassAggregate, aggregate_by_class
from .store import (DiskStore, ExhibitRenderCache, MemoryStore,
                    ResultStore, cache_key)
from .sweep import (PolicySweep, assemble_policy_sweep, plan_policy_sweep,
                    sweep_policies)

__all__ = [
    "RunSpec",
    "WorkloadRun",
    "build_traces",
    "run_workload",
    "clear_run_cache",
    "single_thread_ipc",
    "SimEngine",
    "SweepCell",
    "RunIndex",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "ShardedExecutor",
    "ShardSpec",
    "ExecutionReport",
    "executor_names",
    "get_executor",
    "CampaignManifest",
    "ManifestEntry",
    "ExhibitPlan",
    "get_engine",
    "set_engine",
    "reference_cell",
    "simulate_cell",
    "ResultStore",
    "MemoryStore",
    "DiskStore",
    "ExhibitRenderCache",
    "cache_key",
    "fame_run",
    "ClassAggregate",
    "aggregate_by_class",
    "PolicySweep",
    "plan_policy_sweep",
    "assemble_policy_sweep",
    "sweep_policies",
]
