"""Single-thread reference IPCs.

The fairness metric (equation 2) compares each thread's multithreaded IPC
to its IPC when running *alone* on the same machine.  References are
ordinary engine cells (see :func:`repro.sim.engine.reference_cell`):
simulated once per (benchmark, config-structure, spec), memoized by the
engine's store, and persisted across invocations when a disk cache is
configured.  The fetch policy is pinned to ICOUNT because with a single
thread every policy's fetch schedule degenerates to the same thing and
runahead/flush long-latency handling would change what "single-thread
performance" means.
"""

from __future__ import annotations

from typing import Optional

from ..config import SMTConfig
from .runner import RunSpec


def clear_baseline_cache() -> None:
    """Forget memoized references (tests use this for isolation).

    Same contract as :func:`repro.sim.runner.clear_run_cache`: in-process
    state is dropped, on-disk store entries persist.
    """
    from .engine import get_engine
    get_engine().clear()


def single_thread_ipc(benchmark: str, config: Optional[SMTConfig] = None,
                      spec: Optional[RunSpec] = None) -> float:
    """IPC of ``benchmark`` running alone (memoized on the engine)."""
    from .engine import get_engine
    return get_engine().single_thread_ipc(benchmark, config, spec)
