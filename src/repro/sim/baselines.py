"""Single-thread reference IPCs.

The fairness metric (equation 2) compares each thread's multithreaded IPC
to its IPC when running *alone* on the same machine.  References are
simulated once per (benchmark, config-structure, spec) and memoized; the
fetch policy is pinned to ICOUNT because with a single thread every
policy's fetch schedule degenerates to the same thing and runahead/flush
long-latency handling would change what "single-thread performance" means.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import SMTConfig, baseline
from ..core.processor import SMTProcessor
from ..trace.generator import generate_trace
from .runner import RunSpec, default_spec

_ST_CACHE: Dict[Tuple, float] = {}


def clear_baseline_cache() -> None:
    _ST_CACHE.clear()


def single_thread_ipc(benchmark: str, config: Optional[SMTConfig] = None,
                      spec: Optional[RunSpec] = None) -> float:
    """IPC of ``benchmark`` running alone (memoized)."""
    if config is None:
        config = baseline()
    if spec is None:
        spec = default_spec()
    reference_config = config.with_policy("icount")
    key = (benchmark, reference_config, spec)
    cached = _ST_CACHE.get(key)
    if cached is not None:
        return cached
    trace = generate_trace(benchmark, spec.trace_len, spec.seed)
    processor = SMTProcessor(reference_config, [trace])
    # At least 3 passes: a single pass is dominated by start-up transients
    # (predictor still training), which would overstate multithreaded
    # speedups in the fairness metric.
    result = processor.run(min_passes=max(3, spec.min_passes),
                           max_cycles=spec.max_cycles)
    ipc = result.ipcs[0]
    _ST_CACHE[key] = ipc
    return ipc
