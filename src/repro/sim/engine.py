"""Pluggable simulation engine: execution backends + result store.

The whole experiment stack (sweeps, the figure/table drivers, the CLI)
funnels every simulation through a :class:`SimEngine`.  An engine owns

* a **backend** deciding *where* cells execute — any executor from the
  registry in :mod:`repro.sim.executors` (``serial``, ``process``,
  ``thread``, or a :class:`~repro.sim.executors.ShardedExecutor` slice
  of a campaign);
* a **store** (:mod:`repro.sim.store`) deciding *whether* a cell needs
  executing at all — results are content-addressed by a stable hash of
  (workload, policy, config, spec, code-version salt), so an engine with
  a :class:`~repro.sim.store.DiskStore` never re-simulates a cell any
  previous invocation already measured.

A cell (:class:`SweepCell`) is one (workload, policy, config, spec)
combination.  Simulation is a pure, deterministic function of the cell
— :func:`~repro.sim.executors.simulate_cell` regenerates the seeded
traces and runs the processor — so serial and parallel execution produce
bit-identical results and completion order never matters.

Two engine entry points map onto the campaign dataflow
(:mod:`repro.sim.manifest`): :meth:`SimEngine.run_cells` is the
*assembly* path (every cell must resolve to a run; a sharded backend
therefore fails it by design) and :meth:`SimEngine.execute_cells` is the
*execute* path (fill the store with whatever slice of the batch this
invocation owns, report counts, return no runs).

A process-wide default engine (:func:`get_engine` / :func:`set_engine`)
preserves the historical module-level memoization API: bare
:func:`repro.sim.runner.run_workload` calls hit the default engine's
in-memory store.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import SMTConfig, baseline
from ..core.processor import SimResult
from ..errors import IncompleteBatchError
from ..trace.workloads import Workload
from .executors import (ProcessPoolBackend, SerialBackend,  # noqa: F401
                        ThreadPoolBackend, batch_traces, simulate_cell)
from .runner import RunSpec, WorkloadRun, default_spec
from .store import MemoryStore, ResultStore, cache_key

#: Workload class label for synthetic one-benchmark workloads (the
#: single-thread reference runs behind the fairness metric, Table 2's
#: per-benchmark characterization, ...).
SINGLE_CLASS = "SINGLE"

#: Progress callback: (cells completed, cells total, of which cached).
ProgressFn = Callable[[int, int, int], None]


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One independently simulatable unit of a campaign."""

    workload: Workload
    policy: str
    config: SMTConfig
    spec: RunSpec

    @classmethod
    def make(cls, workload: Workload, policy: str,
             config: Optional[SMTConfig] = None,
             spec: Optional[RunSpec] = None) -> "SweepCell":
        """Normalized constructor.

        The policy is folded into the config (``config.with_policy``)
        before keying, so e.g. ``("rat", icount-config)`` and
        ``("rat", rat-config)`` address the same cached result.
        """
        config = (config if config is not None else baseline())
        return cls(workload=workload, policy=policy,
                   config=config.with_policy(policy),
                   spec=spec if spec is not None else default_spec())

    def key(self) -> str:
        return cache_key(self.workload, self.policy, self.config, self.spec)


def reference_cell(benchmark: str, config: Optional[SMTConfig] = None,
                   spec: Optional[RunSpec] = None) -> SweepCell:
    """The cell measuring one benchmark's single-thread reference IPC.

    The fetch policy is pinned to ICOUNT (alone on the machine, every
    policy's fetch schedule degenerates to the same thing) and at least
    3 FAME passes are required: a single pass is dominated by start-up
    transients, which would overstate multithreaded speedups in the
    fairness metric.
    """
    spec = spec if spec is not None else default_spec()
    ref_spec = dataclasses.replace(spec,
                                   min_passes=max(3, spec.min_passes))
    return SweepCell.make(Workload(SINGLE_CLASS, (benchmark,)),
                          "icount", config, ref_spec)


class RunIndex:
    """Immutable cell -> memoized run mapping an executed batch returns.

    The assemble phase of an exhibit looks runs up by the very
    :class:`SweepCell` values its plan declared; lookup goes through the
    content-addressed cell key, so equal cells (however constructed)
    resolve to the same run.
    """

    def __init__(self, runs: Dict[str, WorkloadRun]) -> None:
        self._runs = dict(runs)

    @classmethod
    def from_runs(cls, cells: Sequence[SweepCell],
                  runs: Sequence[WorkloadRun]) -> "RunIndex":
        return cls({cell.key(): run for cell, run in zip(cells, runs)})

    def __len__(self) -> int:
        return len(self._runs)

    def __contains__(self, cell: SweepCell) -> bool:
        return cell.key() in self._runs

    def __getitem__(self, cell: SweepCell) -> WorkloadRun:
        try:
            return self._runs[cell.key()]
        except KeyError:
            raise KeyError(
                f"cell not in this campaign's plan: {cell.workload} "
                f"policy={cell.policy!r} — assemble() may only consume "
                f"cells its plan() declared") from None

    def get(self, cell: SweepCell,
            default: Optional[WorkloadRun] = None) -> Optional[WorkloadRun]:
        return self._runs.get(cell.key(), default)

    def single_thread_ipc(self, benchmark: str,
                          config: Optional[SMTConfig] = None,
                          spec: Optional[RunSpec] = None) -> float:
        """One benchmark's reference IPC from the planned reference cell."""
        return self[reference_cell(benchmark, config, spec)].result.ipcs[0]


@dataclasses.dataclass
class EngineCounters:
    """How the engine satisfied its cells so far."""

    simulated: int = 0    # fresh simulations executed by the backend
    store_hits: int = 0   # satisfied from the result store
    memo_hits: int = 0    # satisfied from already-wrapped WorkloadRuns

    def snapshot(self) -> "EngineCounters":
        return dataclasses.replace(self)

    def since(self, earlier: "EngineCounters") -> "EngineCounters":
        return EngineCounters(
            simulated=self.simulated - earlier.simulated,
            store_hits=self.store_hits - earlier.store_hits,
            memo_hits=self.memo_hits - earlier.memo_hits,
        )


@dataclasses.dataclass(frozen=True)
class ExecutionReport:
    """How one :meth:`SimEngine.execute_cells` invocation went.

    ``planned`` counts the whole deduplicated batch; ``owned`` the cells
    this invocation was responsible for after the backend's shard filter
    (equal to ``planned`` for unsharded executors); ``cached`` of those
    were already in the store and ``simulated`` were computed fresh.
    """

    planned: int
    owned: int
    cached: int
    simulated: int

    @property
    def skipped(self) -> int:
        """Cells other shards own (0 for unsharded executors)."""
        return self.planned - self.owned


class SimEngine:
    """Backend-abstracted, store-backed executor of simulation cells."""

    def __init__(self, backend=None, store: Optional[ResultStore] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self.store = store if store is not None else MemoryStore()
        self.progress = progress
        self.counters = EngineCounters()
        self._memo: Dict[str, WorkloadRun] = {}

    def clear_memo(self) -> None:
        """Drop the in-process :class:`WorkloadRun` memo only.

        The result store is untouched: subsequent lookups fall through to
        it and count as ``store_hits``.
        """
        self._memo.clear()

    def clear_store(self) -> None:
        """Clear the result store's in-process entries.

        For a :class:`~repro.sim.store.MemoryStore` that is everything it
        holds; a :class:`~repro.sim.store.DiskStore` only drops its
        front memory layer — on-disk entries persist by design (they are
        content-addressed, so they can never serve stale results).
        """
        self.store.clear()

    def clear(self) -> None:
        """Forget every in-process result (memo + store memory layers).

        After this, each cell is re-simulated once — unless a disk store
        still holds it, in which case it is re-read and counted as a
        ``store_hit``.
        """
        self.clear_memo()
        self.clear_store()

    def _wrap(self, cell: SweepCell, result: SimResult) -> WorkloadRun:
        return WorkloadRun(workload=cell.workload, policy=cell.policy,
                           spec=cell.spec, result=result)

    def _lookup(self, key: str, cell: SweepCell) -> Optional[WorkloadRun]:
        run = self._memo.get(key)
        if run is not None:
            self.counters.memo_hits += 1
            return run
        result = self.store.get(key)
        if result is not None:
            self.counters.store_hits += 1
            run = self._wrap(cell, result)
            self._memo[key] = run
            return run
        return None

    def run_cells(self, cells: Sequence[SweepCell],
                  progress: Optional[ProgressFn] = None
                  ) -> List[WorkloadRun]:
        """Execute a batch of cells, returning runs in input order.

        Cached cells are served from the store; the rest are deduplicated
        and handed to the backend in one batch, so a parallel backend
        overlaps every outstanding simulation of a campaign.

        ``progress`` defaults to the engine-level callback; pass
        ``False`` to silence it for internal bookkeeping lookups.
        """
        if progress is None:
            progress = self.progress
        elif progress is False:
            progress = None
        cells = list(cells)
        total = len(cells)
        results: List[Optional[WorkloadRun]] = [None] * total
        waiting: Dict[str, List[int]] = {}
        waiting_cells: Dict[str, SweepCell] = {}
        done = 0
        for index, cell in enumerate(cells):
            key = cell.key()
            run = self._lookup(key, cell)
            if run is not None:
                results[index] = run
                done += 1
            else:
                waiting.setdefault(key, []).append(index)
                waiting_cells.setdefault(key, cell)
        cached = done
        if progress:
            progress(done, total, cached)

        def _on_result(key: str, result: SimResult) -> None:
            nonlocal done
            self.counters.simulated += 1
            self.store.put(key, result)
            run = self._wrap(waiting_cells[key], result)
            self._memo[key] = run
            for index in waiting[key]:
                results[index] = run
                done += 1
            if progress:
                progress(done, total, cached)

        if waiting:
            items = [(key, waiting_cells[key]) for key in waiting]
            self.backend.run(items, _on_result)
        if done != total:
            raise IncompleteBatchError(
                total - done, total,
                hint="assembly needs every cell; a sharded executor "
                     "computes only its slice — run each shard's "
                     "execute stage first, then assemble with an "
                     "unsharded backend against the shared store")
        return results  # type: ignore[return-value]

    def execute_cells(self, cells: Sequence[SweepCell],
                      progress: Optional[ProgressFn] = None
                      ) -> "ExecutionReport":
        """The *execute* stage: fill the store, return counts — no runs.

        Deduplicates the batch, applies the backend's shard filter (an
        executor exposing ``select`` — e.g.
        :class:`~repro.sim.executors.ShardedExecutor` — owns only part
        of a batch), simulates whichever owned cells the store does not
        already hold, and reports how the batch was satisfied.  Progress
        goes through the same single callback as :meth:`run_cells`:
        ``(done, total, cached)`` over this invocation's *owned* cells,
        however the backend executes them.
        """
        if progress is None:
            progress = self.progress
        elif progress is False:
            progress = None
        unique: Dict[str, SweepCell] = {}
        for cell in cells:
            unique.setdefault(cell.key(), cell)
        items = list(unique.items())
        select = getattr(self.backend, "select", None)
        owned = list(select(items)) if select is not None else items
        total = len(owned)
        done = 0
        pending = []
        for key, cell in owned:
            # Existence check only: this stage never consumes the
            # results, so re-running a shard over a populated store
            # costs a stat per cell, not a read+parse.
            if key in self._memo or self.store.contains(key):
                done += 1
            else:
                pending.append((key, cell))
        cached = done
        if progress:
            progress(done, total, cached)

        def _on_result(key: str, result: SimResult) -> None:
            nonlocal done
            self.counters.simulated += 1
            self.store.put(key, result)
            self._memo[key] = self._wrap(unique[key], result)
            done += 1
            if progress:
                progress(done, total, cached)

        if pending:
            # `pending` is already shard-filtered; `select` is a pure
            # function of the keys, so the backend re-applying it in
            # run() selects the same subset.
            self.backend.run(pending, _on_result)
        return ExecutionReport(planned=len(items), owned=total,
                               cached=cached, simulated=len(pending))

    def run_index(self, cells: Sequence[SweepCell],
                  progress: Optional[ProgressFn] = None) -> RunIndex:
        """Execute a batch and index its runs by cell for assembly."""
        cells = list(cells)
        return RunIndex.from_runs(cells, self.run_cells(cells,
                                                        progress=progress))

    def run_workload(self, workload: Workload, policy: str,
                     config: Optional[SMTConfig] = None,
                     spec: Optional[RunSpec] = None) -> WorkloadRun:
        """Simulate (or recall) one workload under one policy."""
        cell = SweepCell.make(workload, policy, config, spec)
        key = cell.key()
        run = self._lookup(key, cell)
        if run is not None:
            return run
        return self.run_cells([cell], progress=False)[0]

    def single_thread_ipc(self, benchmark: str,
                          config: Optional[SMTConfig] = None,
                          spec: Optional[RunSpec] = None) -> float:
        """One benchmark's single-thread reference IPC (equation 2)."""
        cell = reference_cell(benchmark, config, spec)
        run = self.run_cells([cell], progress=False)[0]
        return run.result.ipcs[0]


_default_engine: Optional[SimEngine] = None


def get_engine() -> SimEngine:
    """The process-wide default engine (serial, in-memory store)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = SimEngine()
    return _default_engine


def set_engine(engine: Optional[SimEngine]) -> Optional[SimEngine]:
    """Install ``engine`` as the process default; returns the previous one.

    The CLI uses this so every layer below it — drivers, sweeps, the
    fairness references — shares one backend and one store without
    threading an engine argument through every call site.
    """
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
