"""Executor registry: *where* a campaign's cells run.

Executors are the second stage of the plan -> execute -> assemble
dataflow (see :mod:`repro.sim.manifest`).  Each one consumes a batch of
``(key, cell)`` items and reports every finished :class:`SimResult`
through a single ``on_result`` callback — the engine owns that callback,
which is what keeps progress reporting and store writes uniform across
backends.  Like fetch policies (``policies/registry.py``) and exhibits
(``experiments/registry.py``), executors register under a CLI name via
the :func:`executor` decorator and are resolved with
:func:`get_executor`.

Four executors ship:

* ``serial`` — cells run one after another in this process;
* ``process`` — cells fan out over a :class:`ProcessPoolExecutor`
  (the batch's traces are generated once and shipped to the workers);
* ``thread`` — cells fan out over a :class:`ThreadPoolExecutor`.
  **GIL caveat:** on a stock CPython build the simulator is pure-Python
  CPU-bound work, so threads time-slice a single core and the wall-clock
  win over ``serial`` is limited to skipping the process pool's
  pickle/spawn overhead on small batches.  On free-threaded builds
  (``Py_GIL_DISABLED``, python3.13t+) the same executor scales across
  cores with no pickling at all.  Results are bit-identical either way —
  :func:`simulate_cell` is a pure function of the cell;
* ``sharded`` — a deterministic ``K/N`` filter wrapped around any inner
  executor.  Shard ``K`` *selects* only the cells whose content hash
  lands in its residue class, so N machines (or N CI jobs) pointed at
  one shared :class:`~repro.sim.store.DiskStore` split a campaign
  without coordinating, and any one of them can later assemble the
  union straight from the store.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import (ProcessPoolExecutor, ThreadPoolExecutor,
                                as_completed)
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.processor import SMTProcessor, SimResult
from ..errors import ManifestError
from ..trace.generator import TraceKey, generate_trace, prime_traces
from ..trace.trace import Trace

#: How many leading hex digits of a cell key feed the shard residue.
#: 16 digits = 64 bits, far beyond any campaign size; the prefix (not
#: the whole 256-bit digest) keeps the arithmetic cheap and the
#: assignment trivially reproducible in shell/CI tooling.
_SHARD_HEX_DIGITS = 16


def simulate_cell(cell) -> SimResult:
    """Simulate one cell from scratch (pure; runs in worker processes).

    Trace generation is seeded by the spec, so any process computing the
    same cell produces the same traces and therefore the same result.
    """
    traces = [generate_trace(name, cell.spec.trace_len, cell.spec.seed)
              for name in cell.workload.benchmarks]
    processor = SMTProcessor(cell.config, traces)
    return processor.run(min_passes=cell.spec.min_passes,
                         max_cycles=cell.spec.max_cycles)


def batch_traces(cells) -> Dict[TraceKey, Trace]:
    """Generate every distinct trace a batch of cells needs, once.

    Returns a ``(benchmark, trace_len, seed) -> Trace`` mapping; the
    in-process :func:`generate_trace` memo makes repeats free.  Campaign
    backends ship this mapping to their workers (ROADMAP "batch trace
    generation"): a worker then deserializes each trace once instead of
    regenerating it per cell.
    """
    traces: Dict[TraceKey, Trace] = {}
    for cell in cells:
        for name in cell.workload.benchmarks:
            key = (name, cell.spec.trace_len, cell.spec.seed)
            if key not in traces:
                traces[key] = generate_trace(*key)
    return traces


def _prime_worker(traces: Dict[TraceKey, Trace]) -> None:
    """Pool initializer: install the batch's traces in this worker."""
    prime_traces(traces)


#: Batch item: (content-addressed store key, cell).
Item = Tuple[str, "SweepCell"]  # noqa: F821 - engine defines SweepCell

#: Result sink every executor reports through.
OnResult = Callable[[str, SimResult], None]

_REGISTRY: Dict[str, type] = {}


def executor(name: str) -> Callable[[type], type]:
    """Class decorator registering an executor under a CLI name."""
    def _register(cls: type) -> type:
        cls.name = name
        _REGISTRY[name] = cls
        return cls
    return _register


def executor_names() -> Tuple[str, ...]:
    """All registered executor names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_executor(name: str, jobs: Optional[int] = None):
    """Instantiate a registered executor by name.

    ``jobs`` is forwarded to pool executors; ``serial`` ignores it.
    ``sharded`` is not directly constructible here — wrap any executor
    in a :class:`ShardedExecutor` explicitly, since it needs a shard
    spec as well.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; expected one of "
            f"{executor_names()}") from None
    if cls is ShardedExecutor:
        raise ValueError("the 'sharded' executor wraps another executor; "
                         "construct ShardedExecutor(shard, inner) directly")
    if cls is SerialBackend:
        return cls()
    return cls(jobs)


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One machine's deterministic slice of a campaign: shard K of N."""

    index: int   # 1-based, 1 <= index <= count
    count: int

    def __post_init__(self) -> None:
        if self.count < 1 or not 1 <= self.index <= self.count:
            raise ManifestError(
                f"invalid shard {self.index}/{self.count}: need "
                f"1 <= K <= N")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``K/N`` (e.g. ``2/4``).

        Out-of-range values (``0/4``, ``5/4``) raise from
        ``__post_init__`` and pass through untouched.
        """
        try:
            index_text, count_text = text.split("/", 1)
            return cls(int(index_text), int(count_text))
        except ValueError:
            raise ManifestError(
                f"invalid --shard {text!r}: expected K/N, e.g. 2/4"
            ) from None

    def owns(self, key: str) -> bool:
        """Whether this shard is responsible for a cell key.

        Assignment hashes the key's leading hex digits into a residue
        class, so it depends only on the key text — every machine, CI
        job and Python version agrees on the split.
        """
        return int(key[:_SHARD_HEX_DIGITS], 16) % self.count == \
            self.index - 1

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@executor("serial")
class SerialBackend:
    """Execute cells one after another in this process."""

    jobs = 1

    def run(self, items: Sequence[Item], on_result: OnResult) -> None:
        for key, cell in items:
            on_result(key, simulate_cell(cell))


@executor("process")
class ProcessPoolBackend:
    """Fan independent cells out over a pool of worker processes.

    Every distinct (benchmark, trace_len, seed) trace the batch needs is
    generated exactly once in the coordinating process and shipped to
    the workers through the pool initializer, so no worker spends time
    in the trace generator (results are identical either way — traces
    are a pure function of their key).
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))

    def run(self, items: Sequence[Item], on_result: OnResult) -> None:
        if self.jobs == 1 or len(items) <= 1:
            SerialBackend().run(items, on_result)
            return
        workers = min(self.jobs, len(items))
        traces = batch_traces(cell for _, cell in items)
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_prime_worker,
                                 initargs=(traces,)) as pool:
            futures = {pool.submit(simulate_cell, cell): key
                       for key, cell in items}
            for future in as_completed(futures):
                on_result(futures[future], future.result())


@executor("thread")
class ThreadPoolBackend:
    """Fan independent cells out over a pool of threads.

    No pickling, no worker spawn, shared trace memo — the cheap way to
    overlap cells.  See the module docstring for the GIL caveat: on a
    stock CPython build the win over ``serial`` is bounded by the
    process pool's serialization overhead it avoids; free-threaded
    builds get true core scaling.  ``on_result`` is invoked from the
    coordinating thread only, so stores and counters see no concurrent
    calls.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))

    def run(self, items: Sequence[Item], on_result: OnResult) -> None:
        if self.jobs == 1 or len(items) <= 1:
            SerialBackend().run(items, on_result)
            return
        workers = min(self.jobs, len(items))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(simulate_cell, cell): key
                       for key, cell in items}
            for future in as_completed(futures):
                on_result(futures[future], future.result())


@executor("sharded")
class ShardedExecutor:
    """Deterministic K/N slice of a batch, delegated to an inner executor.

    :meth:`select` is the shard filter; the engine applies it *before*
    cache lookups (``SimEngine.execute_cells``), so a shard touches only
    the cells it owns.  ``run`` filters defensively as well — selection
    is a pure function of the keys, so re-filtering already-selected
    items is a no-op and a sharded executor never simulates a foreign
    cell, whichever engine path it is plugged into.  (Any executor
    exposing ``select`` must honour that contract: the engine may hand
    ``run`` a pre-filtered batch.)  Note that ``SimEngine.run_cells``
    (the assembly path) requires results for *every* cell and raises
    ``IncompleteBatchError`` under a sharded executor by design —
    execute shards first, then assemble the union from the shared store.
    """

    def __init__(self, shard: ShardSpec, inner=None) -> None:
        self.shard = shard
        self.inner = inner if inner is not None else SerialBackend()
        self.jobs = self.inner.jobs

    def select(self, items: Sequence[Item]) -> List[Item]:
        """The subset of a batch this shard is responsible for."""
        return [(key, cell) for key, cell in items
                if self.shard.owns(key)]

    def run(self, items: Sequence[Item], on_result: OnResult) -> None:
        self.inner.run(self.select(items), on_result)
