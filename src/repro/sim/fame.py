"""FAME: FAirly Measuring Multithreaded Execution (Vera et al. [19]).

Multithreaded measurements are biased if a fast thread's trace ends while
a slow co-runner is still mid-flight — either the fast thread's pressure
disappears (flattering the slow thread) or the measurement window
over-weights whoever happened to finish.  FAME re-executes every trace
until all of them are fairly represented in the measurement.

In this simulator threads loop their traces forever (with a per-pass data
shift so large working sets keep behaving like large working sets, see
:mod:`repro.core.thread`); :func:`fame_run` stops the measurement once
every thread has completed at least ``min_passes`` full executions, so
each thread's IPC is measured under continuous pressure from all its
co-runners.
"""

from __future__ import annotations

from typing import Optional

from ..core.processor import SMTProcessor, SimResult


def fame_run(processor: SMTProcessor, min_passes: int = 1,
             max_cycles: Optional[int] = None) -> SimResult:
    """Run ``processor`` under the FAME stopping rule.

    Thin, documented alias of :meth:`SMTProcessor.run` — the methodology
    lives in the processor so every entry point measures the same way.
    """
    return processor.run(min_passes=min_passes, max_cycles=max_cycles)
