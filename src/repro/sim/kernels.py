"""The kernel registry: which run-loop implementation drives a cell.

Mirrors the executor/policy/exhibit registries: implementations register
under a CLI-visible name, and :func:`resolve_run_loop` picks one per
:meth:`SMTProcessor.run <repro.core.processor.SMTProcessor.run>` call.
Two tiers exist:

``python``
    The portable FAME measurement loop (the reference implementation,
    moved verbatim from ``SMTProcessor.run``).  Every other tier must
    match it bit for bit.

``specialized``
    The source-generating specializer
    (:mod:`repro.core.kernel_gen` / :mod:`repro.core.kernel_cache`):
    a config-folded transcription of the whole pipeline hot loop,
    compiled once per machine shape per process.

Selection is controlled by the ``REPRO_KERNEL`` environment knob
(``auto`` | ``python`` | ``specialized``, resolved by
:func:`repro.config.kernel_mode` — the same pattern as
``REPRO_SPECULATE``, and like it deliberately *not* an
:class:`~repro.config.SMTConfig` field: by the bit-identity contract
the switch cannot change any result, so the config cache key — and the
result-cache salt — stay untouched).  Requesting ``specialized`` for a
shape the generator does not cover silently falls back to ``python``:
tier selection is a request, never an error and never a divergence.

This module reads no environment itself (determinism scope): the env
read happens inside :mod:`repro.config`, which is the sanctioned home
for knob resolution.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..config import kernel_mode

#: Registered kernel tiers, name -> resolver.  A resolver takes a
#: pipeline and returns a run loop ``(pipeline, min_passes, cap) ->
#: bool`` (True = truncated at the cycle cap), or None to decline.
_KERNELS: Dict[str, Callable] = {}


def kernel(name: str) -> Callable:
    """Decorator registering a kernel resolver under a CLI name."""
    def _register(func: Callable) -> Callable:
        _KERNELS[name] = func
        return func
    return _register


def kernel_names() -> Tuple[str, ...]:
    """All registered kernel tier names, sorted."""
    return tuple(sorted(_KERNELS))


def python_run_loop(pipeline, min_passes: int, cap: int) -> bool:
    """The portable FAME loop: advance until every thread finishes its
    passes, or the cycle cap truncates the run.  Reference semantics for
    every other tier (bit-identity is pinned by the golden-digest and
    equivalence suites run across tiers)."""
    threads = pipeline.threads
    advance = pipeline.advance
    # Plain loop rather than any(genexpr): this termination test runs
    # once per simulated cycle.
    while True:
        for thread in threads:
            if thread.finished_passes < min_passes:
                break
        else:
            return False
        if pipeline.cycle >= cap:
            return True
        advance(cap)


@kernel("python")
def _python_kernel(pipeline):
    return python_run_loop


@kernel("specialized")
def _specialized_kernel(pipeline):
    from ..core.kernel_cache import specialized_run_loop
    return specialized_run_loop(pipeline)


def resolve_run_loop(pipeline) -> Callable:
    """Pick the run loop for one ``run()`` call.

    ``python`` forces the portable loop; ``specialized`` and ``auto``
    both request the specializer and fall back to the portable loop for
    any shape it declines (third-party policy, wide machine).  Resolved
    per call, not per pipeline: mutable pipeline switches the key folds
    (``cycle_skip``, ``macro_spec``) are re-read each time, so tests
    that flip them between runs get the matching kernel variant.
    """
    if kernel_mode() == "python":
        return python_run_loop
    loop = _KERNELS["specialized"](pipeline)
    if loop is None:
        return python_run_loop
    return loop
