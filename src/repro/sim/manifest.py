"""Campaign manifests: the serializable *plan* stage of a campaign.

A :class:`CampaignManifest` names **what a campaign will run**
independently of running it: one content-addressed
:class:`ManifestEntry` per deduplicated simulation cell (store key, the
cell itself, a cost estimate, the exhibits that consume it) plus one
:class:`ExhibitPlan` per requested exhibit (its planned cell-key set and
the render-cache key derived from it).  The manifest round-trips through
JSON (``repro plan``), which is what makes the three-stage dataflow
shardable:

* **plan** — ``Campaign.plan()`` emits the manifest; it is a pure
  function of the exhibit set and context, so every machine planning
  the same campaign derives the same manifest;
* **execute** — each worker runs ``manifest.shard(ShardSpec(k, n))``
  worth of cells into a shared :class:`~repro.sim.store.DiskStore`
  (``SimEngine.execute_cells``); the K/N filter hashes only the entry
  keys, so shards are disjoint, exhaustive and machine-independent;
* **assemble** — any machine turns ``(manifest, store)`` into rendered
  exhibits; per-exhibit ``render_key`` values let untouched figures be
  served from the exhibit-render cache without touching a single run.

Entries are stored in engine submission order (costliest first), so an
executor replaying a manifest drains a worker pool exactly like the
in-process planner would.

Stale manifests fail loudly: every entry key is recomputed on load and
compared against the recorded one, so a manifest planned under a
different code-version salt (or edited by hand) raises
:class:`~repro.errors.ManifestError` instead of silently executing the
wrong cells.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..config import SMTConfig
from ..errors import ManifestError
from ..trace.workloads import Workload
from .engine import SweepCell
from .executors import ShardSpec
from .runner import RunSpec
from .store import CODE_VERSION_SALT, EXHIBIT_RENDER_SALT, canonical_json

#: Manifest document schema identifier.
MANIFEST_SCHEMA = "repro-manifest-v1"


def exhibit_render_key(name: str, version: int,
                       cell_keys: Sequence[str],
                       context: Dict,
                       salt: str = EXHIBIT_RENDER_SALT) -> str:
    """Cache key of one exhibit's rendered output.

    Hashes the exhibit's identity, its per-exhibit ``version``, the
    global render salt, the *sorted* planned cell-key set (the cells'
    keys already capture workload/policy/config/spec and the simulator
    code version) and the assembly context.  The context matters even
    though it determines the cell set: e.g. reordering ``--classes``
    keeps the same cells but permutes every table's columns.
    """
    payload = {
        "exhibit": name,
        "version": version,
        "salt": salt,
        "cells": sorted(cell_keys),
        "context": context,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class ManifestEntry:
    """One planned cell: store key, the cell, cost, owning exhibits."""

    key: str
    cell: SweepCell
    cost: Tuple[int, int]
    exhibits: Tuple[str, ...]

    def to_dict(self) -> Dict:
        return {
            "key": self.key,
            "workload": self.cell.workload.to_dict(),
            "policy": self.cell.policy,
            "config": self.cell.config.to_dict(),
            "spec": self.cell.spec.to_dict(),
            "cost": list(self.cost),
            "exhibits": list(self.exhibits),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ManifestEntry":
        cell = SweepCell(workload=Workload.from_dict(data["workload"]),
                         policy=data["policy"],
                         config=SMTConfig.from_dict(data["config"]),
                         spec=RunSpec.from_dict(data["spec"]))
        recomputed = cell.key()
        if recomputed != data["key"]:
            raise ManifestError(
                f"stale manifest entry: recorded key {data['key'][:12]}… "
                f"but this code computes {recomputed[:12]}… (planned "
                f"under a different code-version salt?) — re-run "
                f"'repro plan'")
        return cls(key=recomputed, cell=cell,
                   cost=tuple(data["cost"]),
                   exhibits=tuple(data["exhibits"]))


@dataclasses.dataclass(frozen=True)
class ExhibitPlan:
    """One exhibit's slice of the campaign, as planned."""

    name: str
    title: str
    version: int
    cell_keys: Tuple[str, ...]   # sorted
    render_key: str

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "title": self.title,
            "version": self.version,
            "cells": list(self.cell_keys),
            "render_key": self.render_key,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExhibitPlan":
        return cls(name=data["name"], title=data["title"],
                   version=data["version"],
                   cell_keys=tuple(data["cells"]),
                   render_key=data["render_key"])


@dataclasses.dataclass(frozen=True)
class CampaignManifest:
    """The complete, serializable plan of one campaign.

    Behaves as a sequence of :class:`SweepCell` in engine submission
    order, so anything that consumed the old ``Campaign.plan()`` list
    (``engine.run_cells(manifest)``, ``RunIndex.from_runs(manifest,
    runs)``) works unchanged — and additionally carries the keys, costs,
    exhibit ownership and render-cache identities that make the plan a
    shippable artifact.
    """

    entries: Tuple[ManifestEntry, ...]
    exhibits: Tuple[ExhibitPlan, ...]
    context: Dict
    salt: str = CODE_VERSION_SALT
    shard: Optional[str] = None   # "K/N" once filtered, else None

    # -- sequence-of-cells behaviour (the engine batch) -------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SweepCell]:
        return (entry.cell for entry in self.entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [entry.cell for entry in self.entries[index]]
        return self.entries[index].cell

    def cells(self) -> List[SweepCell]:
        """The planned cells, costliest first."""
        return [entry.cell for entry in self.entries]

    def keys(self) -> List[str]:
        """The content-addressed store keys, in batch order."""
        return [entry.key for entry in self.entries]

    # -- exhibit views ----------------------------------------------------

    def exhibit_plan(self, name: str) -> ExhibitPlan:
        for plan in self.exhibits:
            if plan.name == name:
                return plan
        raise ManifestError(f"exhibit {name!r} is not in this manifest "
                            f"(has: {[p.name for p in self.exhibits]})")

    def exhibit_cells(self, name: str) -> List[SweepCell]:
        """One exhibit's cells, in batch order."""
        wanted = set(self.exhibit_plan(name).cell_keys)
        return [entry.cell for entry in self.entries
                if entry.key in wanted]

    def total_cost(self) -> int:
        """Sum of the entries' primary cost weights (work estimate)."""
        return sum(entry.cost[0] for entry in self.entries)

    # -- sharding ---------------------------------------------------------

    def filter_shard(self, shard: ShardSpec) -> "CampaignManifest":
        """This shard's deterministic slice of the manifest.

        Filters entries by key hash (:meth:`ShardSpec.owns`); the K
        slices of a campaign are disjoint and their union is the whole
        manifest.  Exhibit plans and render keys are kept verbatim —
        they describe the campaign, not the slice.
        """
        if self.shard is not None:
            raise ManifestError(
                f"manifest is already shard {self.shard}; shard the "
                f"full manifest instead")
        return dataclasses.replace(
            self,
            entries=tuple(entry for entry in self.entries
                          if shard.owns(entry.key)),
            shard=str(shard))

    # -- JSON round trip --------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "salt": self.salt,
            "shard": self.shard,
            "context": self.context,
            "cells": [entry.to_dict() for entry in self.entries],
            "exhibits": [plan.to_dict() for plan in self.exhibits],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignManifest":
        if data.get("schema") != MANIFEST_SCHEMA:
            raise ManifestError(
                f"not a {MANIFEST_SCHEMA} document "
                f"(schema: {data.get('schema')!r})")
        if data.get("salt") != CODE_VERSION_SALT:
            raise ManifestError(
                f"manifest was planned under code-version salt "
                f"{data.get('salt')!r}, this code is "
                f"{CODE_VERSION_SALT!r} — re-run 'repro plan'")
        return cls(
            entries=tuple(ManifestEntry.from_dict(entry)
                          for entry in data["cells"]),
            exhibits=tuple(ExhibitPlan.from_dict(plan)
                           for plan in data["exhibits"]),
            context=data["context"],
            salt=data["salt"],
            shard=data.get("shard"),
        )

    def to_json(self) -> str:
        """Stable JSON text (round-trips through :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignManifest":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ManifestError(f"manifest is not valid JSON: {error}") \
                from None
        if not isinstance(data, dict):
            raise ManifestError("manifest must be a JSON object")
        return cls.from_dict(data)
