"""Aggregation of runs into the per-class averages the figures plot."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from ..config import SMTConfig
from ..metrics import fairness as fairness_metric
from ..metrics import throughput as throughput_metric
from .runner import RunSpec, WorkloadRun

#: Lookup of one benchmark's single-thread reference IPC.
ReferenceFn = Callable[[str], float]


@dataclasses.dataclass
class ClassAggregate:
    """Average metrics of one policy over one workload class."""

    klass: str
    policy: str
    throughput: float
    fairness: float
    executed: float
    cpi: float
    ed2: float
    runs: List[WorkloadRun] = dataclasses.field(repr=False,
                                                default_factory=list)


def run_fairness(run: WorkloadRun, config: Optional[SMTConfig] = None,
                 spec: Optional[RunSpec] = None, engine=None,
                 references: Optional[ReferenceFn] = None) -> float:
    """Equation (2) for one run, using memoized single-thread references.

    ``references`` overrides where reference IPCs come from (the exhibit
    assemble phase supplies a pure lookup into its planned run index);
    otherwise the engine simulates/recalls them on demand.
    """
    if references is None:
        if engine is None:
            from .engine import get_engine
            engine = get_engine()
        def references(name: str) -> float:
            return engine.single_thread_ipc(name, config, spec or run.spec)
    st_ipcs = [references(name) for name in run.workload.benchmarks]
    return fairness_metric(run.ipcs, st_ipcs)


def aggregate_by_class(runs: Sequence[WorkloadRun],
                       config: Optional[SMTConfig] = None,
                       spec: Optional[RunSpec] = None,
                       engine=None,
                       references: Optional[ReferenceFn] = None
                       ) -> ClassAggregate:
    """Average one policy's runs (all from one class) into a point."""
    if not runs:
        raise ValueError("cannot aggregate zero runs")
    klass = runs[0].workload.klass
    policy = runs[0].policy
    for run in runs:
        if run.workload.klass != klass or run.policy != policy:
            raise ValueError("aggregate_by_class needs a homogeneous group")
    throughputs = [run.throughput for run in runs]
    fairnesses = [run_fairness(run, config, spec, engine=engine,
                               references=references)
                  for run in runs]
    executed = [float(run.executed) for run in runs]
    cpis = [run.cpi for run in runs]
    ed2s = [run.ed2() for run in runs]
    count = len(runs)
    return ClassAggregate(
        klass=klass,
        policy=policy,
        throughput=throughput_metric(throughputs),
        fairness=sum(fairnesses) / count,
        executed=sum(executed) / count,
        cpi=sum(cpis) / count,
        ed2=sum(ed2s) / count,
        runs=list(runs),
    )


def normalize_to(values: Dict[str, float],
                 baseline_key: str) -> Dict[str, float]:
    """Normalize a {policy: value} mapping to one policy's value."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError(f"baseline {baseline_key!r} value is zero")
    return {key: value / base for key, value in values.items()}
