"""Workload execution with run memoization.

The paper's simulation campaign runs every Table 2 workload under every
policy; many figures then slice the same runs differently.  This module
provides exactly that: :func:`run_workload` simulates one (workload,
policy, config) combination under a :class:`RunSpec` and memoizes the
outcome, so each combination is simulated once per process no matter how
many figures consume it.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Tuple

from ..config import SMTConfig, baseline
from ..core.processor import SMTProcessor, SimResult
from ..trace.generator import generate_trace
from ..trace.trace import Trace
from ..trace.workloads import Workload

#: Environment variable selecting longer, higher-fidelity runs.
FULL_ENV_VAR = "REPRO_FULL"


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Measurement parameters (trace scale and FAME settings).

    The defaults are sized for Python-speed experiment sweeps; set the
    ``REPRO_FULL`` environment variable (see :func:`default_spec`) or pass
    a custom spec for longer runs.
    """

    trace_len: int = 3000
    seed: int = 1
    min_passes: int = 1
    max_cycles: int = 2_000_000


def default_spec() -> RunSpec:
    """The default run spec, scaled up when ``REPRO_FULL`` is set."""
    if os.environ.get(FULL_ENV_VAR):
        return RunSpec(trace_len=12000, max_cycles=8_000_000)
    return RunSpec()


@dataclasses.dataclass
class WorkloadRun:
    """One memoized simulation outcome."""

    workload: Workload
    policy: str
    spec: RunSpec
    result: SimResult

    @property
    def ipcs(self) -> List[float]:
        return self.result.ipcs

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def executed(self) -> int:
        return self.result.total_executed

    @property
    def cpi(self) -> float:
        return self.result.avg_cpi

    def ed2(self) -> float:
        return self.result.ed2()


_RUN_CACHE: Dict[Tuple, WorkloadRun] = {}


def clear_run_cache() -> None:
    """Drop all memoized runs (tests use this for isolation)."""
    _RUN_CACHE.clear()


def build_traces(workload: Workload, spec: RunSpec) -> List[Trace]:
    """Generate (memoized) traces for each thread of a workload."""
    return [generate_trace(name, spec.trace_len, spec.seed)
            for name in workload.benchmarks]


def run_workload(workload: Workload, policy: str,
                 config: Optional[SMTConfig] = None,
                 spec: Optional[RunSpec] = None) -> WorkloadRun:
    """Simulate one workload under one policy (memoized)."""
    if config is None:
        config = baseline()
    if spec is None:
        spec = default_spec()
    key = (workload.klass, workload.benchmarks, policy, config, spec)
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        return cached
    traces = build_traces(workload, spec)
    processor = SMTProcessor(config.with_policy(policy), traces)
    result = processor.run(min_passes=spec.min_passes,
                           max_cycles=spec.max_cycles)
    run = WorkloadRun(workload=workload, policy=policy, spec=spec,
                      result=result)
    _RUN_CACHE[key] = run
    return run
