"""Workload execution on top of the simulation engine.

The paper's simulation campaign runs every Table 2 workload under every
policy; many figures then slice the same runs differently.
:func:`run_workload` simulates one (workload, policy, config) combination
under a :class:`RunSpec`, delegating to the process-wide default
:class:`~repro.sim.engine.SimEngine`, which memoizes outcomes (and, when
configured with a :class:`~repro.sim.store.DiskStore`, persists them
across invocations), so each combination is simulated once no matter how
many figures consume it.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional

from ..core.processor import SimResult
from ..trace.generator import generate_trace
from ..trace.trace import Trace
from ..trace.workloads import Workload

#: Environment variable selecting longer, higher-fidelity runs.
FULL_ENV_VAR = "REPRO_FULL"


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Measurement parameters (trace scale and FAME settings).

    The defaults are sized for Python-speed experiment sweeps; set the
    ``REPRO_FULL`` environment variable (see :func:`default_spec`) or pass
    a custom spec for longer runs.
    """

    trace_len: int = 3000
    seed: int = 1
    min_passes: int = 1
    max_cycles: int = 2_000_000

    def to_dict(self) -> Dict[str, int]:
        """Canonical JSON-ready form."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "RunSpec":
        return cls(**data)


def default_spec() -> RunSpec:
    """The default run spec, scaled up when ``REPRO_FULL`` is set."""
    if os.environ.get(FULL_ENV_VAR):
        return RunSpec(trace_len=12000, max_cycles=8_000_000)
    return RunSpec()


@dataclasses.dataclass
class WorkloadRun:
    """One memoized simulation outcome."""

    workload: Workload
    policy: str
    spec: RunSpec
    result: SimResult

    @property
    def ipcs(self) -> List[float]:
        return self.result.ipcs

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def executed(self) -> int:
        return self.result.total_executed

    @property
    def cpi(self) -> float:
        return self.result.avg_cpi

    def ed2(self) -> float:
        return self.result.ed2()


def clear_run_cache() -> None:
    """Forget the default engine's in-process results (tests use this).

    Clears both the run memo and the store's in-process entries via
    :meth:`~repro.sim.engine.SimEngine.clear`; entries a ``DiskStore``
    already persisted remain on disk and are re-read on demand.
    """
    from .engine import get_engine
    get_engine().clear()


def build_traces(workload: Workload, spec: RunSpec) -> List[Trace]:
    """Generate (memoized) traces for each thread of a workload."""
    return [generate_trace(name, spec.trace_len, spec.seed)
            for name in workload.benchmarks]


def run_workload(workload: Workload, policy: str,
                 config=None, spec: Optional[RunSpec] = None) -> WorkloadRun:
    """Simulate one workload under one policy (memoized on the engine)."""
    from .engine import get_engine
    return get_engine().run_workload(workload, policy, config, spec)
