"""Persistent result stores and content-addressed cache keys.

The simulator is a pure function of (workload, policy, config, run spec):
the same cell always produces the same :class:`SimResult`, bit for bit.
That makes results content-addressable.  :func:`cache_key` hashes the
canonical JSON encoding of a cell (plus a code-version salt, bumped
whenever simulation semantics change) into a stable hex key, and the
stores below map those keys to results:

* :class:`MemoryStore` — a plain in-process dict (the default, matching
  the old per-process memoization);
* :class:`DiskStore` — one JSON file per result under a cache directory,
  fronted by a memory layer.  Writes are atomic (temp file + rename) so
  concurrent sweep processes sharing one cache directory are safe.

Because :meth:`SimResult.to_dict` contains no floats, a disk round trip
reconstructs results exactly; cached and freshly simulated campaigns are
indistinguishable.

Salt-bump policy (machine-checked)
----------------------------------
``CODE_VERSION_SALT`` participates in every cache key.  Bump it in the
same change whenever the simulator *could* produce a different
:class:`SimResult` for some cell — a timing-model change, a policy
behaviour change, a trace-generator change, a config-default change —
so stale on-disk entries silently miss instead of serving wrong
results.  Bump it even when golden-digest tests still pass on their
matrix (the matrix is a sample, not a proof), and whenever you
re-record ``tests/data/golden_digests.json``.

This policy is no longer enforced by this docstring alone: the
``salt-fingerprint`` rule of ``repro lint`` (see
:mod:`repro.analysis.fingerprint`) pins a normalized-AST fingerprint of
every salt-scoped module in ``repro/analysis/fingerprints.json`` and
**fails the lint gate** when a module's code changes without a bump of
its governing salt.  A pure-performance refactor whose bit-identity is
guaranteed by construction and verified by the golden digests may keep
the salt — re-pin the baseline with ``repro lint
--accept-fingerprints`` in the same change (and after any bump).  When
in doubt, bump: the only cost is one cold campaign, while a stale hit
is a wrong figure.  Old-salt entries stay on disk until ``repro cache
prune --stale-salts`` removes them.

History: ``v1`` PR 1 (engine introduction) → ``v2`` PR 3 (event-driven
cycle skipping + hot-path rework; results verified bit-identical, but
the inner loop was rebuilt wholesale).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from typing import Dict, Iterator, Optional

from ..core.processor import SimResult

#: Bump whenever a change to the simulator alters (or could alter) what a
#: cell produces; see the salt-bump policy in the module docstring.
CODE_VERSION_SALT = "sim-engine-v2"

#: Render-cache counterpart of ``CODE_VERSION_SALT``: participates in
#: every exhibit render key (:func:`repro.sim.manifest.exhibit_render_key`).
#: Bump it whenever *presentation* changes — a renderer, section layout,
#: header or payload-shape change in ``experiments/`` — so cached
#: exhibit renderings (which skip assembly entirely) can never serve an
#: old look of a figure.  A change confined to one exhibit's ``assemble``
#: can bump that exhibit's ``version`` attribute instead, invalidating
#: only its own cache entries.  Simulation-semantics changes need no
#: render bump: the cell keys inside the render key already carry
#: ``CODE_VERSION_SALT``.
EXHIBIT_RENDER_SALT = "exhibit-render-v1"

#: Subdirectory of a ``--cache-dir`` holding the exhibit-render cache
#: (kept out of :class:`DiskStore` scans: those entries are renderings,
#: not simulation results).
EXHIBIT_DIR = "exhibits"


def atomic_write_json(path: str, payload, indent=None,
                      trailing_newline: bool = False) -> None:
    """Write JSON so readers never observe a torn file.

    The payload lands in a same-directory temp file first and is moved
    into place with ``os.replace`` — atomic on POSIX — so a concurrent
    reader (another sharded executor on the same ``--cache-dir``) sees
    either the complete old content, the complete new content, or no
    file; never a partial JSON document.  A crash mid-write leaves only
    a ``*.tmp`` orphan, which loaders and :meth:`DiskStore.entries`
    ignore.  Raises ``OSError`` on failure after discarding the temp
    file; callers decide whether persistence is best-effort.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory or ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=indent)
            if trailing_newline:
                handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def canonical_json(payload) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(workload, policy, config, spec,
              salt: str = CODE_VERSION_SALT) -> str:
    """Stable content hash identifying one simulation cell."""
    payload = {
        "workload": workload.to_dict(),
        "policy": policy,
        "config": config.to_dict(),
        "spec": spec.to_dict(),
        "salt": salt,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


class ResultStore:
    """Base store: counts hits/misses/puts around subclass storage."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def get(self, key: str) -> Optional[SimResult]:
        result = self._load(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        self.puts += 1
        self._save(key, result)

    def contains(self, key: str) -> bool:
        """Whether the store (probably) holds ``key`` — without loading.

        The execute-only stage of a sharded campaign only needs to know
        *that* a result exists, not what it is; subclasses answer from
        metadata (an existence check) instead of parsing the payload.
        A corrupt on-disk entry may answer ``True`` here and still miss
        on :meth:`get` — the assembling invocation then re-simulates
        that cell, so correctness never depends on this answer.
        """
        return self._load(key) is not None

    def clear(self) -> None:
        raise NotImplementedError

    def _load(self, key: str) -> Optional[SimResult]:
        raise NotImplementedError

    def _save(self, key: str, result: SimResult) -> None:
        raise NotImplementedError


class MemoryStore(ResultStore):
    """In-process dict store (per-process memoization)."""

    def __init__(self) -> None:
        super().__init__()
        self._results: Dict[str, SimResult] = {}

    def __len__(self) -> int:
        return len(self._results)

    def clear(self) -> None:
        self._results.clear()

    def contains(self, key: str) -> bool:
        return key in self._results

    def _load(self, key: str) -> Optional[SimResult]:
        return self._results.get(key)

    def _save(self, key: str, result: SimResult) -> None:
        self._results[key] = result


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """Metadata of one on-disk result (``repro cache`` bookkeeping)."""

    key: str
    path: str
    salt: Optional[str]   # None when the payload is unreadable/corrupt
    mtime: float
    size_bytes: int


@dataclasses.dataclass
class PruneResult:
    """Outcome of a :meth:`DiskStore.prune` pass."""

    examined: int = 0
    removed: int = 0
    bytes_freed: int = 0
    kept: int = 0


class DiskStore(ResultStore):
    """JSON-file store under ``root``, fronted by a memory layer.

    Layout: ``root/<key[:2]>/<key>.json`` (fan-out keeps directories
    small on big campaigns).  Unreadable or corrupt entries are treated
    as misses, never as errors.
    """

    def __init__(self, root: str) -> None:
        super().__init__()
        self.root = root
        self._memory: Dict[str, SimResult] = {}
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def contains(self, key: str) -> bool:
        """Existence check only — no read, parse or memory-layer fill.

        Keeps re-running a shard over a populated shared store at
        ``os.stat`` cost per cell instead of loading every result.
        """
        return key in self._memory or os.path.exists(self._path(key))

    def _walk(self):
        """Walk the result entries, skipping the exhibit-render cache.

        Both levels are sorted so every scan-derived report (``stats``,
        ``prune`` logs, ``__len__`` tie-breaks) is independent of
        filesystem enumeration order.
        """
        for dirpath, dirnames, filenames in os.walk(self.root):
            if dirpath == self.root and EXHIBIT_DIR in dirnames:
                dirnames.remove(EXHIBIT_DIR)
            dirnames.sort()
            yield dirpath, dirnames, sorted(filenames)

    def __len__(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in self._walk():
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    def clear(self) -> None:
        """Drop the memory layer (disk entries persist by design)."""
        self._memory.clear()

    def _load(self, key: str) -> Optional[SimResult]:
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = SimResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self._memory[key] = result
        return result

    # --- maintenance (the `repro cache` subcommand) -----------------------

    def entries(self, need_salt: bool = True) -> Iterator[CacheEntry]:
        """Scan the on-disk entries (metadata only, memory layer aside).

        Reading the salt means parsing every payload; callers that only
        need file metadata (age-based pruning) pass ``need_salt=False``
        to keep the scan at ``os.stat`` cost.
        """
        for dirpath, _dirnames, filenames in self._walk():
            for filename in filenames:
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                salt: Optional[str] = None
                if need_salt:
                    try:
                        with open(path, "r", encoding="utf-8") as handle:
                            payload = json.load(handle)
                        salt = payload.get("salt")
                    except (OSError, ValueError):
                        salt = None
                yield CacheEntry(key=filename[:-len(".json")], path=path,
                                 salt=salt, mtime=stat.st_mtime,
                                 size_bytes=stat.st_size)

    def stats(self) -> Dict:
        """Aggregate store statistics, grouped by code-version salt."""
        per_salt: Dict[str, Dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for entry in self.entries():
            label = entry.salt if entry.salt is not None else "<corrupt>"
            bucket = per_salt.setdefault(label,
                                         {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
            total_entries += 1
            total_bytes += entry.size_bytes
            oldest = entry.mtime if oldest is None \
                else min(oldest, entry.mtime)
            newest = entry.mtime if newest is None \
                else max(newest, entry.mtime)
        return {
            "root": self.root,
            "current_salt": CODE_VERSION_SALT,
            "entries": total_entries,
            "bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "by_salt": per_salt,
        }

    def prune(self, stale_salts: bool = False,
              older_than_days: Optional[float] = None,
              now: Optional[float] = None,
              dry_run: bool = False) -> PruneResult:
        """Delete entries written under old salts and/or too long ago.

        Args:
            stale_salts: Remove entries whose payload salt differs from
                the current ``CODE_VERSION_SALT`` (including corrupt
                payloads, which can never hit anyway).
            older_than_days: Remove entries whose mtime is older than
                this many days.
            now: Reference timestamp for the age test (defaults to
                ``time.time()``; tests pin it).
            dry_run: Count what would go without deleting anything.

        An entry is removed when it matches *any* enabled criterion.
        At least one criterion must be enabled.
        """
        if not stale_salts and older_than_days is None:
            raise ValueError(
                "prune needs a criterion: stale_salts and/or "
                "older_than_days")
        # Pruning is genuinely wall-clock maintenance (entry age), not
        # simulation semantics; tests pin `now`.
        reference = time.time() if now is None else now  # lint: disable=determinism-hazard
        cutoff = (reference - older_than_days * 86400.0
                  if older_than_days is not None else None)
        outcome = PruneResult()
        for entry in self.entries(need_salt=stale_salts):
            outcome.examined += 1
            doomed = (stale_salts and entry.salt != CODE_VERSION_SALT) or \
                     (cutoff is not None and entry.mtime < cutoff)
            if not doomed:
                outcome.kept += 1
                continue
            if not dry_run:
                try:
                    os.unlink(entry.path)
                except OSError:
                    outcome.kept += 1
                    continue
                self._memory.pop(entry.key, None)
            outcome.removed += 1
            outcome.bytes_freed += entry.size_bytes
        return outcome

    def _save(self, key: str, result: SimResult) -> None:
        # Persisting is best-effort: the result is already in hand (and
        # in the memory layer), so a full disk or read-only cache must
        # not abort a campaign — it just forfeits reuse of this entry.
        # The atomic temp-file + os.replace protocol is what lets N
        # sharded executors share one cache directory: a reader can
        # never observe a torn entry, only a hit or a miss.
        self._memory[key] = result
        payload = {"key": key, "salt": CODE_VERSION_SALT,
                   "result": result.to_dict()}
        try:
            atomic_write_json(self._path(key), payload)
        except OSError:
            pass


class ExhibitRenderCache:
    """Persisted exhibit renderings, keyed by planned-cell-set hash.

    Entries live beside (not inside) a :class:`DiskStore`'s result
    fan-out, under ``root/``.  Each holds one
    ``ExhibitResult.to_dict()`` payload keyed by
    :func:`repro.sim.manifest.exhibit_render_key` — a sha256 of the
    exhibit's planned cell-key set, its ``version``, the assembly
    context and ``EXHIBIT_RENDER_SALT`` — so a hit proves the exhibit
    would assemble to exactly this document and ``repro all`` can skip
    untouched figures without reading a single run.  Writes use the same
    atomic protocol as the result store; unreadable entries are misses.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.puts = 0
        os.makedirs(self.root, exist_ok=True)

    def _path(self, render_key: str) -> str:
        return os.path.join(self.root, render_key + ".json")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries(need_salt=False))

    def get(self, render_key: str) -> Optional[Dict]:
        """The cached ``ExhibitResult.to_dict()`` payload, or ``None``."""
        try:
            with open(self._path(render_key), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
            document = payload["result"]
            if not isinstance(document, dict):
                raise ValueError("malformed cache entry")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return document

    def put(self, render_key: str, document: Dict) -> None:
        """Persist one rendering (best-effort, atomic)."""
        self.puts += 1
        payload = {"render_key": render_key,
                   "salt": EXHIBIT_RENDER_SALT,
                   "result": document}
        try:
            atomic_write_json(self._path(render_key), payload)
        except OSError:
            pass

    # --- maintenance (the `repro cache` subcommand) -----------------------
    #
    # Render entries are never invalidated in place — a presentation
    # change bumps EXHIBIT_RENDER_SALT (or an exhibit's version) and the
    # old keys simply stop being asked for — so without pruning the pool
    # grows one orphan per superseded rendering, forever.  Same scan /
    # stats / prune contract as DiskStore, against the render salt.

    def entries(self, need_salt: bool = True) -> Iterator[CacheEntry]:
        """Scan the cached renderings (metadata only), in key order."""
        try:
            filenames = sorted(os.listdir(self.root))
        except OSError:
            return
        for filename in filenames:
            if not filename.endswith(".json"):
                continue
            path = os.path.join(self.root, filename)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            salt: Optional[str] = None
            if need_salt:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    salt = payload.get("salt")
                except (OSError, ValueError):
                    salt = None
            yield CacheEntry(key=filename[:-len(".json")], path=path,
                             salt=salt, mtime=stat.st_mtime,
                             size_bytes=stat.st_size)

    def stats(self) -> Dict:
        """Aggregate render-pool statistics, grouped by render salt."""
        per_salt: Dict[str, Dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        for entry in self.entries():
            label = entry.salt if entry.salt is not None else "<corrupt>"
            bucket = per_salt.setdefault(label,
                                         {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
            total_entries += 1
            total_bytes += entry.size_bytes
        return {
            "root": self.root,
            "current_salt": EXHIBIT_RENDER_SALT,
            "entries": total_entries,
            "bytes": total_bytes,
            "by_salt": per_salt,
        }

    def prune(self, stale_salts: bool = False,
              older_than_days: Optional[float] = None,
              now: Optional[float] = None,
              dry_run: bool = False) -> PruneResult:
        """Delete renderings under old salts and/or written too long ago.

        Same semantics as :meth:`DiskStore.prune`, with staleness judged
        against ``EXHIBIT_RENDER_SALT`` (corrupt payloads count as
        stale — they can never hit).
        """
        if not stale_salts and older_than_days is None:
            raise ValueError(
                "prune needs a criterion: stale_salts and/or "
                "older_than_days")
        # Pruning is genuinely wall-clock maintenance (entry age), not
        # simulation semantics; tests pin `now`.
        reference = time.time() if now is None else now  # lint: disable=determinism-hazard
        cutoff = (reference - older_than_days * 86400.0
                  if older_than_days is not None else None)
        outcome = PruneResult()
        for entry in self.entries(need_salt=stale_salts):
            outcome.examined += 1
            doomed = \
                (stale_salts and entry.salt != EXHIBIT_RENDER_SALT) or \
                (cutoff is not None and entry.mtime < cutoff)
            if not doomed:
                outcome.kept += 1
                continue
            if not dry_run:
                try:
                    os.unlink(entry.path)
                except OSError:
                    outcome.kept += 1
                    continue
            outcome.removed += 1
            outcome.bytes_freed += entry.size_bytes
        return outcome
