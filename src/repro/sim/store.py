"""Persistent result stores and content-addressed cache keys.

The simulator is a pure function of (workload, policy, config, run spec):
the same cell always produces the same :class:`SimResult`, bit for bit.
That makes results content-addressable.  :func:`cache_key` hashes the
canonical JSON encoding of a cell (plus a code-version salt, bumped
whenever simulation semantics change) into a stable hex key, and the
stores below map those keys to results:

* :class:`MemoryStore` — a plain in-process dict (the default, matching
  the old per-process memoization);
* :class:`DiskStore` — one JSON file per result under a cache directory,
  fronted by a memory layer.  Writes are atomic (temp file + rename) so
  concurrent sweep processes sharing one cache directory are safe.

Because :meth:`SimResult.to_dict` contains no floats, a disk round trip
reconstructs results exactly; cached and freshly simulated campaigns are
indistinguishable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from ..core.processor import SimResult

#: Bump whenever a change to the simulator alters what a cell produces;
#: stale on-disk entries then miss instead of serving wrong results.
CODE_VERSION_SALT = "sim-engine-v1"


def canonical_json(payload) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(workload, policy, config, spec,
              salt: str = CODE_VERSION_SALT) -> str:
    """Stable content hash identifying one simulation cell."""
    payload = {
        "workload": workload.to_dict(),
        "policy": policy,
        "config": config.to_dict(),
        "spec": spec.to_dict(),
        "salt": salt,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


class ResultStore:
    """Base store: counts hits/misses/puts around subclass storage."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def get(self, key: str) -> Optional[SimResult]:
        result = self._load(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        self.puts += 1
        self._save(key, result)

    def clear(self) -> None:
        raise NotImplementedError

    def _load(self, key: str) -> Optional[SimResult]:
        raise NotImplementedError

    def _save(self, key: str, result: SimResult) -> None:
        raise NotImplementedError


class MemoryStore(ResultStore):
    """In-process dict store (per-process memoization)."""

    def __init__(self) -> None:
        super().__init__()
        self._results: Dict[str, SimResult] = {}

    def __len__(self) -> int:
        return len(self._results)

    def clear(self) -> None:
        self._results.clear()

    def _load(self, key: str) -> Optional[SimResult]:
        return self._results.get(key)

    def _save(self, key: str, result: SimResult) -> None:
        self._results[key] = result


class DiskStore(ResultStore):
    """JSON-file store under ``root``, fronted by a memory layer.

    Layout: ``root/<key[:2]>/<key>.json`` (fan-out keeps directories
    small on big campaigns).  Unreadable or corrupt entries are treated
    as misses, never as errors.
    """

    def __init__(self, root: str) -> None:
        super().__init__()
        self.root = root
        self._memory: Dict[str, SimResult] = {}
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def __len__(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    def clear(self) -> None:
        """Drop the memory layer (disk entries persist by design)."""
        self._memory.clear()

    def _load(self, key: str) -> Optional[SimResult]:
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = SimResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self._memory[key] = result
        return result

    def _save(self, key: str, result: SimResult) -> None:
        # Persisting is best-effort: the result is already in hand (and
        # in the memory layer), so a full disk or read-only cache must
        # not abort a campaign — it just forfeits reuse of this entry.
        self._memory[key] = result
        path = self._path(key)
        payload = {"key": key, "salt": CODE_VERSION_SALT,
                   "result": result.to_dict()}
        tmp_path = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                            suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
