"""Policy x workload-class sweeps (the shape of every figure)."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SMTConfig
from ..trace.workloads import get_workloads
from .results import ClassAggregate, aggregate_by_class
from .runner import RunSpec, run_workload


@dataclasses.dataclass
class PolicySweep:
    """Results of sweeping policies over workload classes.

    ``cells[(policy, klass)]`` holds the per-class aggregate.
    """

    policies: Tuple[str, ...]
    classes: Tuple[str, ...]
    cells: Dict[Tuple[str, str], ClassAggregate]

    def metric(self, policy: str, klass: str, name: str) -> float:
        return getattr(self.cells[(policy, klass)], name)

    def row(self, policy: str, name: str) -> List[float]:
        """One policy's metric across all classes, in class order."""
        return [self.metric(policy, klass, name) for klass in self.classes]

    def average(self, policy: str, name: str) -> float:
        values = self.row(policy, name)
        return sum(values) / len(values)

    def relative(self, policy: str, baseline: str,
                 name: str) -> List[float]:
        """Per-class ratio of one policy's metric to a baseline policy's."""
        own = self.row(policy, name)
        base = self.row(baseline, name)
        return [value / b if b else float("inf")
                for value, b in zip(own, base)]


def sweep_policies(policies: Sequence[str], classes: Sequence[str],
                   config: Optional[SMTConfig] = None,
                   spec: Optional[RunSpec] = None,
                   workloads_per_class: Optional[int] = None) -> PolicySweep:
    """Run every policy on every workload of the given classes.

    Args:
        policies: Policy registry names.
        classes: Table 2 class names (e.g. ``("ILP2", "MIX2", "MEM2")``).
        config: Machine configuration (baseline when omitted).
        spec: Run spec (scaled default when omitted).
        workloads_per_class: Optional cap on workloads per class, for
            quick looks; figures use the full Table 2 set.
    """
    cells: Dict[Tuple[str, str], ClassAggregate] = {}
    for klass in classes:
        workloads = get_workloads(klass)
        if workloads_per_class is not None:
            workloads = workloads[:workloads_per_class]
        for policy in policies:
            runs = [run_workload(workload, policy, config, spec)
                    for workload in workloads]
            cells[(policy, klass)] = aggregate_by_class(runs, config, spec)
    return PolicySweep(policies=tuple(policies), classes=tuple(classes),
                       cells=cells)
