"""Policy x workload-class sweeps (the shape of every figure).

Sweeps are split into the same two pure phases as the exhibit API:
:func:`plan_policy_sweep` declares the full cross product of
(policy, workload) cells — plus the single-thread reference cells the
fairness metric needs — and :func:`assemble_policy_sweep` folds the
memoized runs of exactly those cells into a :class:`PolicySweep`.
:func:`sweep_policies` glues the phases together through an engine for
direct callers; campaign-level callers plan first (the planned cells
become :class:`~repro.sim.manifest.CampaignManifest` entries, batched
and deduplicated across exhibits), execute anywhere — any executor,
any shard — and assemble later from the shared store.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SMTConfig, baseline
from ..trace.workloads import Workload, get_workloads
from .engine import ProgressFn, RunIndex, SweepCell, reference_cell
from .results import ClassAggregate, aggregate_by_class
from .runner import RunSpec, default_spec


@dataclasses.dataclass
class PolicySweep:
    """Results of sweeping policies over workload classes.

    ``cells[(policy, klass)]`` holds the per-class aggregate.
    """

    policies: Tuple[str, ...]
    classes: Tuple[str, ...]
    cells: Dict[Tuple[str, str], ClassAggregate]

    def metric(self, policy: str, klass: str, name: str) -> float:
        return getattr(self.cells[(policy, klass)], name)

    def row(self, policy: str, name: str) -> List[float]:
        """One policy's metric across all classes, in class order."""
        return [self.metric(policy, klass, name) for klass in self.classes]

    def average(self, policy: str, name: str) -> float:
        values = self.row(policy, name)
        return sum(values) / len(values)

    def relative(self, policy: str, baseline: str,
                 name: str) -> List[float]:
        """Per-class ratio of one policy's metric to a baseline policy's."""
        own = self.row(policy, name)
        base = self.row(baseline, name)
        return [value / b if b else float("inf")
                for value, b in zip(own, base)]


def _sweep_workloads(classes: Sequence[str],
                     workloads_per_class: Optional[int]
                     ) -> Dict[str, List[Workload]]:
    return {klass: get_workloads(klass, limit=workloads_per_class)
            for klass in classes}


def plan_policy_sweep(policies: Sequence[str], classes: Sequence[str],
                      config: Optional[SMTConfig] = None,
                      spec: Optional[RunSpec] = None,
                      workloads_per_class: Optional[int] = None
                      ) -> List[SweepCell]:
    """Declare every cell a policy sweep derives from (pure).

    The list covers the full (policy x workload) cross product plus one
    single-thread reference cell per distinct benchmark — everything
    :func:`assemble_policy_sweep` will look up, and nothing else.
    """
    config = config if config is not None else baseline()
    spec = spec if spec is not None else default_spec()
    by_class = _sweep_workloads(classes, workloads_per_class)
    cells = [SweepCell.make(workload, policy, config, spec)
             for klass in classes
             for policy in policies
             for workload in by_class[klass]]
    benchmarks = sorted({name
                         for workloads in by_class.values()
                         for workload in workloads
                         for name in workload.benchmarks})
    cells.extend(reference_cell(name, config, spec)
                 for name in benchmarks)
    return cells


def assemble_policy_sweep(policies: Sequence[str], classes: Sequence[str],
                          runs: RunIndex,
                          config: Optional[SMTConfig] = None,
                          spec: Optional[RunSpec] = None,
                          workloads_per_class: Optional[int] = None
                          ) -> PolicySweep:
    """Fold the planned cells' memoized runs into a sweep (pure)."""
    config = config if config is not None else baseline()
    spec = spec if spec is not None else default_spec()
    by_class = _sweep_workloads(classes, workloads_per_class)

    def references(name: str) -> float:
        return runs.single_thread_ipc(name, config, spec)

    cells: Dict[Tuple[str, str], ClassAggregate] = {}
    for klass in classes:
        for policy in policies:
            group = [runs[SweepCell.make(workload, policy, config, spec)]
                     for workload in by_class[klass]]
            cells[(policy, klass)] = aggregate_by_class(
                group, config, spec, references=references)
    return PolicySweep(policies=tuple(policies), classes=tuple(classes),
                       cells=cells)


def sweep_policies(policies: Sequence[str], classes: Sequence[str],
                   config: Optional[SMTConfig] = None,
                   spec: Optional[RunSpec] = None,
                   workloads_per_class: Optional[int] = None,
                   engine=None,
                   progress: Optional[ProgressFn] = None) -> PolicySweep:
    """Run every policy on every workload of the given classes.

    Plans the sweep, submits the whole cell set (sweep cells plus
    fairness references) to the engine in **one batch**, and assembles
    the aggregates from the resulting run index.

    Args:
        policies: Policy registry names.
        classes: Table 2 class names (e.g. ``("ILP2", "MIX2", "MEM2")``).
        config: Machine configuration (baseline when omitted).
        spec: Run spec (scaled default when omitted).
        workloads_per_class: Optional cap on workloads per class, for
            quick looks; figures use the full Table 2 set.
        engine: Simulation engine (process default when omitted).
        progress: Per-cell progress callback, forwarded to the engine.
    """
    if engine is None:
        from .engine import get_engine
        engine = get_engine()
    cells = plan_policy_sweep(policies, classes, config, spec,
                              workloads_per_class)
    index = engine.run_index(cells, progress=progress)
    return assemble_policy_sweep(policies, classes, index, config, spec,
                                 workloads_per_class)
