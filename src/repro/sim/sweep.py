"""Policy x workload-class sweeps (the shape of every figure).

Sweeps build the full cross product of (policy, workload) cells — plus
the single-thread reference cells the fairness metric needs — and submit
them to the simulation engine in **one batch**, so a parallel backend
overlaps every outstanding simulation of the campaign instead of walking
nested loops serially.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SMTConfig, baseline
from ..trace.workloads import get_workloads
from .engine import ProgressFn, SweepCell, reference_cell
from .results import ClassAggregate, aggregate_by_class
from .runner import RunSpec, default_spec


@dataclasses.dataclass
class PolicySweep:
    """Results of sweeping policies over workload classes.

    ``cells[(policy, klass)]`` holds the per-class aggregate.
    """

    policies: Tuple[str, ...]
    classes: Tuple[str, ...]
    cells: Dict[Tuple[str, str], ClassAggregate]

    def metric(self, policy: str, klass: str, name: str) -> float:
        return getattr(self.cells[(policy, klass)], name)

    def row(self, policy: str, name: str) -> List[float]:
        """One policy's metric across all classes, in class order."""
        return [self.metric(policy, klass, name) for klass in self.classes]

    def average(self, policy: str, name: str) -> float:
        values = self.row(policy, name)
        return sum(values) / len(values)

    def relative(self, policy: str, baseline: str,
                 name: str) -> List[float]:
        """Per-class ratio of one policy's metric to a baseline policy's."""
        own = self.row(policy, name)
        base = self.row(baseline, name)
        return [value / b if b else float("inf")
                for value, b in zip(own, base)]


def sweep_policies(policies: Sequence[str], classes: Sequence[str],
                   config: Optional[SMTConfig] = None,
                   spec: Optional[RunSpec] = None,
                   workloads_per_class: Optional[int] = None,
                   engine=None,
                   progress: Optional[ProgressFn] = None) -> PolicySweep:
    """Run every policy on every workload of the given classes.

    Args:
        policies: Policy registry names.
        classes: Table 2 class names (e.g. ``("ILP2", "MIX2", "MEM2")``).
        config: Machine configuration (baseline when omitted).
        spec: Run spec (scaled default when omitted).
        workloads_per_class: Optional cap on workloads per class, for
            quick looks; figures use the full Table 2 set.
        engine: Simulation engine (process default when omitted).
        progress: Per-cell progress callback, forwarded to the engine.
    """
    if engine is None:
        from .engine import get_engine
        engine = get_engine()
    config = config if config is not None else baseline()
    spec = spec if spec is not None else default_spec()

    groups: List[Tuple[str, str]] = []          # (policy, klass) per group
    group_cells: List[List[SweepCell]] = []     # sweep cells per group
    benchmarks = set()
    for klass in classes:
        workloads = get_workloads(klass, limit=workloads_per_class)
        for policy in policies:
            groups.append((policy, klass))
            group_cells.append([SweepCell.make(workload, policy,
                                               config, spec)
                                for workload in workloads])
        for workload in workloads:
            benchmarks.update(workload.benchmarks)

    # One flat batch: every sweep cell plus every fairness reference the
    # aggregation below will ask for.
    flat = [cell for cells in group_cells for cell in cells]
    refs = [reference_cell(name, config, spec)
            for name in sorted(benchmarks)]
    flat_runs = engine.run_cells(flat + refs, progress=progress)

    cells: Dict[Tuple[str, str], ClassAggregate] = {}
    cursor = 0
    for (policy, klass), cell_group in zip(groups, group_cells):
        runs = flat_runs[cursor:cursor + len(cell_group)]
        cursor += len(cell_group)
        cells[(policy, klass)] = aggregate_by_class(runs, config, spec,
                                                    engine=engine)
    return PolicySweep(policies=tuple(policies), classes=tuple(classes),
                       cells=cells)
