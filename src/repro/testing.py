"""Shared test/benchmark helpers: scaled-down configs and a trace DSL.

Both ``tests/`` and ``benchmarks/`` import from here (instead of from
their own ``conftest`` modules, whose bare-name imports collide when
pytest collects several rootdirs), so the two suites share one source of
truth and cannot drift.  Nothing here depends on pytest.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from .config import CacheConfig, SMTConfig
from .isa import NO_REG, OpClass
from .trace.trace import Trace

#: A miniature machine for fast unit tests: small caches (so misses are
#: easy to provoke) and short memory latency (so runahead episodes are
#: quick).  Warmup stays on so hand-built traces start with a warm I-cache
#: and trained predictor; their *data* stays cold (the selective warmup
#: only installs temporally re-touched lines, and hand traces touch each
#: data line once).
SMALL_CONFIG = SMTConfig(
    rob_size=64,
    int_regs=96,
    fp_regs=96,
    int_iq_size=16,
    fp_iq_size=16,
    ls_iq_size=16,
    fetch_buffer_size=16,
    icache=CacheConfig(4 * 1024, 2, 64, 1),
    dcache=CacheConfig(4 * 1024, 2, 64, 2),
    l2=CacheConfig(64 * 1024, 4, 64, 8),
    memory_latency=60,
    predictor_entries=64,
    predictor_history=8,
    btb_entries=64,
    warmup=True,
    max_cycles=500_000,
)


class TraceBuilder:
    """Hand-build tiny traces for targeted pipeline tests.

    Integer architectural registers are 0..31, FP are 32..63.  PCs are laid
    out sequentially from ``base_pc`` (4 bytes apart).
    """

    def __init__(self, name: str = "hand", base_pc: int = 0x1000,
                 data_region: int = 1 << 20) -> None:
        self.name = name
        self.base_pc = base_pc
        self.data_region = data_region
        self.rows: List[tuple] = []

    def _emit(self, op: OpClass, dest: int = NO_REG, src1: int = NO_REG,
              src2: int = NO_REG, addr: int = 0,
              taken: bool = False) -> "TraceBuilder":
        self.rows.append((int(op), dest, src1, src2, addr, taken))
        return self

    def ialu(self, dest: int, src1: int = NO_REG,
             src2: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.IALU, dest, src1, src2)

    def imul(self, dest: int, src1: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.IMUL, dest, src1)

    def load(self, dest: int, addr: int,
             src1: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.LOAD, dest, src1, NO_REG, addr)

    def store(self, addr: int, src1: int = NO_REG,
              src2: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.STORE, NO_REG, src1, src2, addr)

    def fload(self, dest: int, addr: int,
              src1: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.FLOAD, dest, src1, NO_REG, addr)

    def fstore(self, addr: int, src1: int = NO_REG,
               src2: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.FSTORE, NO_REG, src1, src2, addr)

    def fadd(self, dest: int, src1: int = NO_REG,
             src2: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.FADD, dest, src1, src2)

    def fdiv(self, dest: int, src1: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.FDIV, dest, src1)

    def branch(self, taken: bool = False,
               src1: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.BRANCH, NO_REG, src1, NO_REG, 0, taken)

    def sync(self, src1: int = NO_REG) -> "TraceBuilder":
        return self._emit(OpClass.SYNC, NO_REG, src1)

    def nops(self, count: int, start_reg: int = 1) -> "TraceBuilder":
        for offset in range(count):
            self.ialu(start_reg + (offset % 8))
        return self

    def build(self) -> Trace:
        count = len(self.rows)
        if count == 0:
            raise ValueError("empty trace")
        columns = {
            "op": np.array([row[0] for row in self.rows], dtype=np.int8),
            "dest": np.array([row[1] for row in self.rows], dtype=np.int16),
            "src1": np.array([row[2] for row in self.rows], dtype=np.int16),
            "src2": np.array([row[3] for row in self.rows], dtype=np.int16),
            "addr": np.array([row[4] for row in self.rows], dtype=np.int64),
            "taken": np.array([row[5] for row in self.rows], dtype=np.bool_),
            "pc": np.array([self.base_pc + 4 * index
                            for index in range(count)], dtype=np.int64),
        }
        return Trace(self.name, columns,
                     data_region_bytes=self.data_region)


def make_processor(traces, config: Optional[SMTConfig] = None,
                   policy: str = "icount", **overrides):
    """Convenience constructor used across pipeline tests."""
    from .core.processor import SMTProcessor
    config = config or SMALL_CONFIG
    config = dataclasses.replace(config, policy=policy, **overrides)
    return SMTProcessor(config.validate(), traces)
