"""Synthetic workload substrate.

The paper drives its SMTSIM-derived simulator with SPEC CPU2000 Alpha
binaries.  Those binaries (and 300M-instruction SimPoint slices of them) are
not available here, so this subpackage synthesizes statistically equivalent
instruction traces: each benchmark is described by a
:class:`~repro.trace.profiles.BenchmarkProfile` (instruction mix, dependence
distances, branch behaviour, code footprint, data footprint and access
patterns), and :class:`~repro.trace.generator.TraceGenerator` expands a
profile into a deterministic dynamic instruction trace.

See DESIGN.md §2 for why this substitution preserves the paper's behaviour.
"""

from .instruction import TraceInstruction
from .trace import Trace
from .profiles import (
    BenchmarkProfile,
    PROFILES,
    benchmark_names,
    get_profile,
    ilp_benchmarks,
    mem_benchmarks,
)
from .generator import TraceGenerator, generate_trace
from .workloads import (
    Workload,
    WORKLOAD_CLASSES,
    get_workloads,
    workload_class_names,
    all_workloads,
)

__all__ = [
    "TraceInstruction",
    "Trace",
    "BenchmarkProfile",
    "PROFILES",
    "benchmark_names",
    "get_profile",
    "ilp_benchmarks",
    "mem_benchmarks",
    "TraceGenerator",
    "generate_trace",
    "Workload",
    "WORKLOAD_CLASSES",
    "get_workloads",
    "workload_class_names",
    "all_workloads",
]
