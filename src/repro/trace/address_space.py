"""Data-address stream models for the synthetic trace generator.

Each benchmark's memory behaviour is composed of three archetypes observed
across SPEC CPU2000:

* :class:`StridedStream` — array sweeps with a fixed stride (swim, applu,
  art...).  High spatial locality; misses are independent, so runahead can
  overlap many of them (high memory-level parallelism).
* :class:`RandomStream` — scattered accesses over a working set (twolf, vpr
  style) with an explicit hot/cold split: most accesses fall in a small hot
  region (temporal locality — real programs re-touch a small resident set),
  the rest roam the full working set.  The miss rate is therefore governed
  by how the *hot region* compares to L1 and the *working set* to L2.
* :class:`PointerChaseStream` — linked-structure traversal (mcf, parser).
  Node addresses follow the same hot/cold split, and the *register*
  dependence chain created by the generator makes each load's address
  depend on the previous load, which limits MLP exactly the way real
  pointer chasing does.

Streams draw from a shared :class:`numpy.random.Generator` so traces are
deterministic for a given seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Base of the synthetic data segment.  Distinct from the code segment so
#: I- and D-streams never alias.
DATA_SEGMENT_BASE = 0x4000_0000


class AddressStream:
    """Interface for data-address generators."""

    #: True if loads on this stream should be chained through registers.
    dependent = False

    def next_address(self) -> int:
        raise NotImplementedError


class StridedStream(AddressStream):
    """Sequential sweep over a region with a fixed stride.

    After ``sweep_length`` accesses the stream restarts at a new offset
    within its region, modelling a fresh pass over a different array slice.
    """

    def __init__(self, rng: np.random.Generator, base: int, region_bytes: int,
                 stride: int, sweep_length: int = 4096) -> None:
        if region_bytes <= 0:
            raise ValueError("region_bytes must be positive")
        self._rng = rng
        self._base = base
        self._region = region_bytes
        self._stride = max(1, stride)
        self._sweep_length = max(1, sweep_length)
        self._offset = int(rng.integers(0, region_bytes))
        self._count = 0

    def next_address(self) -> int:
        address = self._base + (self._offset % self._region)
        self._offset += self._stride
        self._count += 1
        if self._count >= self._sweep_length:
            self._count = 0
            self._offset = int(self._rng.integers(0, self._region))
        return address


class _HotColdRegion:
    """Shared hot/cold address selection for random and chase streams."""

    def __init__(self, rng: np.random.Generator, base: int, region_bytes: int,
                 hot_fraction: float, hot_prob: float,
                 hot_bytes_cap: int = 0) -> None:
        if region_bytes <= 0:
            raise ValueError("region_bytes must be positive")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_prob <= 1.0:
            raise ValueError("hot_prob must be in [0, 1]")
        self._rng = rng
        self._base = base
        self._region = region_bytes
        hot_bytes = max(64, int(region_bytes * hot_fraction))
        if hot_bytes_cap > 0:
            # The hot set must be small enough that one trace pass actually
            # re-touches it several times — otherwise a short trace could
            # never establish residency and "hot" would behave cold.
            hot_bytes = min(hot_bytes, max(64, hot_bytes_cap))
        self._hot_bytes = hot_bytes
        # Place the hot region somewhere stable inside the working set.
        limit = max(1, region_bytes - self._hot_bytes)
        self._hot_base = int(rng.integers(0, limit))
        self._hot_prob = hot_prob

    def pick_offset(self) -> int:
        if self._rng.random() < self._hot_prob:
            return self._hot_base + int(self._rng.integers(0, self._hot_bytes))
        return int(self._rng.integers(0, self._region))

    @property
    def hot_bytes(self) -> int:
        return self._hot_bytes


class RandomStream(AddressStream):
    """Scattered accesses with a hot resident set, 8-byte aligned."""

    def __init__(self, rng: np.random.Generator, base: int,
                 region_bytes: int, hot_fraction: float = 0.05,
                 hot_prob: float = 0.85, hot_bytes_cap: int = 0) -> None:
        self._picker = _HotColdRegion(rng, base, region_bytes,
                                      hot_fraction, hot_prob, hot_bytes_cap)
        self._base = base

    def next_address(self) -> int:
        return self._base + (self._picker.pick_offset() & ~0x7)


class PointerChaseStream(AddressStream):
    """Linked-list style traversal: node addresses with a hot resident set;
    the generator chains each load's source register to the previous chase
    load's destination, serializing address generation *timing*."""

    dependent = True

    def __init__(self, rng: np.random.Generator, base: int,
                 region_bytes: int, node_bytes: int = 64,
                 hot_fraction: float = 0.02, hot_prob: float = 0.6,
                 hot_bytes_cap: int = 0) -> None:
        self._picker = _HotColdRegion(rng, base, region_bytes,
                                      hot_fraction, hot_prob, hot_bytes_cap)
        self._base = base
        self._node = max(8, node_bytes)

    def next_address(self) -> int:
        offset = self._picker.pick_offset()
        return self._base + (offset // self._node) * self._node


class StreamMixer:
    """Selects a stream per memory access according to profile weights."""

    def __init__(self, rng: np.random.Generator, streams: List[AddressStream],
                 weights: List[float]) -> None:
        if len(streams) != len(weights) or not streams:
            raise ValueError("streams and weights must be same non-zero length")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._rng = rng
        self._streams = streams
        self._cumulative = np.cumsum([w / total for w in weights])

    def pick(self) -> AddressStream:
        draw = self._rng.random()
        index = int(np.searchsorted(self._cumulative, draw, side="right"))
        return self._streams[min(index, len(self._streams) - 1)]
