"""Synthetic control-flow graph and code layout.

The trace generator walks a synthetic CFG so that the I-cache and the
perceptron branch predictor observe realistic streams:

* Code is laid out as ``num_blocks`` basic blocks of geometric lengths at
  consecutive addresses in a synthetic code segment.
* Every block ends in a conditional branch.  Its *taken* target is a loop
  back-edge (to a recent block) or a forward jump; its fall-through is the
  next block in layout order.
* Each block has a per-block taken bias drawn from a Beta distribution;
  strongly-biased blocks are what make a benchmark branch-predictable.

A benchmark with a small ``num_blocks`` runs hot loops out of a tiny code
footprint (gzip-like); a large ``num_blocks`` with frequent far jumps
produces I-cache pressure (gcc-like).
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..isa import INSTRUCTION_BYTES

#: Base of the synthetic code segment.
CODE_SEGMENT_BASE = 0x1000_0000

#: Blocks shorter than this are not generated: a 1-instruction self-loop
#: would repeat the same PC back-to-back, which the Trace validator rejects.
MIN_BLOCK_LEN = 2


@dataclasses.dataclass
class BasicBlock:
    """A synthetic basic block: a run of straight-line slots plus a branch."""

    index: int
    start_pc: int
    length: int          # total slots, including the terminating branch
    taken_target: int    # block index jumped to when the branch is taken
    taken_bias: float    # probability the terminating branch is taken

    @property
    def branch_pc(self) -> int:
        return self.start_pc + (self.length - 1) * INSTRUCTION_BYTES

    def slot_pc(self, slot: int) -> int:
        return self.start_pc + slot * INSTRUCTION_BYTES


class ControlFlowGraph:
    """The static code skeleton a trace generator walks."""

    def __init__(self, rng: np.random.Generator, num_blocks: int,
                 mean_block_len: int, loop_bias: float,
                 far_jump_prob: float, bias_concentration: float) -> None:
        """Build a random CFG.

        Args:
            rng: Seeded random generator.
            num_blocks: Static code footprint in basic blocks.
            mean_block_len: Mean instructions per block (geometric).
            loop_bias: Probability that a block's taken edge is a back-edge
                to a nearby earlier block (loops) rather than a forward jump.
            far_jump_prob: Probability that a forward jump lands far away
                (I-cache unfriendly) instead of nearby.
            bias_concentration: Beta-distribution concentration for per-block
                taken bias; higher values give strongly biased, predictable
                branches.
        """
        if num_blocks < 2:
            raise ValueError("need at least 2 basic blocks")
        self.blocks: List[BasicBlock] = []
        pc = CODE_SEGMENT_BASE
        lengths = MIN_BLOCK_LEN + rng.geometric(
            1.0 / max(1, mean_block_len - MIN_BLOCK_LEN + 1), size=num_blocks) - 1
        for index in range(num_blocks):
            length = int(lengths[index])
            # Taken target: back-edge to a nearby block (loop) or a jump.
            if rng.random() < loop_bias:
                span = min(8, index) if index else 0
                target = index - int(rng.integers(0, span + 1))
                if target == index:
                    # Self-loop on a >=2 instruction block is fine (PC
                    # sequence ...branch_pc, start_pc... never repeats).
                    target = index
            else:
                if rng.random() < far_jump_prob:
                    target = int(rng.integers(0, num_blocks))
                else:
                    target = min(num_blocks - 1,
                                 index + 1 + int(rng.integers(0, 8)))
            # Strongly biased branches are what the perceptron learns well.
            bias = float(rng.beta(bias_concentration, 1.0))
            # Mix of mostly-taken and mostly-not-taken blocks.
            if rng.random() < 0.4:
                bias = 1.0 - bias
            self.blocks.append(BasicBlock(
                index=index, start_pc=pc, length=length,
                taken_target=target, taken_bias=bias))
            pc += length * INSTRUCTION_BYTES
        self.code_bytes = pc - CODE_SEGMENT_BASE

    def __len__(self) -> int:
        return len(self.blocks)

    def fallthrough(self, block: BasicBlock) -> int:
        """Block index reached when ``block``'s branch is not taken."""
        return (block.index + 1) % len(self.blocks)

    def walk(self, rng: np.random.Generator, block: BasicBlock
             ) -> "tuple[bool, BasicBlock]":
        """Resolve one dynamic execution of ``block``'s terminating branch.

        Returns (taken, next_block).
        """
        taken = bool(rng.random() < block.taken_bias)
        if taken:
            next_index = block.taken_target
        else:
            next_index = self.fallthrough(block)
        return taken, self.blocks[next_index]
