"""Expand a :class:`BenchmarkProfile` into a dynamic instruction trace.

The generator builds a static code skeleton (a synthetic CFG, so the
I-cache and branch predictor see a realistic PC stream) and then *walks*
it, producing a dynamic stream with:

* register dependences drawn from the profile's dependence-distance
  distribution — address registers of non-chasing memory operations are
  chained only through ALU results, so streamed loads stay independent of
  load values (this is what gives runahead its memory-level parallelism);
* pointer-chasing loads chained through the previous chase load's
  destination register, serializing them exactly like real linked-list code;
* memory addresses drawn from the profile's stream/random/chase mixture
  over its working set.

Determinism: the same (profile, length, seed) triple always yields an
identical trace.
"""

from __future__ import annotations

import functools
import zlib
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..errors import TraceError
from ..isa import NO_REG, OpClass
from .address_space import (
    PointerChaseStream,
    RandomStream,
    StreamMixer,
    StridedStream,
)
from .cfg import MIN_BLOCK_LEN, ControlFlowGraph
from .profiles import BenchmarkProfile, get_profile
from .trace import Trace

#: Integer registers are split into two pools (r0 is the Alpha zero
#: register and r31 stays read-only, matching conventional usage):
#:
#: * r1..r8 — *address arithmetic* (induction variables, pointer updates).
#:   Only address-arithmetic ALU ops ever write these, so address chains
#:   never depend on load results — exactly like real streaming code.
#:   This is what lets both the out-of-order window and runahead overlap
#:   independent misses; a load-polluted address chain would serialize
#:   everything behind the first miss (and fold every later address under
#:   runahead's INV propagation).
#: * r9..r30 — *data* registers (load results, data-processing ALU ops).
_ADDR_DESTS = tuple(range(1, 9))
_DATA_DESTS = tuple(range(9, 31))
#: FP destination registers (arch numbers 32..63 are the FP file).
_FP_DESTS = tuple(range(33, 63))

#: Fraction of integer ALU ops doing address arithmetic.
_ADDR_ALU_SHARE = 0.4

#: Fraction of loads/stores in FP-suite code that move FP data.
_FP_MEM_SHARE = 0.7

#: Recent-writer window per register class for dependence sampling.
_WRITER_WINDOW = 64


class _WriterRing:
    """Recent destination registers of one class, for dependence sampling."""

    __slots__ = ("_regs", "_size")

    def __init__(self, size: int = _WRITER_WINDOW) -> None:
        self._regs: List[int] = []
        self._size = size

    def push(self, reg: int) -> None:
        self._regs.append(reg)
        if len(self._regs) > self._size:
            del self._regs[0]

    def sample(self, rng: np.random.Generator, mean_distance: float) -> int:
        """A register written ~geometric(mean_distance) writes ago."""
        if not self._regs:
            return NO_REG
        distance = int(rng.geometric(1.0 / max(1.0, mean_distance)))
        distance = min(distance, len(self._regs))
        return self._regs[-distance]

    def __len__(self) -> int:
        return len(self._regs)


class TraceGenerator:
    """Generates the dynamic trace for one benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, length: int,
                 seed: int = 0) -> None:
        if length < 1:
            raise TraceError("trace length must be >= 1")
        self.profile = profile
        self.length = length
        name_hash = zlib.crc32(profile.name.encode("utf-8"))
        self._rng = np.random.default_rng([seed & 0x7FFFFFFF, length,
                                           name_hash])

    # --- static code construction -------------------------------------------

    def _block_length_mean(self) -> int:
        """Mean basic-block length implied by the branch fraction."""
        fraction = self.profile.branch_fraction
        if fraction <= 0:
            return max(MIN_BLOCK_LEN, self.profile.mean_block_len)
        return max(MIN_BLOCK_LEN, min(48, int(round(1.0 / fraction))))

    def _op_thresholds(self) -> List[float]:
        """Cumulative draw thresholds for straight-line (non-branch) slots.

        Branches are supplied by block terminators, so the remaining mix
        fractions scale up by 1 / (1 - branch_fraction).
        """
        p = self.profile
        scale = 1.0 / max(1e-9, 1.0 - p.branch_fraction)
        load_p = p.load_fraction * scale
        store_p = p.store_fraction * scale
        fp_p = p.fp_fraction * scale
        imul_p = p.imul_fraction * scale
        sync_p = p.sync_fraction * scale
        return [load_p,
                load_p + store_p,
                load_p + store_p + fp_p,
                load_p + store_p + fp_p + imul_p,
                load_p + store_p + fp_p + imul_p + sync_p]

    def _draw_op(self, thresholds: List[float]) -> OpClass:
        """Draw one straight-line op class from the profile mix.

        Ops are drawn per dynamic visit (not statically per code slot) so
        the dynamic mix converges to the profile regardless of which basic
        blocks happen to be hot.
        """
        p = self.profile
        rng = self._rng
        draw = rng.random()
        if draw < thresholds[0]:
            if p.is_fp and rng.random() < _FP_MEM_SHARE:
                return OpClass.FLOAD
            return OpClass.LOAD
        if draw < thresholds[1]:
            if p.is_fp and rng.random() < _FP_MEM_SHARE:
                return OpClass.FSTORE
            return OpClass.STORE
        if draw < thresholds[2]:
            fp_draw = rng.random()
            if fp_draw < p.fdiv_fraction:
                return OpClass.FDIV
            if fp_draw < 0.5:
                return OpClass.FMUL
            return OpClass.FADD
        if draw < thresholds[3]:
            return OpClass.IMUL
        if draw < thresholds[4]:
            return OpClass.SYNC
        return OpClass.IALU

    def _build_streams(self) -> StreamMixer:
        p = self.profile
        region = p.working_set_bytes
        # Bound the hot set so one trace pass re-touches each hot line
        # roughly 8 times: short traces then establish residency the way a
        # full-length run would (see _HotColdRegion).
        mem_accesses = self.length * (p.load_fraction + p.store_fraction)
        hot_cap = 64 * max(16, int(mem_accesses * p.hot_prob / 8))
        streams = []
        weights = []
        if p.stream_weight > 0:
            per_stream = max(4096, region // max(1, p.num_streams))
            for index in range(p.num_streams):
                base = (index * per_stream) % max(1, region)
                streams.append(StridedStream(
                    self._rng, base, min(per_stream, region),
                    p.stride_bytes))
                weights.append(p.stream_weight / p.num_streams)
        if p.random_weight > 0:
            streams.append(RandomStream(self._rng, 0, region,
                                        hot_fraction=p.hot_fraction,
                                        hot_prob=p.hot_prob,
                                        hot_bytes_cap=hot_cap))
            weights.append(p.random_weight)
        if p.chase_weight > 0:
            streams.append(PointerChaseStream(self._rng, 0, region,
                                              hot_fraction=p.hot_fraction,
                                              hot_prob=p.hot_prob,
                                              hot_bytes_cap=hot_cap))
            weights.append(p.chase_weight)
        return StreamMixer(self._rng, streams, weights)

    # --- dynamic walk ------------------------------------------------------------

    def generate(self) -> Trace:
        """Produce the trace (deterministic for this generator's seed)."""
        p = self.profile
        rng = self._rng
        cfg = ControlFlowGraph(
            rng, num_blocks=p.code_blocks,
            mean_block_len=self._block_length_mean(),
            loop_bias=p.loop_bias, far_jump_prob=p.far_jump_prob,
            bias_concentration=p.branch_bias_concentration)
        thresholds = self._op_thresholds()
        mixer = self._build_streams()

        n = self.length
        op_col = np.empty(n, dtype=np.int8)
        dest_col = np.full(n, NO_REG, dtype=np.int16)
        src1_col = np.full(n, NO_REG, dtype=np.int16)
        src2_col = np.full(n, NO_REG, dtype=np.int16)
        addr_col = np.zeros(n, dtype=np.int64)
        taken_col = np.zeros(n, dtype=np.bool_)
        pc_col = np.zeros(n, dtype=np.int64)

        int_writers = _WriterRing(size=20)   # data-pool writers
        alu_writers = _WriterRing(size=8)    # address-pool writers
        fp_writers = _WriterRing(size=24)    # all FP writers (incl. loads)
        # FP compute results chain mostly through each other: numeric
        # kernels are recurrences over computed values, with loads feeding
        # the chain only here and there.  Without this, every FP chain is
        # a couple of ops deep (cut by a 3-cycle load) and FP benchmarks
        # become fetch-bound at unrealistic IPCs.
        fp_compute_writers = _WriterRing(size=12)
        # Independent pointer-chase chains: each chain serializes through
        # its own register, and chains interleave round-robin — bounding
        # chasing code's MLP at profile.chase_chains, like real programs
        # traversing several linked structures at once.
        chase_regs = [NO_REG] * max(1, p.chase_chains)
        chase_cursor = 0

        int_dest_cursor = 0
        addr_dest_cursor = 0
        fp_dest_cursor = 0
        block = cfg.blocks[0]
        slot = 0
        index = 0
        while index < n:
            pc_col[index] = block.slot_pc(slot)
            if slot == block.length - 1:
                # Terminating branch: direction from the block bias walk.
                taken, next_block = cfg.walk(rng, block)
                op_col[index] = int(OpClass.BRANCH)
                src1_col[index] = int_writers.sample(rng, p.dep_distance)
                taken_col[index] = taken
                block = next_block
                slot = 0
                index += 1
                continue

            op = self._draw_op(thresholds)
            op_col[index] = int(op)
            if op in (OpClass.LOAD, OpClass.FLOAD):
                stream = mixer.pick()
                use_chase = stream.dependent and op is OpClass.LOAD
                if use_chase and chase_regs[chase_cursor] != NO_REG:
                    src1_col[index] = chase_regs[chase_cursor]
                else:
                    src1_col[index] = alu_writers.sample(rng, p.dep_distance)
                addr_col[index] = stream.next_address()
                if op is OpClass.LOAD:
                    dest = _DATA_DESTS[int_dest_cursor]
                    int_dest_cursor = (int_dest_cursor + 1) % len(_DATA_DESTS)
                    dest_col[index] = dest
                    int_writers.push(dest)
                    if use_chase:
                        chase_regs[chase_cursor] = dest
                        chase_cursor = (chase_cursor + 1) % len(chase_regs)
                else:
                    dest = _FP_DESTS[fp_dest_cursor]
                    fp_dest_cursor = (fp_dest_cursor + 1) % len(_FP_DESTS)
                    dest_col[index] = dest
                    fp_writers.push(dest)
            elif op in (OpClass.STORE, OpClass.FSTORE):
                stream = mixer.pick()
                src1_col[index] = alu_writers.sample(rng, p.dep_distance)
                if op is OpClass.STORE:
                    src2_col[index] = int_writers.sample(rng, p.dep_distance)
                else:
                    src2_col[index] = fp_writers.sample(rng, p.dep_distance)
                addr_col[index] = stream.next_address()
            elif op in (OpClass.FADD, OpClass.FMUL, OpClass.FDIV):
                if len(fp_compute_writers) and rng.random() < 0.75:
                    src1_col[index] = fp_compute_writers.sample(
                        rng, p.dep_distance)
                else:
                    src1_col[index] = fp_writers.sample(rng, p.dep_distance)
                if rng.random() < 0.6:
                    src2_col[index] = fp_writers.sample(rng, p.dep_distance)
                dest = _FP_DESTS[fp_dest_cursor]
                fp_dest_cursor = (fp_dest_cursor + 1) % len(_FP_DESTS)
                dest_col[index] = dest
                fp_writers.push(dest)
                fp_compute_writers.push(dest)
            elif op is OpClass.SYNC:
                src1_col[index] = int_writers.sample(rng, p.dep_distance)
            else:  # IALU / IMUL / NOP
                if rng.random() < _ADDR_ALU_SHARE:
                    # Address arithmetic: sources and destination stay in
                    # the load-free address pool.
                    src1_col[index] = alu_writers.sample(rng, p.dep_distance)
                    if rng.random() < 0.5:
                        src2_col[index] = alu_writers.sample(rng,
                                                             p.dep_distance)
                    dest = _ADDR_DESTS[addr_dest_cursor]
                    addr_dest_cursor = (addr_dest_cursor + 1) % len(_ADDR_DESTS)
                    dest_col[index] = dest
                    alu_writers.push(dest)
                else:
                    # Data processing: may consume load results.
                    src1_col[index] = int_writers.sample(rng, p.dep_distance)
                    if rng.random() < 0.5:
                        src2_col[index] = int_writers.sample(rng,
                                                             p.dep_distance)
                    dest = _DATA_DESTS[int_dest_cursor]
                    int_dest_cursor = (int_dest_cursor + 1) % len(_DATA_DESTS)
                    dest_col[index] = dest
                    int_writers.push(dest)
            slot += 1
            index += 1

        trace = Trace(p.name, {
            "op": op_col, "dest": dest_col, "src1": src1_col,
            "src2": src2_col, "addr": addr_col, "taken": taken_col,
            "pc": pc_col,
        }, data_region_bytes=p.working_set_bytes)
        return trace.validate()


#: Key identifying one generated trace: (benchmark, length, seed).
TraceKey = Tuple[str, int, int]

#: Traces handed to this process by a campaign coordinator (see
#: :func:`prime_traces`).  Checked before generating from scratch.
_PRIMED: Dict[TraceKey, Trace] = {}


def prime_traces(traces: Mapping[TraceKey, Trace]) -> None:
    """Pre-seed this process's trace cache with already-built traces.

    The parallel simulation backend generates each (benchmark, length,
    seed) trace once in the coordinating process and ships the batch to
    every worker at pool start-up, so workers deserialize instead of
    regenerating — trace generation is O(length) in numpy RNG draws and
    was repeated per (cell × worker) before.  Priming is an optimization
    only: a missing entry falls back to deterministic regeneration, and
    a primed trace is bit-identical to a regenerated one by the
    generator's determinism guarantee.
    """
    _PRIMED.update(traces)


@functools.lru_cache(maxsize=512)
def generate_trace(name: str, length: int, seed: int = 0) -> Trace:
    """Generate (and memoize) the trace for benchmark ``name``.

    The cache makes repeated experiment sweeps cheap: every policy run of a
    given workload shares identical trace objects.
    """
    primed = _PRIMED.get((name, length, seed))
    if primed is not None:
        return primed
    return TraceGenerator(get_profile(name), length, seed).generate()
