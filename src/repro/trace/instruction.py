"""A single decoded trace record.

Traces are stored column-wise in numpy arrays (see :class:`repro.trace.trace.Trace`);
:class:`TraceInstruction` is the row view used at package boundaries — tests,
examples, and debugging — not in the simulator's hot path.
"""

from __future__ import annotations

import dataclasses

from ..isa import NO_REG, OpClass


@dataclasses.dataclass(frozen=True)
class TraceInstruction:
    """One dynamic instruction of a synthetic benchmark trace.

    Attributes:
        index: Position in the dynamic trace.
        pc: Instruction address (synthetic code segment).
        op: Operation class.
        dest: Destination architectural register, or ``NO_REG``.
        src1: First source architectural register, or ``NO_REG``.
        src2: Second source architectural register, or ``NO_REG``.
        addr: Effective data address for memory operations, else 0.
        taken: For branches, whether the branch is taken.
    """

    index: int
    pc: int
    op: OpClass
    dest: int = NO_REG
    src1: int = NO_REG
    src2: int = NO_REG
    addr: int = 0
    taken: bool = False

    @property
    def is_memory(self) -> bool:
        return self.op in (OpClass.LOAD, OpClass.STORE,
                           OpClass.FLOAD, OpClass.FSTORE)

    @property
    def is_load(self) -> bool:
        return self.op in (OpClass.LOAD, OpClass.FLOAD)

    @property
    def is_store(self) -> bool:
        return self.op in (OpClass.STORE, OpClass.FSTORE)

    @property
    def is_branch(self) -> bool:
        return self.op is OpClass.BRANCH

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        fields = [f"#{self.index}", f"pc={self.pc:#x}", self.op.name]
        if self.dest != NO_REG:
            fields.append(f"d=r{self.dest}")
        if self.src1 != NO_REG:
            fields.append(f"s1=r{self.src1}")
        if self.src2 != NO_REG:
            fields.append(f"s2=r{self.src2}")
        if self.is_memory:
            fields.append(f"addr={self.addr:#x}")
        if self.is_branch:
            fields.append("taken" if self.taken else "not-taken")
        return " ".join(fields)
