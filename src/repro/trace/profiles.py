"""Statistical profiles of the 24 SPEC CPU2000 benchmarks used in Table 2.

The paper classifies benchmarks by their L2 miss rate into ILP (high
instruction-level parallelism, cache-friendly) and MEM (memory-bound)
groups, then builds 2- and 4-thread ILP/MIX/MEM workloads.  We reproduce
the same classification with synthetic profiles: each profile pins down the
instruction mix, dependence-distance distribution, code footprint and
branch predictability, and — most importantly for this paper — the data
working set and access-pattern composition that determine the benchmark's
L2 behaviour and memory-level parallelism:

* ``stream_weight`` — strided array sweeps: misses are plentiful but
  independent, so runahead overlaps them (swim, art, applu, lucas).
* ``chase_weight`` — pointer chasing: loads serialized through registers,
  little MLP for runahead to mine (mcf, parser, ammp).
* ``random_weight`` — scattered accesses over the working set; miss rate set
  by working-set size vs cache capacity (twolf, vpr).

Numbers are set from the well-known published characterizations of SPEC2000
(instruction mixes, working sets and L2 MPKI orders of magnitude), scaled to
this simulator.  Absolute fidelity is not required — the experiments only
rely on the ILP/MEM contrast and the per-class averages (DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..errors import UnknownBenchmarkError

KB = 1024
MB = 1024 * KB


@dataclasses.dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark.

    Attributes:
        name: SPEC benchmark name (as used in Table 2).
        is_fp: FP suite member (uses the FP pipeline and registers).
        is_mem: True if the paper's classification puts it in the MEM group.
        load_fraction / store_fraction / branch_fraction / fp_fraction /
            imul_fraction: dynamic instruction mix; the remainder is IALU.
        fdiv_fraction: share of FP compute ops that are divides.
        dep_distance: mean register dependence distance (geometric).
        working_set_bytes: data footprint.
        stream_weight / random_weight / chase_weight: memory access pattern
            composition (normalized by the generator).
        stride_bytes: stride of the strided streams.
        num_streams: concurrent strided streams (bounds achievable MLP).
        hot_fraction: fraction of the working set that is "hot" (resident,
            frequently re-touched) for random/chase accesses.
        hot_prob: probability a random/chase access falls in the hot set.
        chase_chains: independent pointer-chase chains (bounds the MLP of
            chasing code; real linked-structure programs traverse several
            structures concurrently).
        code_blocks: static code footprint in basic blocks.
        mean_block_len: mean instructions per basic block.
        loop_bias: probability a block's taken edge is a back-edge.
        far_jump_prob: probability of an I-cache-unfriendly far jump.
        branch_bias_concentration: higher = more predictable branches.
        sync_fraction: fraction of SYNC ops (0 for all SPEC programs; used
            only by the parallel-thread feature of §3.3).
        l2_mpki_hint: rough published L2 misses-per-kilo-instruction, kept
            for documentation and sanity tests.
    """

    name: str
    is_fp: bool
    is_mem: bool
    load_fraction: float
    store_fraction: float
    branch_fraction: float
    fp_fraction: float = 0.0
    imul_fraction: float = 0.01
    fdiv_fraction: float = 0.03
    dep_distance: float = 5.0
    working_set_bytes: int = 256 * KB
    stream_weight: float = 0.4
    random_weight: float = 0.5
    chase_weight: float = 0.1
    stride_bytes: int = 8
    num_streams: int = 2
    hot_fraction: float = 0.05
    hot_prob: float = 0.88
    chase_chains: int = 2
    code_blocks: int = 400
    mean_block_len: int = 6
    loop_bias: float = 0.65
    far_jump_prob: float = 0.10
    branch_bias_concentration: float = 5.0
    sync_fraction: float = 0.0
    l2_mpki_hint: float = 0.5

    def __post_init__(self) -> None:
        total = (self.load_fraction + self.store_fraction
                 + self.branch_fraction + self.fp_fraction
                 + self.imul_fraction + self.sync_fraction)
        if not 0.0 < total < 1.0:
            raise ValueError(
                f"{self.name}: instruction mix fractions sum to {total:.3f}; "
                "must leave room for IALU ops")
        weights = (self.stream_weight, self.random_weight, self.chase_weight)
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError(f"{self.name}: bad access-pattern weights")

    @property
    def spec_class(self) -> str:
        """'MEM' or 'ILP', the paper's Table 2 grouping."""
        return "MEM" if self.is_mem else "ILP"


def _ilp_int(name: str, **kw) -> BenchmarkProfile:
    defaults = dict(
        is_fp=False, is_mem=False,
        load_fraction=0.24, store_fraction=0.10, branch_fraction=0.15,
        dep_distance=2.6, working_set_bytes=160 * KB,
        stream_weight=0.35, random_weight=0.60, chase_weight=0.05,
        branch_bias_concentration=5.0, l2_mpki_hint=0.4,
    )
    defaults.update(kw)
    return BenchmarkProfile(name=name, **defaults)


def _ilp_fp(name: str, **kw) -> BenchmarkProfile:
    defaults = dict(
        is_fp=True, is_mem=False,
        load_fraction=0.25, store_fraction=0.08, branch_fraction=0.05,
        fp_fraction=0.33, dep_distance=2.4, working_set_bytes=256 * KB,
        stream_weight=0.70, random_weight=0.28, chase_weight=0.02,
        branch_bias_concentration=8.0, loop_bias=0.80, mean_block_len=10,
        l2_mpki_hint=0.6,
    )
    defaults.update(kw)
    return BenchmarkProfile(name=name, **defaults)


#: All 24 benchmark profiles, keyed by Table 2 name.
PROFILES: Dict[str, BenchmarkProfile] = {}


def _register(profile: BenchmarkProfile) -> None:
    PROFILES[profile.name] = profile


# --- ILP group: integer -----------------------------------------------------
_register(_ilp_int("gzip", load_fraction=0.20, store_fraction=0.08,
                   branch_fraction=0.17, working_set_bytes=176 * KB,
                   code_blocks=180, l2_mpki_hint=0.3))
_register(_ilp_int("bzip2", load_fraction=0.26, store_fraction=0.09,
                   branch_fraction=0.14, working_set_bytes=320 * KB,
                   code_blocks=160, l2_mpki_hint=0.8))
_register(_ilp_int("gcc", load_fraction=0.25, store_fraction=0.13,
                   branch_fraction=0.16, working_set_bytes=512 * KB,
                   code_blocks=2400, far_jump_prob=0.25, mean_block_len=5,
                   branch_bias_concentration=4.0, l2_mpki_hint=0.9))
_register(_ilp_int("crafty", load_fraction=0.27, store_fraction=0.07,
                   branch_fraction=0.13, working_set_bytes=128 * KB,
                   code_blocks=600, branch_bias_concentration=4.0,
                   l2_mpki_hint=0.2))
_register(_ilp_int("eon", load_fraction=0.28, store_fraction=0.17,
                   branch_fraction=0.11, working_set_bytes=64 * KB,
                   code_blocks=500, branch_bias_concentration=7.0,
                   l2_mpki_hint=0.1))
_register(_ilp_int("gap", load_fraction=0.24, store_fraction=0.13,
                   branch_fraction=0.14, working_set_bytes=192 * KB,
                   code_blocks=500, l2_mpki_hint=0.5))
_register(_ilp_int("perl", load_fraction=0.26, store_fraction=0.14,
                   branch_fraction=0.15, working_set_bytes=128 * KB,
                   code_blocks=1600, far_jump_prob=0.20,
                   branch_bias_concentration=6.0, l2_mpki_hint=0.3))
_register(_ilp_int("vortex", load_fraction=0.28, store_fraction=0.18,
                   branch_fraction=0.14, working_set_bytes=448 * KB,
                   code_blocks=1800, far_jump_prob=0.18,
                   branch_bias_concentration=7.0, l2_mpki_hint=0.7))

# --- ILP group: floating point ---------------------------------------------
_register(_ilp_fp("mesa", load_fraction=0.24, store_fraction=0.09,
                  branch_fraction=0.09, fp_fraction=0.25,
                  working_set_bytes=128 * KB, code_blocks=700,
                  l2_mpki_hint=0.4))
_register(_ilp_fp("fma3d", load_fraction=0.26, store_fraction=0.12,
                  branch_fraction=0.07, fp_fraction=0.30,
                  working_set_bytes=448 * KB, code_blocks=1400,
                  l2_mpki_hint=0.8))
_register(_ilp_fp("apsi", load_fraction=0.23, store_fraction=0.10,
                  branch_fraction=0.05, fp_fraction=0.35,
                  working_set_bytes=192 * KB, code_blocks=700,
                  l2_mpki_hint=0.6))
_register(_ilp_fp("mgrid", load_fraction=0.33, store_fraction=0.03,
                  branch_fraction=0.01, fp_fraction=0.45,
                  working_set_bytes=500 * KB, stride_bytes=8,
                  num_streams=3, code_blocks=120, mean_block_len=24,
                  branch_bias_concentration=12.0, l2_mpki_hint=0.9))
_register(_ilp_fp("galgel", load_fraction=0.30, store_fraction=0.06,
                  branch_fraction=0.04, fp_fraction=0.40,
                  working_set_bytes=256 * KB, code_blocks=300,
                  l2_mpki_hint=0.5))
_register(_ilp_fp("wupwise", load_fraction=0.22, store_fraction=0.10,
                  branch_fraction=0.04, fp_fraction=0.40,
                  working_set_bytes=256 * KB, code_blocks=250,
                  l2_mpki_hint=0.5))

# --- MEM group ----------------------------------------------------------------
_register(BenchmarkProfile(
    name="mcf", is_fp=False, is_mem=True,
    load_fraction=0.31, store_fraction=0.09, branch_fraction=0.19,
    dep_distance=3.0, working_set_bytes=48 * MB,
    stream_weight=0.05, random_weight=0.30, chase_weight=0.65,
    hot_fraction=0.01, hot_prob=0.70, chase_chains=3,
    code_blocks=120, mean_block_len=5, branch_bias_concentration=3.0,
    l2_mpki_hint=90.0))
_register(BenchmarkProfile(
    name="art", is_fp=True, is_mem=True,
    load_fraction=0.26, store_fraction=0.03, branch_fraction=0.11,
    fp_fraction=0.30, dep_distance=6.0, working_set_bytes=3584 * KB,
    stream_weight=0.88, random_weight=0.10, chase_weight=0.02,
    stride_bytes=16, num_streams=5, code_blocks=100, mean_block_len=9,
    loop_bias=0.85, branch_bias_concentration=8.0, l2_mpki_hint=60.0))
_register(BenchmarkProfile(
    name="swim", is_fp=True, is_mem=True,
    load_fraction=0.26, store_fraction=0.08, branch_fraction=0.02,
    fp_fraction=0.40, dep_distance=8.0, working_set_bytes=14 * MB,
    stream_weight=0.95, random_weight=0.05, chase_weight=0.0,
    stride_bytes=4, num_streams=6, code_blocks=90, mean_block_len=28,
    loop_bias=0.90, branch_bias_concentration=12.0, l2_mpki_hint=25.0))
_register(BenchmarkProfile(
    name="lucas", is_fp=True, is_mem=True,
    load_fraction=0.20, store_fraction=0.09, branch_fraction=0.01,
    fp_fraction=0.48, dep_distance=8.0, working_set_bytes=8 * MB,
    stream_weight=0.92, random_weight=0.08, chase_weight=0.0,
    stride_bytes=4, num_streams=4, code_blocks=80, mean_block_len=30,
    loop_bias=0.90, branch_bias_concentration=12.0, l2_mpki_hint=20.0))
_register(BenchmarkProfile(
    name="applu", is_fp=True, is_mem=True,
    load_fraction=0.25, store_fraction=0.10, branch_fraction=0.03,
    fp_fraction=0.42, dep_distance=7.0, working_set_bytes=10 * MB,
    stream_weight=0.90, random_weight=0.10, chase_weight=0.0,
    stride_bytes=4, num_streams=4, code_blocks=140, mean_block_len=22,
    loop_bias=0.85, branch_bias_concentration=10.0, l2_mpki_hint=12.0))
_register(BenchmarkProfile(
    name="equake", is_fp=True, is_mem=True,
    load_fraction=0.30, store_fraction=0.07, branch_fraction=0.10,
    fp_fraction=0.28, dep_distance=5.0, working_set_bytes=6 * MB,
    stream_weight=0.50, random_weight=0.30, chase_weight=0.20,
    stride_bytes=8, num_streams=3, chase_chains=4,
    code_blocks=150, mean_block_len=8,
    branch_bias_concentration=6.0, l2_mpki_hint=15.0))
_register(BenchmarkProfile(
    name="ammp", is_fp=True, is_mem=True,
    load_fraction=0.27, store_fraction=0.08, branch_fraction=0.08,
    fp_fraction=0.30, dep_distance=4.0, working_set_bytes=10 * MB,
    stream_weight=0.20, random_weight=0.30, chase_weight=0.50,
    hot_prob=0.75, chase_chains=4,
    code_blocks=200, mean_block_len=8, branch_bias_concentration=5.0,
    l2_mpki_hint=10.0))
_register(BenchmarkProfile(
    name="twolf", is_fp=False, is_mem=True,
    load_fraction=0.24, store_fraction=0.07, branch_fraction=0.16,
    dep_distance=4.0, working_set_bytes=1792 * KB,
    stream_weight=0.10, random_weight=0.80, chase_weight=0.10,
    hot_fraction=0.06, hot_prob=0.92,
    code_blocks=300, mean_block_len=6, branch_bias_concentration=3.0,
    l2_mpki_hint=3.0))
_register(BenchmarkProfile(
    name="vpr", is_fp=False, is_mem=True,
    load_fraction=0.28, store_fraction=0.10, branch_fraction=0.13,
    dep_distance=4.0, working_set_bytes=2 * MB,
    stream_weight=0.15, random_weight=0.75, chase_weight=0.10,
    hot_fraction=0.06, hot_prob=0.92,
    code_blocks=280, mean_block_len=6, branch_bias_concentration=3.5,
    l2_mpki_hint=3.5))
_register(BenchmarkProfile(
    name="parser", is_fp=False, is_mem=True,
    load_fraction=0.24, store_fraction=0.09, branch_fraction=0.17,
    dep_distance=3.5, working_set_bytes=6 * MB,
    stream_weight=0.20, random_weight=0.45, chase_weight=0.35,
    hot_fraction=0.03, hot_prob=0.85, chase_chains=4,
    code_blocks=450, mean_block_len=5, branch_bias_concentration=3.5,
    l2_mpki_hint=5.0))


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by Table 2 name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise UnknownBenchmarkError(name) from None


def benchmark_names() -> Tuple[str, ...]:
    """All benchmark names, sorted."""
    return tuple(sorted(PROFILES))


def ilp_benchmarks() -> Tuple[str, ...]:
    """Benchmarks the paper classifies as high-ILP (low L2 miss rate)."""
    return tuple(sorted(n for n, p in PROFILES.items() if not p.is_mem))


def mem_benchmarks() -> Tuple[str, ...]:
    """Benchmarks the paper classifies as memory-bound."""
    return tuple(sorted(n for n, p in PROFILES.items() if p.is_mem))
