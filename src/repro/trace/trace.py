"""Column-wise trace container.

A :class:`Trace` holds the dynamic instruction stream of one benchmark as
parallel numpy arrays.  The simulator's fetch stage reads the columns
directly (integer indexing into numpy arrays is cheap); everything else can
use :meth:`Trace.instruction` for a friendly row view.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..errors import TraceError
from ..isa import NO_REG, NUM_ARCH_REGS, OpClass
from .instruction import TraceInstruction

#: numpy dtypes for each trace column.
_COLUMNS = {
    "op": np.int8,
    "dest": np.int16,
    "src1": np.int16,
    "src2": np.int16,
    "addr": np.int64,
    "taken": np.bool_,
    "pc": np.int64,
}


class Trace:
    """An immutable dynamic instruction trace for one benchmark.

    Attributes:
        name: Benchmark name the trace was generated from.
        op, dest, src1, src2, addr, taken, pc: Parallel numpy columns.
        data_region_bytes: Span of the data segment addressed by ``addr``.
            The runtime shifts addresses by a per-pass offset within this
            region when the trace is re-executed (FAME looping), so large
            working sets keep missing in L2 across passes instead of being
            artificially cached by trace reuse.
    """

    __slots__ = ("name", "op", "dest", "src1", "src2", "addr", "taken",
                 "pc", "data_region_bytes", "_length", "_hot_columns",
                 "_macro_plans")

    def __init__(self, name: str, columns: Dict[str, np.ndarray],
                 data_region_bytes: int = 0) -> None:
        missing = set(_COLUMNS) - set(columns)
        if missing:
            raise TraceError(f"trace {name!r} missing columns: {sorted(missing)}")
        lengths = {key: len(value) for key, value in columns.items()}
        if len(set(lengths.values())) != 1:
            raise TraceError(f"trace {name!r} has ragged columns: {lengths}")
        self.name = name
        self.data_region_bytes = int(data_region_bytes)
        self._length = next(iter(lengths.values()))
        for key, dtype in _COLUMNS.items():
            array = np.asarray(columns[key], dtype=dtype)
            array.setflags(write=False)
            setattr(self, key, array)
        self._hot_columns = None
        self._macro_plans = {}

    def __len__(self) -> int:
        return self._length

    def __reduce__(self):
        # Pickle as (name, columns, region): campaigns ship traces to
        # pool workers, and the cached hot-column lists must not travel
        # (each process rebuilds them lazily, far cheaper than the
        # serialized bytes).
        return (Trace,
                (self.name,
                 {key: getattr(self, key) for key in _COLUMNS},
                 self.data_region_bytes))

    def hot_columns(self):
        """The columns as plain Python lists, in ``_COLUMNS`` order.

        The fetch stage materializes one :class:`DynInst` per dynamic
        instruction; indexing numpy arrays there would box a numpy
        scalar per field per instruction.  The converted lists are
        cached on the trace, so every thread (and every FAME pass)
        shares one conversion.
        """
        if self._hot_columns is None:
            self._hot_columns = tuple(
                getattr(self, key).tolist() for key in _COLUMNS)
        return self._hot_columns

    def macro_plan_cache(self, width: int) -> Dict:
        """Per-``width`` macro-step plan cache, shared trace-wide.

        Plans (see :class:`repro.core.thread.MacroPlan`) depend only on
        the immutable trace columns and the machine width, never on
        thread state — so every thread running this trace, and every
        repeat of a timing run over it, shares one lazily-filled dict.
        Not pickled (see ``__reduce__``); pool workers rebuild lazily.
        """
        cache = self._macro_plans.get(width)
        if cache is None:
            cache = self._macro_plans[width] = {}
        return cache

    def instruction(self, index: int) -> TraceInstruction:
        """Row view of instruction ``index`` (supports negative indices)."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return TraceInstruction(
            index=index,
            pc=int(self.pc[index]),
            op=OpClass(int(self.op[index])),
            dest=int(self.dest[index]),
            src1=int(self.src1[index]),
            src2=int(self.src2[index]),
            addr=int(self.addr[index]),
            taken=bool(self.taken[index]),
        )

    def __iter__(self) -> Iterator[TraceInstruction]:
        for index in range(self._length):
            yield self.instruction(index)

    # --- summary statistics -------------------------------------------------

    def mix(self) -> Dict[str, float]:
        """Fraction of instructions per broad category."""
        ops = self.op
        total = max(1, len(self))
        loads = np.isin(ops, (int(OpClass.LOAD), int(OpClass.FLOAD)))
        stores = np.isin(ops, (int(OpClass.STORE), int(OpClass.FSTORE)))
        branches = ops == int(OpClass.BRANCH)
        fp = np.isin(ops, (int(OpClass.FADD), int(OpClass.FMUL),
                           int(OpClass.FDIV)))
        return {
            "load": float(loads.sum()) / total,
            "store": float(stores.sum()) / total,
            "branch": float(branches.sum()) / total,
            "fp": float(fp.sum()) / total,
            "other": float(total - loads.sum() - stores.sum()
                           - branches.sum() - fp.sum()) / total,
        }

    def code_footprint_bytes(self) -> int:
        """Span of distinct instruction addresses touched by the trace."""
        if len(self) == 0:
            return 0
        unique_pcs = np.unique(self.pc)
        return int(len(unique_pcs)) * 4

    def data_footprint_bytes(self, line_bytes: int = 64) -> int:
        """Number of distinct data cache lines touched, in bytes."""
        mem_mask = np.isin(self.op, (int(OpClass.LOAD), int(OpClass.STORE),
                                     int(OpClass.FLOAD), int(OpClass.FSTORE)))
        if not mem_mask.any():
            return 0
        lines = np.unique(self.addr[mem_mask] // line_bytes)
        return int(len(lines)) * line_bytes

    def validate(self) -> "Trace":
        """Check structural well-formedness; returns self.

        Raises:
            TraceError: if any column holds an out-of-range value.
        """
        ops = self.op
        valid_ops = {int(op) for op in OpClass}
        present = set(np.unique(ops).tolist())
        if not present <= valid_ops:
            raise TraceError(f"trace {self.name!r}: invalid op codes "
                             f"{sorted(present - valid_ops)}")
        for column_name in ("dest", "src1", "src2"):
            column = getattr(self, column_name)
            bad = (column != NO_REG) & ((column < 0) |
                                        (column >= NUM_ARCH_REGS))
            if bad.any():
                raise TraceError(
                    f"trace {self.name!r}: {column_name} out of range at "
                    f"index {int(np.argmax(bad))}")
        mem_mask = np.isin(ops, (int(OpClass.LOAD), int(OpClass.STORE),
                                 int(OpClass.FLOAD), int(OpClass.FSTORE)))
        if (self.addr[mem_mask] < 0).any():
            raise TraceError(f"trace {self.name!r}: negative data address")
        if (np.diff(self.pc) == 0).any():
            raise TraceError(f"trace {self.name!r}: consecutive identical PCs")
        return self
