"""The paper's Table 2: 54 multiprogrammed SMT workloads.

Workloads are grouped in six classes by thread count and composition:

* ``ILP2`` / ``ILP4`` — all threads from the high-ILP group;
* ``MEM2`` / ``MEM4`` — all threads memory-bound;
* ``MIX2`` / ``MIX4`` — half ILP, half MEM.

The benchmark tuples below are transcribed verbatim from Table 2.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import UnknownWorkloadError
from .profiles import get_profile


@dataclasses.dataclass(frozen=True)
class Workload:
    """One multiprogrammed workload (a row of Table 2)."""

    klass: str                    # e.g. "MEM2"
    benchmarks: Tuple[str, ...]   # one entry per hardware thread

    @property
    def name(self) -> str:
        return ",".join(self.benchmarks)

    @property
    def num_threads(self) -> int:
        return len(self.benchmarks)

    def profiles(self):
        return tuple(get_profile(b) for b in self.benchmarks)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form."""
        return {"klass": self.klass, "benchmarks": list(self.benchmarks)}

    @classmethod
    def from_dict(cls, data: Dict) -> "Workload":
        return cls(klass=data["klass"],
                   benchmarks=tuple(data["benchmarks"]))

    def __str__(self) -> str:
        return f"{self.klass}({self.name})"


_TABLE2: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "ILP2": (
        ("apsi", "eon"), ("apsi", "gcc"), ("bzip2", "vortex"),
        ("fma3d", "gcc"), ("fma3d", "mesa"), ("gcc", "mgrid"),
        ("gzip", "bzip2"), ("gzip", "vortex"), ("mgrid", "galgel"),
        ("wupwise", "gcc"),
    ),
    "MIX2": (
        ("applu", "vortex"), ("art", "gzip"), ("bzip2", "mcf"),
        ("equake", "bzip2"), ("galgel", "equake"), ("lucas", "crafty"),
        ("mcf", "eon"), ("swim", "mgrid"), ("twolf", "apsi"),
        ("wupwise", "twolf"),
    ),
    "MEM2": (
        ("applu", "art"), ("art", "mcf"), ("art", "twolf"),
        ("art", "vpr"), ("equake", "swim"), ("mcf", "twolf"),
        ("parser", "mcf"), ("swim", "mcf"), ("swim", "vpr"),
        ("twolf", "swim"),
    ),
    "ILP4": (
        ("apsi", "eon", "fma3d", "gcc"),
        ("apsi", "eon", "gzip", "vortex"),
        ("apsi", "gap", "wupwise", "perl"),
        ("crafty", "fma3d", "apsi", "vortex"),
        ("fma3d", "gcc", "gzip", "vortex"),
        ("gzip", "bzip2", "eon", "gcc"),
        ("mesa", "gzip", "fma3d", "bzip2"),
        ("wupwise", "gcc", "mgrid", "galgel"),
    ),
    "MIX4": (
        ("ammp", "applu", "apsi", "eon"),
        ("art", "gap", "twolf", "crafty"),
        ("art", "mcf", "fma3d", "gcc"),
        ("gzip", "twolf", "bzip2", "mcf"),
        ("lucas", "crafty", "equake", "bzip2"),
        ("mcf", "mesa", "lucas", "gzip"),
        ("swim", "fma3d", "vpr", "bzip2"),
        ("swim", "twolf", "gzip", "vortex"),
    ),
    "MEM4": (
        ("art", "mcf", "swim", "twolf"),
        ("art", "mcf", "vpr", "swim"),
        ("art", "twolf", "equake", "mcf"),
        ("equake", "parser", "mcf", "lucas"),
        ("equake", "vpr", "applu", "twolf"),
        ("mcf", "twolf", "vpr", "parser"),
        ("parser", "applu", "swim", "twolf"),
        ("swim", "applu", "art", "mcf"),
    ),
}

#: The six workload classes in paper presentation order.
WORKLOAD_CLASSES: Tuple[str, ...] = (
    "ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4")


def workload_class_names() -> Tuple[str, ...]:
    """Class names in the order the paper's figures present them."""
    return WORKLOAD_CLASSES


def get_workloads(klass: str,
                  limit: Optional[int] = None) -> List[Workload]:
    """Workloads of one Table 2 class, optionally capped to the first
    ``limit`` (the quick-look semantics every sweep and driver shares)."""
    try:
        rows = _TABLE2[klass]
    except KeyError:
        raise UnknownWorkloadError(klass) from None
    if limit is not None:
        rows = rows[:limit]
    return [Workload(klass=klass, benchmarks=row) for row in rows]


def all_workloads() -> List[Workload]:
    """All 54 workloads in class order."""
    result: List[Workload] = []
    for klass in WORKLOAD_CLASSES:
        result.extend(get_workloads(klass))
    return result
