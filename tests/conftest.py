"""Shared fixtures, re-exporting the helper DSL from :mod:`repro.testing`.

The config/trace-builder helpers live in ``repro.testing`` (shared with
``benchmarks/``); test modules import them from there directly rather
than via bare ``from conftest import ...``, which breaks whenever pytest
collects another rootdir whose own ``conftest`` shadows this one.
"""

from __future__ import annotations

import pytest

from repro.config import SMTConfig
from repro.testing import SMALL_CONFIG, TraceBuilder, make_processor

__all__ = ["SMALL_CONFIG", "TraceBuilder", "make_processor"]


@pytest.fixture
def small_config() -> SMTConfig:
    return SMALL_CONFIG.validate()


@pytest.fixture
def baseline_config() -> SMTConfig:
    return SMTConfig().validate()


@pytest.fixture
def trace_builder():
    return TraceBuilder


@pytest.fixture
def processor_factory():
    return make_processor
