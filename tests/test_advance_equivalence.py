"""Randomized advance-vs-step bit-identity cross-check.

The golden-digest suite pins 16 fixed cells; this suite *fuzzes* the
event-driven fast path beyond them: seeded random workloads across every
thread count and every registered policy run once with cycle skipping on
and once with it off, and the full canonical ``SimResult.to_dict()`` must
be identical — cycle counts, per-thread counters, L2 miss totals, all of
it.  A divergence here means a skip horizon let the fast path jump over a
cycle in which some structure would have acted.

The matrix is deterministic (seeded RNG) so failures reproduce; the
workloads always include at least one MEM-class benchmark so L2-miss
machinery (runahead episodes, MSHR pressure, policy gating) is actually
exercised.  A second pass shrinks the MSHR file to force rejected-load
replay windows — the intra-thread skip case.
"""

from __future__ import annotations

import random

import pytest

from repro.config import baseline
from repro.core.processor import SMTProcessor
from repro.policies.registry import policy_names
from repro.trace.generator import generate_trace
from repro.trace.profiles import ilp_benchmarks, mem_benchmarks

#: Seeded deterministically; change the seed only with a reason.
_RNG_SEED = 20260728

THREAD_COUNTS = (1, 2, 4)


def _random_cells():
    """One (threads, policy, benchmarks, trace_len, seed) cell per
    (thread count, policy) pair, drawn from a fixed-seed RNG."""
    rng = random.Random(_RNG_SEED)
    mem = list(mem_benchmarks())
    ilp = list(ilp_benchmarks())
    cells = []
    for threads in THREAD_COUNTS:
        for policy in policy_names():
            # First slot MEM-class so long-latency misses occur; the rest
            # drawn from the full set.
            names = [rng.choice(mem)]
            names += [rng.choice(mem + ilp) for _ in range(threads - 1)]
            trace_len = rng.randrange(200, 401, 50)
            seed = rng.randrange(1, 1000)
            cells.append((threads, policy, tuple(names), trace_len, seed))
    return cells


CELLS = _random_cells()


def _run(policy, benchmarks, trace_len, seed, cycle_skip,
         **config_overrides):
    traces = [generate_trace(name, trace_len, seed) for name in benchmarks]
    config = baseline().with_policy(policy, **config_overrides)
    processor = SMTProcessor(config, traces)
    processor.pipeline.cycle_skip = cycle_skip
    result = processor.run(min_passes=1, max_cycles=200_000)
    return result, processor.pipeline


@pytest.fixture(params=["python", "specialized"])
def kernel_tier(request, monkeypatch):
    """Fuzz each cell under both run-loop tiers: under ``specialized``
    the skip-on/skip-off pair exercises two *different* generated
    kernels (the key folds ``skip_enabled``), so this doubles as a
    cross-kernel equivalence check."""
    monkeypatch.setenv("REPRO_KERNEL", request.param)
    return request.param


@pytest.mark.parametrize(
    "threads,policy,benchmarks,trace_len,seed", CELLS,
    ids=[f"{t}x-{p}-{'+'.join(b)}-len{n}-s{s}"
         for t, p, b, n, s in CELLS])
def test_advance_matches_step(kernel_tier, threads, policy, benchmarks,
                              trace_len, seed):
    stepped, _ = _run(policy, benchmarks, trace_len, seed, False)
    skipped, pipeline = _run(policy, benchmarks, trace_len, seed, True)
    assert skipped.to_dict() == stepped.to_dict(), (
        f"cycle-skip divergence: {threads} threads, policy {policy}, "
        f"workload {benchmarks}, trace_len {trace_len}, seed {seed} "
        f"(skipped {pipeline.skipped_cycles} cycles in "
        f"{pipeline.skip_jumps} jumps)")


@pytest.mark.parametrize("policy", ["icount", "stall", "rat"])
def test_advance_matches_step_under_mshr_pressure(kernel_tier, policy):
    """A tiny MSHR file forces rejected-load replay windows, the case the
    intra-thread (memory-wait) skip horizon covers."""
    benchmarks = ("art", "mcf")
    stepped, step_pipe = _run(policy, benchmarks, 400, 7, False,
                              mshr_entries=2)
    skipped, skip_pipe = _run(policy, benchmarks, 400, 7, True,
                              mshr_entries=2)
    assert step_pipe.mem.mshr.rejects > 0, (
        "test premise broken: no load was ever rejected; shrink "
        "mshr_entries further")
    assert skipped.to_dict() == stepped.to_dict()
