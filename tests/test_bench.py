"""The ``repro bench`` harness (cells, reports, regression checks)."""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main


TINY_CELL = bench.BenchCell("tiny-stall", "MEM2", ("art", "mcf"),
                            "stall", trace_len=300)


class TestMatrix:
    def test_quick_is_a_subset_with_the_headline(self):
        full = {cell.id for cell in bench.bench_cells()}
        quick = {cell.id for cell in bench.bench_cells(quick=True)}
        assert quick < full
        assert bench.HEADLINE_CELL in quick

    def test_matrix_covers_thread_counts_and_policies(self):
        cells = bench.bench_cells()
        assert {cell.threads for cell in cells} == {1, 2, 4}
        assert {cell.policy for cell in cells} >= {"icount", "stall",
                                                   "flush", "rat"}
        assert len({cell.id for cell in cells}) == len(cells)


class TestTiming:
    def test_time_cell_fields(self):
        timed = bench.time_cell(TINY_CELL, repeats=1)
        assert timed["seconds"] > 0
        assert timed["cycles"] > 0
        assert timed["committed"] > 0
        assert 0 <= timed["skipped_cycles"] <= timed["cycles"]

    def test_noskip_mode_never_skips(self):
        timed = bench.time_cell(TINY_CELL, cycle_skip=False, repeats=1)
        assert timed["skipped_cycles"] == 0
        assert timed["skip_jumps"] == 0

    def test_calibration_positive(self):
        assert bench.calibrate(repeats=1) > 0


class TestReports:
    @pytest.fixture()
    def report(self, monkeypatch):
        monkeypatch.setattr(bench, "BENCH_CELLS", (TINY_CELL,))
        monkeypatch.setenv(bench.REV_ENV_VAR, "testrev")
        return bench.run_bench(repeats=1)

    def test_report_shape(self, report):
        assert report["schema"] == bench.BENCH_SCHEMA
        assert report["revision"] == "testrev"
        entry = report["cells"]["tiny-stall"]
        assert entry["policy"] == "stall"
        assert entry["normalized"] == pytest.approx(
            entry["seconds"] / report["calibration_seconds"])
        assert "speedup_vs_noskip" in entry
        assert "tiny-stall" in bench.render_report(report)

    def test_write_and_load_roundtrip(self, report, tmp_path):
        path = bench.write_report(report, str(tmp_path / "BENCH_x.json"))
        assert bench.load_report(path) == json.loads(
            json.dumps(report))

    def test_default_report_name_uses_revision(self, report, tmp_path,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = bench.write_report(report)
        assert path == "BENCH_testrev.json"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            bench.load_report(str(path))

    def test_check_passes_within_tolerance(self, report):
        reference = json.loads(json.dumps(report))
        assert bench.check_report(report, reference, tolerance=2.0) == []

    def test_check_flags_regressions(self, report):
        reference = json.loads(json.dumps(report))
        reference["cells"]["tiny-stall"]["normalized"] /= 10.0
        failures = bench.check_report(report, reference, tolerance=2.0)
        assert len(failures) == 1
        assert "tiny-stall" in failures[0]

    def test_check_ignores_unknown_cells(self, report):
        assert bench.check_report(report, {"cells": {}}, 2.0) == []

    def test_compare_summary_reports_speedup(self, report):
        reference = json.loads(json.dumps(report))
        reference["cells"]["tiny-stall"]["normalized"] *= 4.0
        lines = bench.compare_summary(report, reference)
        assert len(lines) == 1 and "4.00x" in lines[0]

    def test_compare_summary_warns_on_missing_cells(self, report):
        """A reference recorded before a cell existed (or a quick run
        diffed against a full report) warns per side and diffs the
        intersection — never a lookup error."""
        reference = json.loads(json.dumps(report))
        reference["cells"]["retired-cell"] = dict(
            reference["cells"]["tiny-stall"])
        del reference["cells"]["tiny-stall"]
        lines = bench.compare_summary(report, reference)
        assert any("tiny-stall" in line and "absent" in line
                   for line in lines)
        assert any("retired-cell" in line and "not in this run" in line
                   for line in lines)
        assert not any("x vs reference" in line for line in lines)

    def test_macro_counters_in_report(self, report):
        """Macro-step speculation accounting rides along in every
        report entry and the rendered table."""
        entry = report["cells"]["tiny-stall"]
        assert entry["macro_steps"] >= 0
        assert entry["macro_insts"] >= entry["macro_steps"]
        assert entry["macro_guard_aborts"] >= 0
        assert isinstance(entry["macro_abort_causes"], dict)
        rendered = bench.render_report(report)
        assert "macro" in rendered and "aborts" in rendered

    def test_render_tolerates_pre_speculation_reports(self, report):
        """Reports recorded before the macro columns existed render
        with placeholders, not KeyError."""
        legacy = json.loads(json.dumps(report))
        for key in ("macro_steps", "macro_insts", "macro_guard_aborts",
                    "macro_abort_causes"):
            del legacy["cells"]["tiny-stall"][key]
        assert "tiny-stall" in bench.render_report(legacy)


class TestBenchCli:
    def test_cli_runs_and_checks(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(bench, "BENCH_CELLS", (TINY_CELL,))
        monkeypatch.setenv(bench.REV_ENV_VAR, "clirev")
        out_path = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--repeats", "1", "--no-noskip",
                     "--output", str(out_path)]) == 0
        report = bench.load_report(str(out_path))
        assert "tiny-stall" in report["cells"]
        assert "speedup_vs_noskip" not in report["cells"]["tiny-stall"]

        # A second run checked against the first must be within 2x.
        second = tmp_path / "BENCH_cli2.json"
        assert main(["bench", "--repeats", "1", "--no-noskip",
                     "--output", str(second),
                     "--check", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert "check ok" in captured.out

    def test_cli_check_failure_exits_nonzero(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "BENCH_CELLS", (TINY_CELL,))
        monkeypatch.setenv(bench.REV_ENV_VAR, "clirev")
        doctored = {
            "schema": bench.BENCH_SCHEMA, "revision": "doctored",
            "quick": False, "repeats": 1, "python": "3",
            "calibration_seconds": 1.0,
            "cells": {"tiny-stall": {"normalized": 1e-9,
                                     "seconds": 1e-9}},
        }
        baseline_path = tmp_path / "BENCH_doctored.json"
        baseline_path.write_text(json.dumps(doctored))
        assert main(["bench", "--repeats", "1", "--no-noskip",
                     "--output", str(tmp_path / "out.json"),
                     "--check", str(baseline_path)]) == 1

    def test_cli_rejects_missing_baseline(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "BENCH_CELLS", (TINY_CELL,))
        assert main(["bench", "--repeats", "1", "--no-noskip",
                     "--output", str(tmp_path / "out.json"),
                     "--check", str(tmp_path / "missing.json")]) == 2
