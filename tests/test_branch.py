"""Tests for the perceptron predictor and BTB."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.perceptron import PerceptronPredictor


class TestPerceptron:
    def test_learns_always_taken(self):
        predictor = PerceptronPredictor(64, 8, 1)
        for _ in range(50):
            predictor.predict(0, 0x400, True)
        assert predictor.predict(0, 0x400, True)

    def test_learns_always_not_taken(self):
        predictor = PerceptronPredictor(64, 8, 1)
        for _ in range(50):
            predictor.predict(0, 0x400, False)
        assert predictor.predict(0, 0x400, False)

    def test_learns_alternating_pattern(self):
        # A strict alternation is linearly separable on global history.
        predictor = PerceptronPredictor(128, 12, 1)
        outcomes = [bool(index % 2) for index in range(400)]
        for taken in outcomes[:300]:
            predictor.predict(0, 0x800, taken)
        correct = sum(predictor.predict(0, 0x800, taken)
                      for taken in outcomes[300:])
        assert correct >= 95

    def test_accuracy_counter(self):
        predictor = PerceptronPredictor(64, 8, 1)
        for _ in range(100):
            predictor.predict(0, 0x400, True)
        assert 0.0 <= predictor.accuracy <= 1.0
        assert predictor.predictions == 100

    def test_per_thread_history_isolated(self):
        predictor = PerceptronPredictor(64, 8, 2)
        for _ in range(60):
            predictor.predict(0, 0x400, True)
            predictor.predict(1, 0x404, False)
        assert predictor.predict(0, 0x400, True)
        assert predictor.predict(1, 0x404, False)

    def test_theta_formula(self):
        predictor = PerceptronPredictor(64, 24, 1)
        assert predictor.theta == int(1.93 * 24 + 14)

    def test_reset_history(self):
        predictor = PerceptronPredictor(64, 8, 1)
        predictor.predict(0, 0x400, True)
        predictor.reset_history(0)
        assert all(bit == -1 for bit in predictor._histories[0])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(0, 8, 1)

    def test_empty_predictor_full_accuracy(self):
        assert PerceptronPredictor(16, 4, 1).accuracy == 1.0


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(8)
        assert not btb.lookup_and_insert(0x100)
        assert btb.lookup_and_insert(0x100)

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(2)
        btb.lookup_and_insert(0x100)
        btb.lookup_and_insert(0x200)
        btb.lookup_and_insert(0x100)   # refresh 0x100
        btb.lookup_and_insert(0x300)   # evicts 0x200
        assert btb.lookup_and_insert(0x100)
        assert not btb.lookup_and_insert(0x200)

    def test_capacity_bounded(self):
        btb = BranchTargetBuffer(4)
        for pc in range(0, 400, 4):
            btb.lookup_and_insert(pc)
        assert len(btb) <= 4

    def test_hit_rate(self):
        btb = BranchTargetBuffer(4)
        btb.lookup_and_insert(0x10)
        btb.lookup_and_insert(0x10)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0)
