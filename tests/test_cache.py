"""Tests for the set-associative cache, MSHRs and the memory hierarchy."""

import pytest

from repro.config import CacheConfig, SMTConfig
from repro.mem.cache import Cache
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.mshr import MSHRFile

from repro.testing import SMALL_CONFIG


def _small_cache(ways=2, sets=4):
    config = CacheConfig(64 * ways * sets, ways, 64, 1)
    return Cache("test", config)


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = _small_cache()
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)

    def test_line_of(self):
        cache = _small_cache()
        assert cache.line_of(0) == 0
        assert cache.line_of(63) == 0
        assert cache.line_of(64) == 1

    def test_lru_eviction_order(self):
        cache = _small_cache(ways=2, sets=1)
        cache.fill(1)
        cache.fill(2)
        cache.fill(3)  # evicts 1 (least recently used)
        assert not cache.contains(1)
        assert cache.contains(2) and cache.contains(3)

    def test_lookup_refreshes_recency(self):
        cache = _small_cache(ways=2, sets=1)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)     # 1 becomes MRU
        cache.fill(3)       # evicts 2
        assert cache.contains(1) and not cache.contains(2)

    def test_fill_returns_victim(self):
        cache = _small_cache(ways=1, sets=1)
        assert cache.fill(1) is None
        assert cache.fill(2) == 1

    def test_fill_existing_line_is_noop(self):
        cache = _small_cache()
        cache.fill(9)
        assert cache.fill(9) is None
        assert cache.occupancy() == 1

    def test_sets_isolated(self):
        cache = _small_cache(ways=1, sets=4)
        cache.fill(0)
        cache.fill(1)   # different set
        assert cache.contains(0) and cache.contains(1)

    def test_invalidate(self):
        cache = _small_cache()
        cache.fill(7)
        assert cache.invalidate(7)
        assert not cache.contains(7)
        assert not cache.invalidate(7)

    def test_touch_promotes_without_stats(self):
        cache = _small_cache(ways=2, sets=1)
        cache.fill(1)
        cache.fill(2)
        accesses_before = cache.accesses
        assert cache.touch(1)
        assert cache.accesses == accesses_before
        cache.fill(3)
        assert cache.contains(1)

    def test_touch_missing_line(self):
        assert not _small_cache().touch(42)

    def test_stats(self):
        cache = _small_cache()
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.accesses == 2
        assert cache.misses == 1
        assert cache.miss_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.accesses == 0

    def test_occupancy_bounded_by_capacity(self):
        cache = _small_cache(ways=2, sets=2)
        for line in range(100):
            cache.fill(line)
        assert cache.occupancy() <= 4


class TestMSHR:
    def test_allocate_and_pending(self):
        mshr = MSHRFile(4)
        assert mshr.allocate(10, ready_cycle=50, from_memory=True, now=0)
        assert mshr.pending(10, now=10) == (50, True)

    def test_pending_expires(self):
        mshr = MSHRFile(4)
        mshr.allocate(10, 50, True, 0)
        assert mshr.pending(10, now=50) is None

    def test_capacity_reject(self):
        mshr = MSHRFile(2)
        assert mshr.allocate(1, 100, True, 0)
        assert mshr.allocate(2, 100, True, 0)
        assert not mshr.allocate(3, 100, True, 0)
        assert mshr.rejects == 1

    def test_expiry_frees_capacity(self):
        mshr = MSHRFile(1)
        mshr.allocate(1, 10, True, 0)
        assert mshr.allocate(2, 100, True, now=20)

    def test_merge_counted(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 100, True, 0)
        mshr.pending(1, 5)
        assert mshr.merges == 1

    def test_outstanding_memory_fills(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 100, True, 0)
        mshr.allocate(2, 20, False, 0)
        assert mshr.outstanding_memory_fills(now=5) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestMSHRReleaseHorizon:
    """next_release_cycle: the file's term in the skip-horizon contract."""

    def test_empty_file_has_no_horizon(self):
        mshr = MSHRFile(4)
        assert mshr.next_release_cycle(0) is None

    def test_earliest_fill_wins(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 400, True, 0)
        mshr.allocate(2, 50, False, 0)
        mshr.allocate(3, 100, True, 0)
        assert mshr.next_release_cycle(0) == 50

    def test_completed_but_uncollected_fill_reports_past_cycle(self):
        # A fill whose ready cycle has passed means a slot is free NOW;
        # the horizon must not hide it behind a later fill (skipping past
        # that cycle would delay a replaying load's successful retry).
        mshr = MSHRFile(2)
        mshr.allocate(1, 10, True, 0)
        mshr.allocate(2, 400, True, 0)
        assert mshr.next_release_cycle(10) == 10

    def test_stale_heap_pairs_are_pruned(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 30, True, 0)
        mshr.allocate(2, 60, True, 0)
        mshr.expire(40)                      # drops line 1
        assert mshr.next_release_cycle(40) == 60
        assert mshr.pending(2, 70) is None   # resolves line 2
        assert mshr.next_release_cycle(70) is None

    def test_reallocated_line_uses_new_ready_cycle(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 10, True, 0)
        mshr.expire(20)
        mshr.allocate(1, 90, True, 20)
        assert mshr.next_release_cycle(20) == 90

    def test_force_registers_past_capacity(self):
        mshr = MSHRFile(1)
        mshr.allocate(1, 100, True, 0)
        mshr.force(2, 60)                    # store write-buffer path
        assert len(mshr) == 2
        assert mshr.next_release_cycle(0) == 60
        assert mshr.pending(2, 10) == (60, True)

    def test_expire_collects_all_due_fills(self):
        mshr = MSHRFile(8)
        for line in range(5):
            mshr.allocate(line, 10 + line, True, 0)
        mshr.expire(12)
        assert len(mshr) == 2
        assert mshr.next_release_cycle(12) == 13


class TestHierarchy:
    def _mem(self, threads=1):
        return MemoryHierarchy(SMALL_CONFIG, threads)

    def test_l1_hit_latency(self):
        mem = self._mem()
        mem.data_access(0x1000, False, 0, 0)           # cold miss fills
        result = mem.data_access(0x1000, False, 500, 0)
        assert result.complete_cycle == 500 + SMALL_CONFIG.dcache.latency
        assert not result.l2_miss

    def test_cold_miss_full_latency(self):
        mem = self._mem()
        result = mem.data_access(0x2000, False, 0, 0)
        expected = (SMALL_CONFIG.dcache.latency + SMALL_CONFIG.l2.latency
                    + SMALL_CONFIG.memory_latency)
        assert result.complete_cycle == expected
        assert result.l2_miss

    def test_l2_hit_after_l1_eviction(self):
        mem = self._mem()
        mem.data_access(0x3000, False, 0, 0)
        # Evict from tiny L1 by filling its set (same index bits).
        l1_sets = SMALL_CONFIG.dcache.num_sets
        for way in range(1, 6):
            mem.data_access(0x3000 + way * l1_sets * 64, False, 0, 0)
        result = mem.data_access(0x3000, False, 1000, 0)
        assert not result.l2_miss
        assert result.complete_cycle == (1000 + SMALL_CONFIG.dcache.latency
                                         + SMALL_CONFIG.l2.latency)

    def test_mshr_merging(self):
        mem = self._mem()
        first = mem.data_access(0x4000, False, 0, 0)
        second = mem.data_access(0x4008, False, 5, 0)  # same line
        assert second.merged
        assert second.complete_cycle == first.complete_cycle
        assert second.l2_miss

    def test_demand_miss_rejected_when_mshrs_full(self):
        mem = self._mem()
        for index in range(SMALL_CONFIG.mshr_entries):
            assert mem.data_access(0x10000 + index * 64, False, 0, 0)
        assert mem.data_access(0x80000, False, 0, 0) is None

    def test_store_never_rejected(self):
        mem = self._mem()
        for index in range(SMALL_CONFIG.mshr_entries):
            mem.data_access(0x10000 + index * 64, False, 0, 0)
        assert mem.data_access(0x90000, True, 0, 0) is not None

    def test_prefetch_credit(self):
        mem = self._mem()
        mem.data_access(0x5000, False, 0, 0, speculative=True)
        mem.data_access(0x5000, False, 9999, 0)
        assert mem.stats[0].useful_prefetches == 1
        assert mem.stats[0].prefetches == 1

    def test_ifetch_hit_and_miss(self):
        mem = self._mem()
        miss = mem.ifetch(0x100, 0, 0)
        assert miss.l2_miss
        hit = mem.ifetch(0x104, 9999, 0)
        assert hit.complete_cycle == 9999 + SMALL_CONFIG.icache.latency

    def test_per_thread_stats(self):
        mem = self._mem(threads=2)
        mem.data_access(0x100, False, 0, 0)
        mem.data_access(0x20000, False, 0, 1)
        assert mem.stats[0].loads == 1
        assert mem.stats[1].loads == 1
        assert mem.total_stats().loads == 2

    def test_warm_data_installs_silently(self):
        mem = self._mem()
        mem.warm_data(0x6000)
        assert mem.dcache.accesses == 0
        result = mem.data_access(0x6000, False, 0, 0)
        assert not result.l2_miss
        assert result.complete_cycle == SMALL_CONFIG.dcache.latency

    def test_peek_levels(self):
        mem = self._mem()
        assert mem.peek_data(0x7000) == "memory"
        mem.warm_data(0x7000)
        assert mem.peek_data(0x7000) == "l1"
        stats_before = mem.total_stats().loads
        assert mem.total_stats().loads == stats_before

    def test_reset_stats(self):
        mem = self._mem()
        mem.data_access(0x100, False, 0, 0)
        mem.reset_stats()
        assert mem.total_stats().loads == 0
        assert mem.dcache.accesses == 0

    def test_l2_mpki(self):
        mem = self._mem()
        mem.data_access(0x100, False, 0, 0)
        assert mem.stats[0].l2_mpki(1000) == pytest.approx(1.0)
        assert mem.stats[0].l2_mpki(0) == 0.0
