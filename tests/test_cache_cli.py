"""DiskStore maintenance (stats / prune) and the ``repro cache`` CLI."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import main
from repro.core.processor import SimResult
from repro.core.stats import ThreadStats
from repro.sim.store import (CODE_VERSION_SALT, EXHIBIT_DIR,
                             EXHIBIT_RENDER_SALT, DiskStore,
                             ExhibitRenderCache)


def tiny_result(policy: str = "icount") -> SimResult:
    return SimResult(benchmarks=["gzip"], policy=policy, cycles=123,
                     thread_stats=[ThreadStats(committed=45)],
                     l2_misses=[6])


def populate(store: DiskStore, keys, salt=None) -> None:
    """Write entries, optionally rewriting their payload salt."""
    for key in keys:
        store.put(key, tiny_result())
        if salt is not None:
            path = store._path(key)
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            payload["salt"] = salt
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)


KEYS_NOW = ["aa" + "0" * 62, "ab" + "0" * 62]
KEYS_OLD_SALT = ["ba" + "0" * 62, "bb" + "0" * 62, "bc" + "0" * 62]


class TestDiskStoreStats:
    def test_stats_group_by_salt(self, tmp_path):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_NOW)
        populate(store, KEYS_OLD_SALT, salt="sim-engine-v0")
        stats = store.stats()
        assert stats["entries"] == 5
        assert stats["current_salt"] == CODE_VERSION_SALT
        assert stats["by_salt"][CODE_VERSION_SALT]["entries"] == 2
        assert stats["by_salt"]["sim-engine-v0"]["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["oldest_mtime"] <= stats["newest_mtime"]

    def test_corrupt_entry_counted_separately(self, tmp_path):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_NOW[:1])
        bad_dir = tmp_path / "zz"
        bad_dir.mkdir()
        (bad_dir / ("zz" + "0" * 62 + ".json")).write_text("not json")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["by_salt"]["<corrupt>"]["entries"] == 1


class TestDiskStorePrune:
    def test_requires_a_criterion(self, tmp_path):
        with pytest.raises(ValueError):
            DiskStore(str(tmp_path)).prune()

    def test_prune_stale_salts(self, tmp_path):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_NOW)
        populate(store, KEYS_OLD_SALT, salt="sim-engine-v0")
        outcome = store.prune(stale_salts=True)
        assert (outcome.examined, outcome.removed, outcome.kept) == (5, 3, 2)
        assert outcome.bytes_freed > 0
        assert store.stats()["entries"] == 2
        # Survivors still load.
        fresh = DiskStore(str(tmp_path))
        assert fresh.get(KEYS_NOW[0]) is not None
        assert fresh.get(KEYS_OLD_SALT[0]) is None

    def test_prune_by_age(self, tmp_path):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_NOW)
        old_path = store._path(KEYS_NOW[0])
        two_weeks = time.time() - 14 * 86400
        os.utime(old_path, (two_weeks, two_weeks))
        outcome = store.prune(older_than_days=7)
        assert (outcome.removed, outcome.kept) == (1, 1)
        assert not os.path.exists(old_path)

    def test_dry_run_removes_nothing(self, tmp_path):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_OLD_SALT, salt="sim-engine-v0")
        outcome = store.prune(stale_salts=True, dry_run=True)
        assert outcome.removed == 3
        assert store.stats()["entries"] == 3

    def test_pruned_entry_leaves_memory_layer(self, tmp_path):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_OLD_SALT[:1], salt="sim-engine-v0")
        assert store.get(KEYS_OLD_SALT[0]) is not None  # warm memory layer
        store.prune(stale_salts=True)
        assert store.get(KEYS_OLD_SALT[0]) is None


class TestCacheCli:
    def test_stats_output(self, tmp_path, capsys):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_NOW)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert CODE_VERSION_SALT in out

    def test_prune_stale(self, tmp_path, capsys):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_NOW)
        populate(store, KEYS_OLD_SALT, salt="sim-engine-v0")
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--stale-salts"]) == 0
        assert "removed 3 of 5" in capsys.readouterr().out
        assert DiskStore(str(tmp_path)).stats()["entries"] == 2

    def test_prune_dry_run(self, tmp_path, capsys):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_OLD_SALT, salt="sim-engine-v0")
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--stale-salts", "--dry-run"]) == 0
        assert "would remove 3" in capsys.readouterr().out
        assert DiskStore(str(tmp_path)).stats()["entries"] == 3

    def test_prune_without_criterion_errors(self, tmp_path):
        DiskStore(str(tmp_path))
        assert main(["cache", "prune",
                     "--cache-dir", str(tmp_path)]) == 2

    def test_missing_dir_errors(self, tmp_path):
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path / "absent")]) == 2


def populate_render_cache(cache: ExhibitRenderCache, keys,
                          salt=None) -> None:
    """Write renderings, optionally rewriting their payload salt."""
    for key in keys:
        cache.put(key, {"exhibit": "Figure 1", "title": "t",
                        "data": {}, "sections": []})
        if salt is not None:
            path = cache._path(key)
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            payload["salt"] = salt
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)


RENDER_KEYS_NOW = ["ca" + "0" * 62]
RENDER_KEYS_OLD = ["cb" + "0" * 62, "cc" + "0" * 62]


class TestRenderCachePool:
    def test_stats_group_by_render_salt(self, tmp_path):
        cache = ExhibitRenderCache(str(tmp_path / EXHIBIT_DIR))
        populate_render_cache(cache, RENDER_KEYS_NOW)
        populate_render_cache(cache, RENDER_KEYS_OLD,
                              salt="exhibit-render-v0")
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["current_salt"] == EXHIBIT_RENDER_SALT
        assert stats["by_salt"][EXHIBIT_RENDER_SALT]["entries"] == 1
        assert stats["by_salt"]["exhibit-render-v0"]["entries"] == 2

    def test_prune_stale_render_salts(self, tmp_path):
        cache = ExhibitRenderCache(str(tmp_path / EXHIBIT_DIR))
        populate_render_cache(cache, RENDER_KEYS_NOW)
        populate_render_cache(cache, RENDER_KEYS_OLD,
                              salt="exhibit-render-v0")
        outcome = cache.prune(stale_salts=True)
        assert (outcome.examined, outcome.removed,
                outcome.kept) == (3, 2, 1)
        assert cache.get(RENDER_KEYS_NOW[0]) is not None
        assert cache.get(RENDER_KEYS_OLD[0]) is None

    def test_prune_by_age_and_dry_run(self, tmp_path):
        cache = ExhibitRenderCache(str(tmp_path / EXHIBIT_DIR))
        populate_render_cache(cache, RENDER_KEYS_NOW + RENDER_KEYS_OLD)
        old_path = cache._path(RENDER_KEYS_OLD[0])
        two_weeks = time.time() - 14 * 86400
        os.utime(old_path, (two_weeks, two_weeks))
        preview = cache.prune(older_than_days=7, dry_run=True)
        assert preview.removed == 1
        assert os.path.exists(old_path)
        outcome = cache.prune(older_than_days=7)
        assert (outcome.removed, outcome.kept) == (1, 2)
        assert not os.path.exists(old_path)

    def test_requires_a_criterion(self, tmp_path):
        with pytest.raises(ValueError):
            ExhibitRenderCache(str(tmp_path / EXHIBIT_DIR)).prune()

    def test_result_store_scan_skips_render_pool(self, tmp_path):
        store = DiskStore(str(tmp_path))
        populate(store, KEYS_NOW)
        cache = ExhibitRenderCache(str(tmp_path / EXHIBIT_DIR))
        populate_render_cache(cache, RENDER_KEYS_NOW)
        assert store.stats()["entries"] == 2
        assert cache.stats()["entries"] == 1


class TestCacheCliBothPools:
    def test_stats_report_both_pools(self, tmp_path, capsys):
        populate(DiskStore(str(tmp_path)), KEYS_NOW)
        cache = ExhibitRenderCache(str(tmp_path / EXHIBIT_DIR))
        populate_render_cache(cache, RENDER_KEYS_NOW)
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "render cache" in out
        assert EXHIBIT_RENDER_SALT in out

    def test_stats_without_render_pool(self, tmp_path, capsys):
        populate(DiskStore(str(tmp_path)), KEYS_NOW)
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "render cache: none" in out
        # stats must not create the pool as a side effect
        assert not os.path.isdir(tmp_path / EXHIBIT_DIR)

    def test_prune_covers_both_pools(self, tmp_path, capsys):
        populate(DiskStore(str(tmp_path)), KEYS_OLD_SALT,
                 salt="sim-engine-v0")
        cache = ExhibitRenderCache(str(tmp_path / EXHIBIT_DIR))
        populate_render_cache(cache, RENDER_KEYS_OLD,
                              salt="exhibit-render-v0")
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--stale-salts"]) == 0
        out = capsys.readouterr().out
        assert "removed 3 of 3" in out
        assert "prune (render cache): removed 2 of 2" in out
        assert DiskStore(str(tmp_path)).stats()["entries"] == 0
        assert cache.stats()["entries"] == 0
