"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_spec
from repro.sim.runner import RunSpec


class TestParser:
    def test_accepts_exhibits(self):
        parser = build_parser()
        args = parser.parse_args(["figure1"])
        assert args.exhibit == "figure1"

    def test_rejects_unknown_exhibit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_options(self):
        args = build_parser().parse_args(
            ["figure6", "--trace-len", "500", "--seed", "9",
             "--workloads-per-class", "2", "--classes", "MEM2", "MEM4"])
        assert args.trace_len == 500
        assert args.seed == 9
        assert args.workloads_per_class == 2
        assert args.classes == ["MEM2", "MEM4"]

    def test_make_spec_overrides(self):
        args = build_parser().parse_args(["table1", "--trace-len", "123"])
        spec = make_spec(args)
        assert isinstance(spec, RunSpec)
        assert spec.trace_len == 123


class TestMain:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Perceptron" in out

    def test_figure1_tiny(self, capsys):
        code = main(["figure1", "--trace-len", "300",
                     "--workloads-per-class", "1", "--classes", "ILP2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "regenerated" in out
