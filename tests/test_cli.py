"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, make_engine, make_spec
from repro.sim.executors import (ShardSpec, ShardedExecutor,
                                 ThreadPoolBackend)
from repro.sim.manifest import CampaignManifest
from repro.sim.runner import RunSpec

TINY_ARGS = ["--trace-len", "300", "--workloads-per-class", "1",
             "--classes", "MEM2"]


class TestParser:
    def test_accepts_exhibits(self):
        parser = build_parser()
        args = parser.parse_args(["figure1"])
        assert args.exhibit == "figure1"

    def test_rejects_unknown_exhibit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_options(self):
        args = build_parser().parse_args(
            ["figure6", "--trace-len", "500", "--seed", "9",
             "--workloads-per-class", "2", "--classes", "MEM2", "MEM4"])
        assert args.trace_len == 500
        assert args.seed == 9
        assert args.workloads_per_class == 2
        assert args.classes == ["MEM2", "MEM4"]

    def test_make_spec_overrides(self):
        args = build_parser().parse_args(["table1", "--trace-len", "123"])
        spec = make_spec(args)
        assert isinstance(spec, RunSpec)
        assert spec.trace_len == 123


class TestMain:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Perceptron" in out

    def test_figure1_tiny(self, capsys):
        code = main(["figure1", "--trace-len", "300",
                     "--workloads-per-class", "1", "--classes", "ILP2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "regenerated" in out


class TestBackendFlag:
    def test_thread_backend_selected(self):
        args = build_parser().parse_args(
            ["figure1", "--backend", "thread", "--jobs", "3"])
        backend = make_engine(args).backend
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.jobs == 3

    def test_shard_wraps_backend(self):
        args = build_parser().parse_args(
            ["figure1", "--shard", "2/4", "--jobs", "2",
             "--cache-dir", "unused"])
        backend = make_engine(args).backend
        assert isinstance(backend, ShardedExecutor)
        assert backend.shard == ShardSpec(2, 4)

    def test_bad_shard_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--shard", "4/2"])

    def test_thread_backend_output_matches_serial(self, capsys):
        def table_lines(text):
            # Everything except the timing status line, which varies.
            return [line for line in text.splitlines()
                    if not line.startswith("[figure1 regenerated")]

        assert main(["figure1", *TINY_ARGS, "--no-progress"]) == 0
        serial = capsys.readouterr().out
        assert main(["figure1", *TINY_ARGS, "--no-progress",
                     "--backend", "thread", "--jobs", "2"]) == 0
        threaded = capsys.readouterr().out
        assert table_lines(serial) == table_lines(threaded)


class TestPlanSubcommand:
    def test_plan_round_trips(self, capsys):
        assert main(["plan", "figure1", *TINY_ARGS]) == 0
        out = capsys.readouterr().out
        manifest = CampaignManifest.from_json(out)
        assert manifest.to_json() == out
        assert [plan.name for plan in manifest.exhibits] == ["figure1"]
        assert len(manifest) > 0

    def test_plan_all_covers_every_exhibit(self, capsys):
        assert main(["plan", "all", *TINY_ARGS]) == 0
        captured = capsys.readouterr()
        manifest = CampaignManifest.from_json(captured.out)
        assert len(manifest.exhibits) == 8
        assert "campaign manifest" in captured.err  # summary on stderr

    def test_plan_shard_slice(self, capsys):
        assert main(["plan", "all", *TINY_ARGS]) == 0
        full = CampaignManifest.from_json(capsys.readouterr().out)
        keys = []
        for k in (1, 2):
            assert main(["plan", "all", *TINY_ARGS,
                         "--shard", f"{k}/2"]) == 0
            piece = CampaignManifest.from_json(capsys.readouterr().out)
            assert piece.shard == f"{k}/2"
            keys.extend(piece.keys())
        assert sorted(keys) == sorted(full.keys())

    def test_plan_output_file(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["plan", "figure1", *TINY_ARGS,
                     "--output", str(path)]) == 0
        capsys.readouterr()
        manifest = CampaignManifest.from_json(path.read_text())
        assert len(manifest) > 0

    def test_plan_executes_nothing(self, capsys):
        # Planning 'all' at full default scale must return immediately —
        # it would take minutes if any cell were simulated.
        assert main(["plan", "all"]) == 0
        manifest = CampaignManifest.from_json(capsys.readouterr().out)
        assert len(manifest) > 100

    def test_plan_is_deterministic(self, capsys):
        assert main(["plan", "all", *TINY_ARGS]) == 0
        first = capsys.readouterr().out
        assert main(["plan", "all", *TINY_ARGS]) == 0
        assert capsys.readouterr().out == first


class TestShardExecuteOnly:
    def test_shard_renders_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["figure1", *TINY_ARGS, "--no-progress",
                     "--shard", "1/2", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "Throughput" not in out     # no exhibit output
        assert "shard 1/2" in out
        assert "executed" in out

    def test_shard_json_format_keeps_stdout_clean(self, tmp_path,
                                                  capsys):
        cache = str(tmp_path / "cache")
        assert main(["figure1", *TINY_ARGS, "--no-progress", "--format",
                     "json", "--shard", "1/2", "--cache-dir",
                     cache]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""          # status went to stderr
        assert "shard 1/2" in captured.err
