"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import CacheConfig, SMTConfig, baseline, min_registers_for
from repro.errors import ConfigError


class TestCacheConfig:
    def test_table1_dcache_geometry(self):
        cache = CacheConfig(64 * 1024, 4, 64, 3)
        assert cache.num_lines == 1024
        assert cache.num_sets == 256

    def test_table1_l2_geometry(self):
        cache = CacheConfig(1024 * 1024, 8, 64, 20)
        assert cache.num_lines == 16384
        assert cache.num_sets == 2048

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(3 * 1024, 1, 64, 1).validate("x")

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 2, 64, 1).validate("x")

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(4096, 2, 64, -1).validate("x")

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(0, 2, 64, 1).validate("x")


class TestSMTConfigValidation:
    def test_baseline_is_valid(self):
        baseline()

    def test_baseline_matches_table1(self):
        config = baseline()
        assert config.pipeline_depth == 10
        assert config.width == 8
        assert config.rob_size == 512
        assert config.int_regs == 320 and config.fp_regs == 320
        assert (config.int_iq_size, config.fp_iq_size,
                config.ls_iq_size) == (64, 64, 64)
        assert (config.int_units, config.fp_units,
                config.ldst_units) == (6, 3, 4)
        assert config.memory_latency == 400
        assert config.l2.line_bytes == 64

    @pytest.mark.parametrize("field,value", [
        ("pipeline_depth", 2),
        ("width", 0),
        ("rob_size", 4),
        ("int_regs", 32),
        ("fp_regs", 16),
        ("int_iq_size", 0),
        ("memory_latency", 0),
        ("mshr_entries", 0),
        ("fetch_threads", 0),
        ("redirect_penalty", -1),
        ("long_latency_threshold", 0),
        ("hill_delta", 1.5),
        ("hill_min_share", 0.9),
        ("dcra_slow_weight", 0.5),
    ])
    def test_rejects_bad_field(self, field, value):
        config = dataclasses.replace(SMTConfig(), **{field: value})
        with pytest.raises(ConfigError):
            config.validate()

    def test_rejects_mismatched_line_sizes(self):
        config = dataclasses.replace(
            SMTConfig(), icache=CacheConfig(64 * 1024, 4, 32, 1))
        with pytest.raises(ConfigError):
            config.validate()


class TestSMTConfigHelpers:
    def test_with_policy(self):
        config = baseline().with_policy("rat")
        assert config.policy == "rat"
        assert baseline().policy == "icount"

    def test_with_policy_overrides(self):
        config = baseline().with_policy("rat", rat_prefetch=False)
        assert config.rat_prefetch is False

    def test_with_registers_both_files(self):
        config = baseline().with_registers(128)
        assert config.int_regs == 128 and config.fp_regs == 128

    def test_with_registers_asymmetric(self):
        config = baseline().with_registers(128, 192)
        assert config.int_regs == 128 and config.fp_regs == 192

    def test_max_threads_baseline(self):
        # 320 registers: (320-16)//32 = 9 contexts' architectural state.
        assert baseline().max_threads() == 9

    def test_max_threads_small_file(self):
        assert baseline().with_registers(96).max_threads() == 2

    def test_min_registers_for(self):
        assert min_registers_for(2) == 80
        assert min_registers_for(4) == 144

    def test_min_registers_rejects_zero_threads(self):
        with pytest.raises(ConfigError):
            min_registers_for(0)

    def test_config_is_hashable(self):
        assert hash(baseline()) == hash(baseline())

    def test_table1_rows_cover_every_parameter(self):
        rows = dict(baseline().table1_rows())
        assert rows["Reorder buffer size"] == "512 shared entries"
        assert rows["INT/FP registers"] == "320 / 320"
        assert rows["L2 Cache"].startswith("1 MB")
        assert rows["Main memory latency"] == "400 cycles"
        assert len(rows) == 12
