"""Event-driven cycle skipping: engagement, equivalence, edge cases.

The golden-digest suite proves bit-identity on its matrix; these tests
pin the *mechanics*: that idle windows are actually jumped over, that
the deadlock guard fires at the exact cycle the per-cycle model would
have raised it, that runahead exits scheduled inside a skipped window
are honored on time, that the FAME cycle cap clamps the jump target,
and that unknown policies with per-cycle behaviour disable the fast
path instead of risking divergence.
"""

from __future__ import annotations

import pytest

from repro.config import baseline
from repro.core.pipeline import _DEADLOCK_WINDOW, SMTPipeline
from repro.core.processor import SMTProcessor
from repro.errors import DeadlockError
from repro.policies.base import FetchPolicy
from repro.policies.registry import create_policy
from repro.trace.generator import generate_trace


def make_pipeline(policy_name="icount", benchmarks=("art", "mcf"),
                  trace_len=600, **config_overrides):
    config = baseline().with_policy(policy_name, **config_overrides)
    traces = [generate_trace(name, trace_len, 1) for name in benchmarks]
    policy = create_policy(policy_name, config)
    return SMTPipeline(config, traces, policy)


def run_pair(policy_name, benchmarks=("art", "mcf"), trace_len=800,
             min_passes=1, max_cycles=2_000_000, **config_overrides):
    """One cell simulated with and without the fast path."""
    outcomes = {}
    for skip in (False, True):
        config = baseline().with_policy(policy_name, **config_overrides)
        traces = [generate_trace(name, trace_len, 1)
                  for name in benchmarks]
        processor = SMTProcessor(config, traces)
        processor.pipeline.cycle_skip = skip
        result = processor.run(min_passes=min_passes,
                               max_cycles=max_cycles)
        outcomes[skip] = (result, processor.pipeline)
    return outcomes


class TestSkipEngagement:
    def test_mem_cell_skips_most_cycles(self):
        outcomes = run_pair("stall")
        result, pipeline = outcomes[True]
        assert pipeline.skip_jumps > 0
        assert pipeline.skipped_cycles > result.cycles // 2
        assert outcomes[False][0].to_dict() == result.to_dict()

    def test_noskip_pipeline_never_jumps(self):
        _, pipeline = run_pair("stall")[False]
        assert pipeline.skip_jumps == 0
        assert pipeline.skipped_cycles == 0

    @pytest.mark.parametrize("policy", ["dcra", "mlp"])
    def test_horizon_policies_skip_and_match(self, policy):
        outcomes = run_pair(policy)
        result, pipeline = outcomes[True]
        assert pipeline.skipped_cycles > 0, (
            f"{policy} declared a skip horizon but never skipped")
        assert outcomes[False][0].to_dict() == result.to_dict()

    def test_step_keeps_single_cycle_semantics(self):
        pipeline = make_pipeline("stall")
        for expected_cycle in range(50):
            assert pipeline.cycle == expected_cycle
            pipeline.step()


class TestDeadlockAcrossSkip:
    def _gate_everything(self, pipeline) -> None:
        for thread in pipeline.threads:
            thread.gate_fetch_until(1 << 40)

    def test_guard_trips_at_exact_cycle(self):
        # An empty, fully fetch-gated machine has no events at all: the
        # only bound on the jump is the deadlock guard itself.
        pipeline = make_pipeline("icount")
        self._gate_everything(pipeline)
        with pytest.raises(DeadlockError) as excinfo:
            for _ in range(10_000):
                pipeline.advance()
        assert excinfo.value.cycle == _DEADLOCK_WINDOW + 1
        assert pipeline.skip_jumps >= 1
        assert pipeline.gstats.cycles == _DEADLOCK_WINDOW + 2

    def test_guard_cycle_matches_stepped_model(self):
        stepped = make_pipeline("icount")
        self._gate_everything(stepped)
        stepped.cycle_skip = False
        with pytest.raises(DeadlockError) as step_err:
            for _ in range(_DEADLOCK_WINDOW + 10):
                stepped.advance()
        skipped = make_pipeline("icount")
        self._gate_everything(skipped)
        with pytest.raises(DeadlockError) as skip_err:
            for _ in range(10_000):
                skipped.advance()
        assert skip_err.value.cycle == step_err.value.cycle
        # Bulk accounting matches the per-cycle model's sampling.
        assert (skipped.gstats.cycles == stepped.gstats.cycles)
        for fast, slow in zip(skipped.threads, stepped.threads):
            assert fast.stats.to_dict() == slow.stats.to_dict()


class TestRunaheadAcrossSkip:
    def test_exit_event_mid_window_is_not_missed(self):
        # stop-fetch-in-runahead gates the runahead thread for the whole
        # episode, so the machine goes quiescent while an exit is
        # pending — the exact case where a careless jump would overshoot
        # the trigger's completion cycle.
        outcomes = run_pair("rat", benchmarks=("mcf",), trace_len=800,
                            rat_stop_fetch_in_runahead=True)
        result, pipeline = outcomes[True]
        stats = result.thread_stats[0]
        assert stats.runahead_episodes > 0
        assert pipeline.skipped_cycles > 0
        assert outcomes[False][0].to_dict() == result.to_dict()

    def test_plain_rat_cell_matches(self):
        outcomes = run_pair("rat", trace_len=600)
        assert (outcomes[False][0].to_dict()
                == outcomes[True][0].to_dict())


class TestMemoryWaitAcrossSkip:
    """Intra-thread skipping: ready loads replaying on a full MSHR file.

    A rejected demand load stays READY and retries every stepped cycle;
    the per-structure horizons (IssueQueue.next_ready_cycle +
    MemoryHierarchy.next_fill_cycle) let the fast path jump the whole
    replay window instead of stepping it.
    """

    def test_replay_window_is_skipped_bit_identically(self):
        outcomes = run_pair("icount", trace_len=800, mshr_entries=2)
        stepped, stepped_pipeline = outcomes[False]
        skipped, skipping_pipeline = outcomes[True]
        # Premise: the shrunken file actually rejected demand loads.
        assert stepped_pipeline.mem.mshr.rejects > 0
        assert skipping_pipeline.skipped_cycles > 0
        assert skipped.to_dict() == stepped.to_dict()

    def test_skipping_elides_replay_attempts(self):
        # The stepped model retries the rejected load every idle cycle;
        # the fast path jumps those cycles, so it must record strictly
        # fewer rejected attempts while producing the same SimResult
        # (reject counts are diagnostics, not part of SimResult).
        outcomes = run_pair("icount", trace_len=800, mshr_entries=2)
        stepped_rejects = outcomes[False][1].mem.mshr.rejects
        skipping_rejects = outcomes[True][1].mem.mshr.rejects
        assert outcomes[True][1].skipped_cycles > 0
        assert skipping_rejects < stepped_rejects

    def test_rat_under_mshr_pressure_matches(self):
        outcomes = run_pair("rat", trace_len=800, mshr_entries=4)
        assert (outcomes[False][0].to_dict()
                == outcomes[True][0].to_dict())


class TestCycleCapAcrossSkip:
    def test_truncated_run_reports_exact_cap(self):
        outcomes = run_pair("stall", benchmarks=("swim", "mcf"),
                            trace_len=600, min_passes=50,
                            max_cycles=3_000)
        for skip in (False, True):
            result, _ = outcomes[skip]
            assert result.truncated
            assert result.cycles == 3_000
        skipping_pipeline = outcomes[True][1]
        assert skipping_pipeline.skip_jumps > 0
        assert (outcomes[False][0].to_dict()
                == outcomes[True][0].to_dict())


class _OpaquePerCyclePolicy(FetchPolicy):
    """Overrides on_cycle without declaring a skip horizon."""

    name = "opaque"

    def on_cycle(self, now: int) -> None:  # pragma: no cover - trivial
        pass


class TestUnknownPolicyGuard:
    def test_on_cycle_without_horizon_disables_skipping(self):
        config = baseline()
        traces = [generate_trace(name, 600, 1) for name in ("art", "mcf")]
        pipeline = SMTPipeline(config, traces,
                               _OpaquePerCyclePolicy(config))
        for _ in range(3_000):
            pipeline.advance()
        assert pipeline.skip_jumps == 0

    def test_builtin_policies_keep_fast_path(self):
        pipeline = make_pipeline("stall")
        assert pipeline._policy_skip_ok
        pipeline = make_pipeline("dcra")
        assert pipeline._policy_skip_ok

    def test_on_cycle_below_inherited_horizon_disables_skipping(self):
        # A subclass changing per-cycle behaviour must not ride on its
        # parent's skip_horizon contract.
        from repro.policies.dcra import DCRAPolicy

        class RogueDCRA(DCRAPolicy):
            name = "rogue-dcra"

            def on_cycle(self, now: int) -> None:  # pragma: no cover
                pass

        config = baseline().with_policy("dcra")
        traces = [generate_trace(name, 400, 1) for name in ("art", "mcf")]
        pipeline = SMTPipeline(config, traces, RogueDCRA(config))
        assert not pipeline._policy_skip_ok

        class RedeclaredDCRA(RogueDCRA):
            def skip_horizon(self, now: int) -> int:  # pragma: no cover
                return now + 1

        pipeline = SMTPipeline(config, traces, RedeclaredDCRA(config))
        assert pipeline._policy_skip_ok
