"""Tests for the simulation engine: backends, stores, cache keying.

Acceptance properties (ISSUE 1):

* ``ProcessPoolBackend`` and ``SerialBackend`` produce byte-identical
  results for the same sweep;
* a figure-level sweep run twice against one ``--cache-dir`` performs
  zero simulations the second time;
* a config change busts the cache key.
"""

import json

import pytest

from repro.cli import main
from repro.config import baseline
from repro.core.processor import SimResult
from repro.experiments import figure1
from repro.sim.engine import (
    ProcessPoolBackend,
    SerialBackend,
    SimEngine,
    SweepCell,
    get_engine,
    reference_cell,
    set_engine,
    simulate_cell,
)
from repro.sim.runner import RunSpec
from repro.sim.store import DiskStore, MemoryStore, cache_key
from repro.sim.sweep import sweep_policies
from repro.trace.workloads import Workload

TINY = RunSpec(trace_len=300, seed=3, max_cycles=200_000)

WORKLOAD = Workload("ILP2", ("gzip", "eon"))
MEM_WORKLOAD = Workload("MEM2", ("swim", "art"))


def canonical(result: SimResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def small_sweep(engine):
    return sweep_policies(("icount", "rat"), ("MEM2",), spec=TINY,
                          workloads_per_class=2, engine=engine)


def sweep_fingerprint(sweep, engine) -> str:
    """Canonical bytes of every run + aggregate metric of a sweep."""
    payload = {
        "results": [[canonical(run.result) for run in agg.runs]
                    for agg in sweep.cells.values()],
        "metrics": {
            f"{policy}/{klass}/{name}": repr(
                sweep.metric(policy, klass, name))
            for (policy, klass) in sweep.cells
            for name in ("throughput", "fairness", "executed", "cpi",
                         "ed2")
        },
    }
    return json.dumps(payload, sort_keys=True)


class TestCacheKey:
    def test_key_is_stable(self):
        cell = SweepCell.make(WORKLOAD, "icount", spec=TINY)
        assert cell.key() == cell.key()
        again = SweepCell.make(WORKLOAD, "icount", spec=TINY)
        assert cell.key() == again.key()

    def test_policy_normalized_into_config(self):
        plain = SweepCell.make(WORKLOAD, "rat", baseline(), TINY)
        prepoliced = SweepCell.make(WORKLOAD, "rat",
                                    baseline().with_policy("rat"), TINY)
        assert plain.key() == prepoliced.key()

    def test_config_change_busts_key(self):
        base = SweepCell.make(WORKLOAD, "icount", baseline(), TINY)
        resized = SweepCell.make(WORKLOAD, "icount",
                                 baseline().with_registers(160), TINY)
        assert base.key() != resized.key()

    def test_spec_change_busts_key(self):
        base = SweepCell.make(WORKLOAD, "icount", spec=TINY)
        longer = SweepCell.make(
            WORKLOAD, "icount",
            spec=RunSpec(trace_len=301, seed=3, max_cycles=200_000))
        assert base.key() != longer.key()

    def test_salt_busts_key(self):
        config, spec = baseline(), TINY
        assert (cache_key(WORKLOAD, "icount", config, spec, salt="a")
                != cache_key(WORKLOAD, "icount", config, spec, salt="b"))


class TestSerialization:
    def test_simresult_json_roundtrip_is_exact(self):
        result = simulate_cell(SweepCell.make(WORKLOAD, "icount",
                                              spec=TINY))
        restored = SimResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert canonical(restored) == canonical(result)
        assert restored.ipcs == result.ipcs
        assert restored.ed2() == result.ed2()

    def test_config_roundtrip(self):
        config = baseline().with_policy("rat", rat_prefetch=False)
        assert type(config).from_dict(config.to_dict()) == config

    def test_spec_and_workload_roundtrip(self):
        assert RunSpec.from_dict(TINY.to_dict()) == TINY
        assert Workload.from_dict(WORKLOAD.to_dict()) == WORKLOAD


class TestEngineMemo:
    def test_run_workload_returns_same_object(self):
        engine = SimEngine()
        first = engine.run_workload(WORKLOAD, "icount", spec=TINY)
        second = engine.run_workload(WORKLOAD, "icount", spec=TINY)
        assert first is second
        assert engine.counters.simulated == 1

    def test_duplicate_cells_simulated_once(self):
        engine = SimEngine()
        cell = SweepCell.make(MEM_WORKLOAD, "icount", spec=TINY)
        runs = engine.run_cells([cell, cell, cell])
        assert engine.counters.simulated == 1
        assert runs[0] is runs[1] is runs[2]

    def test_default_engine_swap(self):
        engine = SimEngine()
        previous = set_engine(engine)
        try:
            assert get_engine() is engine
        finally:
            set_engine(previous)


class TestBackendDeterminism:
    def test_pool_matches_serial_bit_identical(self):
        serial = SimEngine(backend=SerialBackend())
        pooled = SimEngine(backend=ProcessPoolBackend(jobs=2))
        fp_serial = sweep_fingerprint(small_sweep(serial), serial)
        fp_pooled = sweep_fingerprint(small_sweep(pooled), pooled)
        assert fp_serial == fp_pooled
        assert pooled.counters.simulated > 0

    def test_pool_single_job_falls_back_to_serial(self):
        engine = SimEngine(backend=ProcessPoolBackend(jobs=1))
        run = engine.run_workload(WORKLOAD, "icount", spec=TINY)
        assert run.throughput > 0


class TestBatchTraceGeneration:
    def test_batch_traces_covers_and_dedups(self):
        from repro.sim.engine import batch_traces
        cells = [SweepCell.make(WORKLOAD, "icount", spec=TINY),
                 SweepCell.make(WORKLOAD, "rat", spec=TINY),
                 SweepCell.make(MEM_WORKLOAD, "icount", spec=TINY)]
        traces = batch_traces(cells)
        expected = {(name, TINY.trace_len, TINY.seed)
                    for cell in cells for name in cell.workload.benchmarks}
        assert set(traces) == expected
        for (name, length, _seed), trace in traces.items():
            assert trace.name == name and len(trace) == length

    def test_primed_trace_is_served_verbatim(self):
        import repro.trace.generator as generator
        trace = generator.generate_trace("gzip", 300, seed=3)
        marker = generator.Trace(
            "gzip",
            {key: getattr(trace, key)
             for key in ("op", "dest", "src1", "src2", "addr", "taken",
                         "pc")},
            data_region_bytes=trace.data_region_bytes)
        generator.prime_traces({("gzip", 301, 3): marker})
        try:
            generator.generate_trace.cache_clear()
            assert generator.generate_trace("gzip", 301, 3) is marker
        finally:
            generator._PRIMED.clear()
            generator.generate_trace.cache_clear()

    def test_trace_pickle_roundtrip_drops_hot_columns(self):
        import pickle
        from repro.trace.generator import generate_trace
        trace = generate_trace("gzip", 300, seed=3)
        trace.hot_columns()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._hot_columns is None
        assert clone.name == trace.name
        assert canonical_trace(clone) == canonical_trace(trace)


def canonical_trace(trace) -> str:
    return json.dumps({key: getattr(trace, key).tolist()
                       for key in ("op", "dest", "src1", "src2", "addr",
                                   "taken", "pc")})


class TestResultStore:
    def test_second_sweep_performs_zero_simulations(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = SimEngine(store=DiskStore(cache))
        fingerprint = sweep_fingerprint(small_sweep(first), first)
        assert first.counters.simulated > 0

        second = SimEngine(store=DiskStore(cache))
        refingerprint = sweep_fingerprint(small_sweep(second), second)
        assert second.counters.simulated == 0
        assert second.counters.store_hits > 0
        assert refingerprint == fingerprint

    def test_config_change_busts_disk_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = SimEngine(store=DiskStore(cache))
        first.run_workload(WORKLOAD, "icount", spec=TINY)

        second = SimEngine(store=DiskStore(cache))
        second.run_workload(WORKLOAD, "icount",
                            config=baseline().with_registers(160),
                            spec=TINY)
        assert second.counters.simulated == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        engine = SimEngine(store=DiskStore(cache))
        engine.run_workload(WORKLOAD, "icount", spec=TINY)
        for path in (tmp_path / "cache").rglob("*.json"):
            path.write_text("{not json")

        again = SimEngine(store=DiskStore(cache))
        again.run_workload(WORKLOAD, "icount", spec=TINY)
        assert again.counters.simulated == 1

    def test_memory_store_hit_counting(self):
        store = MemoryStore()
        engine = SimEngine(store=store)
        engine.run_workload(MEM_WORKLOAD, "icount", spec=TINY)
        engine._memo.clear()  # force the next lookup through the store
        engine.run_workload(MEM_WORKLOAD, "icount", spec=TINY)
        assert store.hits == 1
        assert engine.counters.simulated == 1


class TestFigureLevelCaching:
    """The ISSUE acceptance criterion, at figure granularity."""

    def test_figure1_second_run_zero_simulations(self, tmp_path):
        cache = str(tmp_path / "cache")
        kwargs = dict(spec=TINY, classes=("MEM2",), workloads_per_class=1)

        first = SimEngine(store=DiskStore(cache))
        result1 = figure1(engine=first, **kwargs)
        assert first.counters.simulated > 0

        second = SimEngine(store=DiskStore(cache))
        result2 = figure1(engine=second, **kwargs)
        assert second.counters.simulated == 0
        assert result2.render() == result1.render()


class TestCLIIntegration:
    ARGS = ["figure1", "--trace-len", "300", "--seed", "3",
            "--workloads-per-class", "1", "--classes", "MEM2",
            "--no-progress"]

    def test_jobs_flag_matches_serial_output(self, tmp_path, capsys):
        assert main(self.ARGS + ["--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(self.ARGS + ["--jobs", "2"]) == 0
        pooled_out = capsys.readouterr().out
        # The exhibit body (everything before the timing line) must be
        # byte-identical between backends.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("[figure1 ")]
        assert strip(pooled_out) == strip(serial_out)
        assert "simulated=" in serial_out

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "simulated=0," in second
        assert "simulated=0," not in first
