"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigError,
    DeadlockError,
    ReproError,
    SimulationError,
    TraceError,
    UnknownBenchmarkError,
    UnknownPolicyError,
    UnknownWorkloadError,
)


def test_all_errors_derive_from_repro_error():
    for error_class in (ConfigError, TraceError, SimulationError,
                        DeadlockError, UnknownBenchmarkError,
                        UnknownPolicyError, UnknownWorkloadError):
        assert issubclass(error_class, ReproError)


def test_deadlock_is_simulation_error():
    assert issubclass(DeadlockError, SimulationError)


def test_unknown_benchmark_message_and_name():
    error = UnknownBenchmarkError("nosuch")
    assert error.name == "nosuch"
    assert "nosuch" in str(error)


def test_unknown_policy_name():
    error = UnknownPolicyError("bogus")
    assert error.name == "bogus"


def test_deadlock_carries_cycle():
    error = DeadlockError(1234, "stuck")
    assert error.cycle == 1234
    assert "1234" in str(error) and "stuck" in str(error)


def test_unknown_workload():
    with pytest.raises(ReproError):
        raise UnknownWorkloadError("MEM9")
