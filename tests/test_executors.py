"""Executor registry: thread backend, sharded execution, engine paths.

Covers the *execute* stage of the manifest dataflow: every executor
produces bit-identical results; a sharded executor touches only its
slice; ``SimEngine.execute_cells`` fills a shared store so that the
union of shards assembles with zero simulations; and the assembly path
(``run_cells``) refuses a partial batch loudly.
"""

import json

import pytest

from repro.errors import IncompleteBatchError
from repro.sim.engine import SimEngine, SweepCell
from repro.sim.executors import (SerialBackend, ShardSpec,
                                 ShardedExecutor, ThreadPoolBackend,
                                 executor_names, get_executor)
from repro.sim.runner import RunSpec
from repro.sim.store import DiskStore
from repro.trace.workloads import Workload

TINY = RunSpec(trace_len=240, seed=3, max_cycles=200_000)

CELLS = [
    SweepCell.make(Workload("MEM2", ("art", "mcf")), "icount", spec=TINY),
    SweepCell.make(Workload("MEM2", ("art", "mcf")), "rat", spec=TINY),
    SweepCell.make(Workload("ILP2", ("gzip", "eon")), "icount", spec=TINY),
    SweepCell.make(Workload("ILP2", ("gzip", "eon")), "stall", spec=TINY),
    SweepCell.make(Workload("MIX2", ("bzip2", "mcf")), "flush", spec=TINY),
]


def fingerprints(runs):
    return [json.dumps(run.result.to_dict(), sort_keys=True)
            for run in runs]


def split_spec():
    """A shard count under which CELLS actually split across shards."""
    for count in range(2, 6):
        owners = {ShardSpec(1, count).owns(cell.key())
                  for cell in CELLS}
        if len(owners) == 2:
            return count
    raise AssertionError("CELLS never split; extend the cell list")


class TestRegistry:
    def test_names(self):
        assert set(executor_names()) >= {"serial", "process", "thread",
                                         "sharded"}

    def test_get_executor(self):
        assert isinstance(get_executor("serial"), SerialBackend)
        assert get_executor("thread", 3).jobs == 3
        assert get_executor("process", 2).jobs == 2
        assert get_executor("thread", None).jobs >= 1

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("gpu")

    def test_sharded_needs_explicit_construction(self):
        with pytest.raises(ValueError, match="wraps another"):
            get_executor("sharded")


class TestThreadBackend:
    def test_bit_identical_to_serial(self):
        serial = SimEngine(backend=SerialBackend())
        threaded = SimEngine(backend=ThreadPoolBackend(jobs=4))
        assert fingerprints(threaded.run_cells(CELLS)) == \
            fingerprints(serial.run_cells(CELLS))
        assert threaded.counters.simulated == len(CELLS)

    def test_single_job_degenerates_to_serial(self):
        engine = SimEngine(backend=ThreadPoolBackend(jobs=1))
        assert len(engine.run_cells(CELLS[:2])) == 2


class TestShardedExecutor:
    def test_select_filters_deterministically(self):
        count = split_spec()
        items = [(cell.key(), cell) for cell in CELLS]
        selected = []
        for k in range(1, count + 1):
            executor = ShardedExecutor(ShardSpec(k, count))
            owned = executor.select(items)
            assert owned == executor.select(items)  # stable
            selected.extend(key for key, _cell in owned)
        assert sorted(selected) == sorted(key for key, _cell in items)

    def test_run_cells_refuses_partial_batch(self):
        count = split_spec()
        engine = SimEngine(
            backend=ShardedExecutor(ShardSpec(1, count)))
        with pytest.raises(IncompleteBatchError, match="shard"):
            engine.run_cells(CELLS)

    def test_execute_cells_owns_only_its_slice(self, tmp_path):
        count = split_spec()
        store = DiskStore(str(tmp_path / "cache"))
        engine = SimEngine(
            backend=ShardedExecutor(ShardSpec(1, count)),
            store=store)
        report = engine.execute_cells(CELLS)
        assert report.planned == len(CELLS)
        assert 0 < report.owned < len(CELLS)
        assert report.simulated == report.owned
        assert report.skipped == report.planned - report.owned
        assert engine.counters.simulated == report.owned

    def test_shard_union_assembles_with_zero_simulations(self, tmp_path):
        count = split_spec()
        cache = str(tmp_path / "cache")
        for k in range(1, count + 1):
            engine = SimEngine(
                backend=ShardedExecutor(ShardSpec(k, count),
                                        SerialBackend()),
                store=DiskStore(cache))
            engine.execute_cells(CELLS)

        assembler = SimEngine(store=DiskStore(cache))
        runs = assembler.run_cells(CELLS)
        assert assembler.counters.simulated == 0
        assert assembler.counters.store_hits == len(CELLS)
        reference = SimEngine().run_cells(CELLS)
        assert fingerprints(runs) == fingerprints(reference)

    def test_second_execute_is_all_cache_hits(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = SimEngine(store=DiskStore(cache))
        first.execute_cells(CELLS)
        second = SimEngine(store=DiskStore(cache))
        report = second.execute_cells(CELLS)
        assert report.simulated == 0
        assert report.cached == len(CELLS)


class TestExecuteProgress:
    """Satellite: one callback, campaign totals, uniform across backends."""

    @pytest.mark.parametrize("backend_name", ["serial", "thread"])
    def test_progress_reports_owned_totals(self, backend_name):
        calls = []
        engine = SimEngine(backend=get_executor(backend_name, 2))
        engine.execute_cells(CELLS, progress=lambda *args:
                             calls.append(args))
        # One leading call for the cached scan + one per simulation.
        assert len(calls) == 1 + len(CELLS)
        dones = [done for done, _total, _cached in calls]
        assert dones == sorted(dones)
        assert all(total == len(CELLS)
                   for _done, total, _cached in calls)
        assert calls[-1][0] == len(CELLS)

    def test_sharded_progress_counts_only_owned_cells(self):
        count = split_spec()
        calls = []
        engine = SimEngine(
            backend=ShardedExecutor(ShardSpec(1, count)))
        report = engine.execute_cells(CELLS, progress=lambda *args:
                                      calls.append(args))
        assert all(total == report.owned
                   for _done, total, _cached in calls)
        assert calls[-1][0] == report.owned

    def test_run_cells_progress_unchanged_shape(self):
        calls = []
        engine = SimEngine()
        engine.run_cells(CELLS[:2], progress=lambda *args:
                         calls.append(args))
        assert calls[0] == (0, 2, 0)
        assert calls[-1] == (2, 2, 0)
