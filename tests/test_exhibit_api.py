"""Tests for the declarative two-phase exhibit API (ISSUE 2).

Acceptance properties:

* planning is deterministic: the same context always declares the same
  cells;
* a multi-exhibit campaign simulates the union of planned cells exactly
  once, in a single backend batch, with cross-exhibit reuse visible in
  the engine counters;
* ``render("json")`` round-trips through ``json.loads`` to exactly
  ``to_dict()``, and the default text rendering equals ``render()``;
* ``--jobs 0`` auto-detects the CPU count;
* the engine's memo-vs-store clearing contract is explicit.
"""

import json
import os

import pytest

from repro.cli import build_parser, main, make_engine
from repro.errors import UnknownExhibitError
from repro.experiments import (
    Campaign,
    ExhibitContext,
    all_exhibits,
    exhibit_names,
    get_exhibit,
)
from repro.sim.engine import (
    ProcessPoolBackend,
    RunIndex,
    SerialBackend,
    SimEngine,
    SweepCell,
    set_engine,
)
from repro.sim.runner import RunSpec, clear_run_cache
from repro.sim.store import DiskStore
from repro.trace.workloads import Workload

TINY = RunSpec(trace_len=300, seed=3, max_cycles=200_000)

TINY_CTX = ExhibitContext.make(spec=TINY, classes=("MEM2",),
                               workloads_per_class=1)


@pytest.fixture(autouse=True)
def _fresh():
    clear_run_cache()
    yield
    clear_run_cache()


class CountingBackend(SerialBackend):
    """Serial backend that counts how many batches it receives."""

    def __init__(self):
        self.batches = 0

    def run(self, items, on_result):
        self.batches += 1
        super().run(items, on_result)


class TestRegistry:
    def test_all_eight_exhibits_registered(self):
        assert exhibit_names() == ("figure1", "figure2", "figure3",
                                   "figure4", "figure5", "figure6",
                                   "table1", "table2")

    def test_unknown_exhibit_raises(self):
        with pytest.raises(UnknownExhibitError):
            get_exhibit("figure9")

    def test_instances_carry_name_and_title(self):
        for name, ex in all_exhibits().items():
            assert ex.name == name
            assert ex.title


class TestPlanDeterminism:
    def test_same_ctx_same_cells(self):
        for name, ex in all_exhibits().items():
            first = ex.plan(TINY_CTX)
            second = ex.plan(TINY_CTX)
            assert [c.key() for c in first] == [c.key() for c in second], \
                f"{name} plan is not deterministic"
            assert first == second

    def test_plan_is_pure_no_simulation(self):
        engine = SimEngine()
        previous = set_engine(engine)
        try:
            for ex in all_exhibits().values():
                ex.plan(TINY_CTX)
        finally:
            set_engine(previous)
        assert engine.counters.simulated == 0

    def test_ctx_change_changes_cells(self):
        ex = get_exhibit("figure1")
        other = ExhibitContext.make(
            spec=RunSpec(trace_len=301, seed=3, max_cycles=200_000),
            classes=("MEM2",), workloads_per_class=1)
        assert ({c.key() for c in ex.plan(TINY_CTX)}
                != {c.key() for c in ex.plan(other)})


class TestCampaignDedup:
    def test_shared_cells_simulated_once(self):
        engine = SimEngine()
        campaign = Campaign(["figure1", "figure2", "figure3"],
                            ctx=TINY_CTX, engine=engine)
        plans = campaign.plans()
        planned = sum(len(cells) for cells in plans.values())
        unique = {cell.key()
                  for cells in plans.values() for cell in cells}
        assert planned > len(unique)  # figures overlap heavily

        results = campaign.run()
        assert set(results) == {"figure1", "figure2", "figure3"}
        assert engine.counters.simulated == len(unique)

    def test_all_eight_single_backend_batch(self):
        backend = CountingBackend()
        engine = SimEngine(backend=backend)
        campaign = Campaign(sorted(exhibit_names()), ctx=TINY_CTX,
                            engine=engine)
        results = campaign.run()
        assert backend.batches == 1
        assert len(results) == 8
        simulated = engine.counters.simulated
        assert simulated == len({c.key() for c in campaign.plan()})
        # Assembling consumed only memoized runs: nothing new simulated.
        campaign.assemble(campaign.execute())
        assert engine.counters.simulated == simulated

    def test_campaign_matches_single_exhibit_run(self):
        engine = SimEngine()
        campaign = Campaign(["figure1", "figure3"], ctx=TINY_CTX,
                            engine=engine)
        batched = campaign.run()["figure1"]
        solo = get_exhibit("figure1").run(
            spec=TINY, classes=("MEM2",), workloads_per_class=1,
            engine=SimEngine())
        assert batched.render() == solo.render()


class TestCostOrdering:
    def test_costliest_cells_first(self):
        ctx = ExhibitContext.make(spec=TINY, classes=("ILP2", "MEM4"),
                                  workloads_per_class=1)
        campaign = Campaign(["figure1"], ctx=ctx)
        batch = campaign.plan()
        threads = [cell.workload.num_threads for cell in batch]
        # Every 4-thread cell precedes every 2-thread cell; the
        # single-thread fairness references drain last.
        assert threads == sorted(threads, reverse=True)


class TestExhibitResultFormats:
    @pytest.fixture(scope="class")
    def figure1_result(self):
        clear_run_cache()
        return get_exhibit("figure1").run(spec=TINY, classes=("MEM2",),
                                          workloads_per_class=1,
                                          engine=SimEngine())

    def test_json_round_trips(self, figure1_result):
        assert (json.loads(figure1_result.render("json"))
                == figure1_result.to_dict())

    def test_table1_json_round_trips(self):
        result = get_exhibit("table1").run(engine=SimEngine())
        assert json.loads(result.render("json")) == result.to_dict()

    def test_default_render_is_text(self, figure1_result):
        assert figure1_result.render() == figure1_result.render("text")
        assert figure1_result.render().startswith("== Figure 1: ")

    def test_csv_has_headers_and_rows(self, figure1_result):
        lines = figure1_result.render("csv").splitlines()
        assert "Policy,MEM2" in lines
        assert any(line.startswith("rat,") for line in lines)

    def test_unknown_format_rejected(self, figure1_result):
        with pytest.raises(ValueError):
            figure1_result.render("yaml")

    def test_payload_mirrors_sections(self, figure1_result):
        document = figure1_result.to_dict()
        assert document["exhibit"] == "Figure 1"
        assert len(document["sections"]) == 3
        assert document["data"]["policies"] == ["icount", "stall",
                                                "flush", "rat"]


class TestRunIndex:
    def test_missing_cell_is_an_error(self):
        index = RunIndex({})
        cell = SweepCell.make(Workload("MEM2", ("swim", "art")),
                              "icount", spec=TINY)
        with pytest.raises(KeyError):
            index[cell]
        assert index.get(cell) is None


class TestClearContract:
    def test_clear_memo_keeps_store(self):
        engine = SimEngine()
        engine.run_workload(Workload("MEM2", ("swim", "art")), "icount",
                            spec=TINY)
        engine.clear_memo()
        engine.run_workload(Workload("MEM2", ("swim", "art")), "icount",
                            spec=TINY)
        assert engine.counters.simulated == 1
        assert engine.counters.store_hits == 1

    def test_clear_drops_memory_store(self):
        engine = SimEngine()
        engine.run_workload(Workload("MEM2", ("swim", "art")), "icount",
                            spec=TINY)
        engine.clear()
        engine.run_workload(Workload("MEM2", ("swim", "art")), "icount",
                            spec=TINY)
        assert engine.counters.simulated == 2

    def test_clear_keeps_disk_entries(self, tmp_path):
        engine = SimEngine(store=DiskStore(str(tmp_path / "cache")))
        engine.run_workload(Workload("MEM2", ("swim", "art")), "icount",
                            spec=TINY)
        engine.clear()
        engine.run_workload(Workload("MEM2", ("swim", "art")), "icount",
                            spec=TINY)
        assert engine.counters.simulated == 1
        assert engine.counters.store_hits == 1


class TestJobsAuto:
    def test_jobs_zero_means_cpu_count(self):
        args = build_parser().parse_args(["figure1", "--jobs", "0"])
        assert args.jobs == 0
        engine = make_engine(args)
        assert isinstance(engine.backend, ProcessPoolBackend)
        assert engine.backend.jobs == (os.cpu_count() or 1)

    def test_short_flag_j0(self):
        args = build_parser().parse_args(["figure1", "-j0"])
        assert args.jobs == 0

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--jobs", "-2"])

    def test_jobs_one_stays_serial(self):
        args = build_parser().parse_args(["figure1", "--jobs", "1"])
        assert isinstance(make_engine(args).backend, SerialBackend)


class TestCLIFormats:
    ARGS = ["--trace-len", "300", "--seed", "3",
            "--workloads-per-class", "1", "--classes", "MEM2",
            "--no-progress"]

    def test_single_exhibit_json_stdout_is_pure_json(self, capsys):
        assert main(["figure1", "--format", "json"] + self.ARGS) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document["exhibit"] == "Figure 1"

    def test_all_json_stdout_is_one_document(self, capsys):
        assert main(["all", "--format", "json"] + self.ARGS) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert sorted(document) == sorted(exhibit_names())
        for name, payload in document.items():
            assert payload["sections"], name

    def test_text_json_agree(self, capsys):
        assert main(["figure1", "--format", "json"] + self.ARGS) == 0
        document = json.loads(capsys.readouterr().out)
        assert main(["figure1"] + self.ARGS) == 0
        text = capsys.readouterr().out
        # The same throughput table, in both renderings.
        rat_row = next(row for row in document["data"]["throughput"]
                       if row[0] == "rat")
        assert f"rat     {rat_row[1]:.3f}" in text

    def test_output_dir_writes_files(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["table1", "--format", "json",
                     "--output", out_dir] + self.ARGS) == 0
        capsys.readouterr()
        path = os.path.join(out_dir, "table1.json")
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["exhibit"] == "Table 1"

    def test_csv_format(self, capsys):
        assert main(["figure1", "--format", "csv"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Policy,MEM2" in out


class TestRenderCache:
    """ISSUE 5: incremental exhibit regeneration via the render cache."""

    def test_second_regenerate_zero_renders_zero_simulations(
            self, tmp_path):
        from repro.sim.store import ExhibitRenderCache

        cache = ExhibitRenderCache(str(tmp_path / "exhibits"))
        store = DiskStore(str(tmp_path / "cache"))
        first = Campaign(["figure1", "figure3"], ctx=TINY_CTX,
                         engine=SimEngine(store=store))
        results, report = first.regenerate(cache=cache)
        assert set(report.assembled) == {"figure1", "figure3"}
        assert report.from_cache == ()
        assert report.cells_executed > 0

        second = Campaign(["figure1", "figure3"], ctx=TINY_CTX,
                          engine=SimEngine(store=DiskStore(
                              str(tmp_path / "cache"))))
        again, report2 = second.regenerate(cache=cache)
        assert report2.assembled == ()
        assert set(report2.from_cache) == {"figure1", "figure3"}
        assert report2.cells_executed == 0
        assert second.engine.counters.simulated == 0
        assert second.engine.counters.store_hits == 0  # no run read
        for name in ("figure1", "figure3"):
            for fmt in ("text", "json", "csv"):
                assert again[name].render(fmt) == \
                    results[name].render(fmt), f"{name}/{fmt}"

    def test_partial_cache_executes_only_missing_exhibits(
            self, tmp_path):
        from repro.sim.store import ExhibitRenderCache

        cache = ExhibitRenderCache(str(tmp_path / "exhibits"))
        store_dir = str(tmp_path / "cache")
        seed = Campaign(["figure1"], ctx=TINY_CTX,
                        engine=SimEngine(store=DiskStore(store_dir)))
        seed.regenerate(cache=cache)

        both = Campaign(["figure1", "figure2"], ctx=TINY_CTX,
                        engine=SimEngine(store=DiskStore(store_dir)))
        _results, report = both.regenerate(cache=cache)
        assert report.from_cache == ("figure1",)
        assert report.assembled == ("figure2",)
        # Only figure2's planned cells were in the batch.
        manifest = both.plan()
        assert report.cells_executed == \
            len(manifest.exhibit_plan("figure2").cell_keys)

    def test_no_cache_always_assembles(self):
        campaign = Campaign(["figure1"], ctx=TINY_CTX,
                            engine=SimEngine())
        _results, report = campaign.regenerate(cache=None)
        assert report.assembled == ("figure1",)

    def test_result_from_dict_renders_identically(self):
        from repro.experiments import ExhibitResult

        result = get_exhibit("figure1").run(spec=TINY, classes=("MEM2",),
                                            workloads_per_class=1,
                                            engine=SimEngine())
        clone = ExhibitResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        for fmt in ("text", "json", "csv"):
            assert clone.render(fmt) == result.render(fmt)
        # data rehydrates from the serialized payload: same keys and
        # values in their canonical JSON-safe projection, so cache hits
        # are sliceable programmatically without a full assembly.
        assert clone.data == json.loads(json.dumps(result.payload))
        assert clone.data is not clone.payload  # independent copies
