"""Tests for the experiment drivers (tiny scale) and report rendering."""

import pytest

from repro.experiments import (
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
)
from repro.experiments.common import (
    BENCH_WORKLOADS_ENV,
    bench_workloads_per_class,
)
from repro.experiments.figure6 import effective_size
from repro.experiments.report import ascii_table, bar_chart
from repro.sim.runner import RunSpec, clear_run_cache

TINY = RunSpec(trace_len=400, seed=2, max_cycles=300_000)
#: Behavioural assertions about runahead need episodes to matter.
MID = RunSpec(trace_len=1500, seed=2, max_cycles=1_000_000)


@pytest.fixture(autouse=True)
def _fresh():
    clear_run_cache()
    yield
    clear_run_cache()


class TestBenchKnobs:
    def test_unset_env_returns_default(self, monkeypatch):
        monkeypatch.delenv(BENCH_WORKLOADS_ENV, raising=False)
        assert bench_workloads_per_class(3) == 3

    def test_empty_env_returns_default(self, monkeypatch):
        monkeypatch.setenv(BENCH_WORKLOADS_ENV, "")
        assert bench_workloads_per_class(3) == 3

    def test_zero_means_uncapped(self, monkeypatch):
        monkeypatch.setenv(BENCH_WORKLOADS_ENV, "0")
        assert bench_workloads_per_class(3) is None

    def test_positive_value_wins(self, monkeypatch):
        monkeypatch.setenv(BENCH_WORKLOADS_ENV, "5")
        assert bench_workloads_per_class(3) == 5


class TestReportRendering:
    def test_ascii_table_alignment(self):
        text = ascii_table(("Name", "Value"),
                           [["row", 1.23456], ["longer-row", 2.0]],
                           title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text and "longer-row" in text

    def test_bar_chart_scales(self):
        text = bar_chart({"g": {"a": 1.0, "b": 0.5}}, title="bars",
                         width=10)
        assert text.splitlines()[0] == "bars"
        assert "#" * 10 in text and "#" * 5 in text

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="nothing") == "nothing"


class TestTable1:
    def test_renders_all_rows(self):
        result = table1()
        text = result.render()
        assert "512 shared entries" in text
        assert "Perceptron" in text
        assert "400 cycles" in text


class TestTable2:
    def test_classification_separates_groups(self):
        result = table2(spec=TINY)
        mpki = result.data["mpki"]
        from repro.trace.profiles import ilp_benchmarks, mem_benchmarks
        worst_ilp = max(mpki[name] for name in ilp_benchmarks())
        best_mem = min(mpki[name] for name in mem_benchmarks())
        assert best_mem > worst_ilp

    def test_lists_all_54_workloads(self):
        result = table2(spec=TINY)
        assert len(result.data["workloads"]) == 54


class TestFigure1:
    def test_structure_and_relatives(self):
        result = figure1(spec=TINY, classes=("MEM2",),
                         workloads_per_class=2)
        text = result.render()
        assert "Throughput" in text and "Fairness" in text
        sweep = result.data["sweep"]
        rat_rel = sweep.relative("rat", "icount", "throughput")[0]
        assert rat_rel == pytest.approx(
            sweep.metric("rat", "MEM2", "throughput")
            / sweep.metric("icount", "MEM2", "throughput"))
        # Every policy ran every requested workload.
        for policy in result.data["policies"]:
            assert len(sweep.cells[(policy, "MEM2")].runs) == 2


class TestFigure3:
    def test_normalized_to_icount(self):
        result = figure3(spec=TINY, classes=("MEM2",),
                         workloads_per_class=1)
        normalized = result.data["normalized"]
        assert set(normalized) == {"stall", "flush", "dcra", "hill", "rat"}
        for values in normalized.values():
            assert values["MEM2"] > 0


class TestFigure4:
    def test_three_sources_reported(self):
        result = figure4(spec=TINY, classes=("MEM2",),
                         workloads_per_class=1)
        sources = result.data["per_class"]["MEM2"]
        assert hasattr(sources, "prefetching")
        assert hasattr(sources, "resource_availability")
        assert hasattr(sources, "overhead")

    def test_prefetching_positive_on_mem(self):
        result = figure4(spec=MID, classes=("MEM2",),
                         workloads_per_class=2)
        assert result.data["per_class"]["MEM2"].prefetching > 0


class TestFigure5:
    def test_runahead_mode_lighter(self):
        result = figure5(spec=MID, classes=("MEM2",),
                         workloads_per_class=2)
        normal, runahead = result.data["usage"]["MEM2"]
        assert runahead < normal


class TestFigure6:
    def test_effective_size_clamps(self):
        assert effective_size(64, 2) == 80
        assert effective_size(64, 4) == 144
        assert effective_size(128, 4) == 144
        assert effective_size(320, 4) == 320

    def test_series_shape(self):
        result = figure6(spec=TINY, classes=("MEM2",),
                         workloads_per_class=1)
        series = result.data["series"]
        assert ("MEM2", "rat") in series and ("MEM2", "flush") in series
        assert len(series[("MEM2", "rat")]) == 5

    def test_throughput_grows_with_registers(self):
        result = figure6(spec=TINY, classes=("MEM2",),
                         workloads_per_class=1)
        series = result.data["series"][("MEM2", "flush")]
        assert series[-1] >= series[0] * 0.8  # no catastrophic inversion
