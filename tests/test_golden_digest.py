"""Golden-digest determinism tests.

``tests/data/golden_digests.json`` pins the sha256 digest of the canonical
``SimResult.to_dict()`` encoding for a small matrix of (workload, policy)
cells.  The digests were recorded with the *pre-optimization* pipeline
(before event-driven cycle skipping landed), so these tests prove the
optimized simulator produces bit-identical results: same cycle counts,
same per-thread counters, same L2 miss totals — not merely statistically
similar ones.

If a PR intentionally changes simulation semantics, re-record with::

    PYTHONPATH=src python tests/test_golden_digest.py --record

and bump ``repro.sim.store.CODE_VERSION_SALT`` in the same change (see
the salt-bump policy in :mod:`repro.sim.store`).
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.config import baseline
from repro.core.processor import SMTProcessor
from repro.sim.store import canonical_json
from repro.trace.generator import generate_trace
from repro.trace.workloads import Workload

DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                         "golden_digests.json")

#: The pinned matrix: id -> (class, benchmarks, policy, trace_len,
#: min_passes, max_cycles[, config_overrides]).  Cells cover every
#: thread count, every workload class flavour, and every policy with
#: per-cycle behaviour (dcra / hill / mlp exercise the skip-horizon
#: logic; rat exercises runahead entry/exit across skips; the truncated
#: cell pins the max-cycles clamp).  The ``-mshr`` cells shrink the MSHR
#: file so rejected-load replay windows occur densely, pinning the
#: intra-thread (memory-wait) skip horizon introduced after the original
#: 14-cell matrix was recorded.
GOLDEN_CELLS = {
    "single-mcf-icount": ("SINGLE", ("mcf",), "icount", 600, 3, 2_000_000),
    "mem2-icount": ("MEM2", ("art", "mcf"), "icount", 600, 1, 2_000_000),
    "mem2-stall": ("MEM2", ("art", "mcf"), "stall", 600, 1, 2_000_000),
    "mem2-flush": ("MEM2", ("art", "mcf"), "flush", 600, 1, 2_000_000),
    "mem2-rat": ("MEM2", ("art", "mcf"), "rat", 600, 1, 2_000_000),
    "mem2-dcra": ("MEM2", ("art", "mcf"), "dcra", 600, 1, 2_000_000),
    "mem2-hill": ("MEM2", ("art", "mcf"), "hill", 600, 1, 2_000_000),
    "mem2-mlp": ("MEM2", ("art", "mcf"), "mlp", 600, 1, 2_000_000),
    "mix2-stall": ("MIX2", ("bzip2", "mcf"), "stall", 600, 1, 2_000_000),
    "mix2-rat": ("MIX2", ("bzip2", "mcf"), "rat", 600, 1, 2_000_000),
    "ilp2-icount": ("ILP2", ("gzip", "bzip2"), "icount", 600, 1, 2_000_000),
    "mem4-stall": ("MEM4", ("applu", "art", "mcf", "twolf"), "stall",
                   500, 1, 2_000_000),
    "mem4-rat": ("MEM4", ("applu", "art", "mcf", "twolf"), "rat",
                 500, 1, 2_000_000),
    "mem2-stall-truncated": ("MEM2", ("swim", "mcf"), "stall",
                             600, 50, 3_000),
    "mem2-rat-mshr4": ("MEM2", ("art", "mcf"), "rat", 600, 1, 2_000_000,
                       {"mshr_entries": 4}),
    "mem2-icount-mshr2": ("MEM2", ("art", "mcf"), "icount", 600, 1,
                          2_000_000, {"mshr_entries": 2}),
}


def simulate_golden_cell(cell_id: str):
    """Run one pinned cell from scratch (no engine, no cache)."""
    cell = GOLDEN_CELLS[cell_id]
    klass, benchmarks, policy, trace_len, min_passes, max_cycles = cell[:6]
    overrides = cell[6] if len(cell) > 6 else {}
    Workload(klass, tuple(benchmarks))  # validates the benchmark names
    traces = [generate_trace(name, trace_len, seed=1) for name in benchmarks]
    config = baseline().with_policy(policy, **overrides)
    processor = SMTProcessor(config, traces)
    return processor.run(min_passes=min_passes, max_cycles=max_cycles)


def digest_of(result) -> str:
    payload = canonical_json(result.to_dict())
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _load_golden():
    with open(DATA_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def golden():
    return _load_golden()


def test_golden_file_matches_matrix(golden):
    assert sorted(golden["digests"]) == sorted(GOLDEN_CELLS)


@pytest.fixture(params=["python", "specialized"])
def kernel_tier(request, monkeypatch):
    """Run the depending test once per kernel tier.

    The digests were recorded long before the specialized tier existed,
    so a pass under ``specialized`` proves the generated kernels are
    bit-identical to the original pipeline, not merely to each other.
    """
    monkeypatch.setenv("REPRO_KERNEL", request.param)
    return request.param


@pytest.mark.parametrize("cell_id", sorted(GOLDEN_CELLS))
def test_simresult_bit_identical(golden, kernel_tier, cell_id):
    result = simulate_golden_cell(cell_id)
    expected = golden["digests"][cell_id]
    actual = digest_of(result)
    assert actual == expected, (
        f"{cell_id}: SimResult diverged from the pre-optimization "
        f"pipeline under the {kernel_tier!r} kernel tier "
        f"(digest {actual} != {expected}).  If the semantic "
        f"change is intentional, re-record (see module docstring) and "
        f"bump CODE_VERSION_SALT.")


def test_truncated_cell_is_truncated():
    # The clamp cell must actually exercise the max_cycles path, or it
    # pins nothing about cycle-skip interaction with the cap.
    result = simulate_golden_cell("mem2-stall-truncated")
    assert result.truncated
    assert result.cycles == 3_000


def _record() -> None:
    digests = {}
    for cell_id in sorted(GOLDEN_CELLS):
        result = simulate_golden_cell(cell_id)
        digests[cell_id] = digest_of(result)
        print(f"{cell_id}: {digests[cell_id]} "
              f"(cycles={result.cycles}, truncated={result.truncated})")
    os.makedirs(os.path.dirname(DATA_PATH), exist_ok=True)
    with open(DATA_PATH, "w", encoding="utf-8") as handle:
        json.dump({"comment": "sha256 of canonical SimResult.to_dict(); "
                              "recorded with the pre-cycle-skipping "
                              "pipeline. Regenerate: PYTHONPATH=src python "
                              "tests/test_golden_digest.py --record",
                   "digests": digests},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {DATA_PATH}")


if __name__ == "__main__":
    import sys
    if "--record" in sys.argv:
        _record()
    else:
        print(__doc__)
