"""End-to-end integration tests: the paper's headline shapes at small scale.

These use the real synthetic benchmarks and the full machine (Table 1
baseline), scaled down only in trace length.
"""

import pytest

from repro import SMTConfig, SMTProcessor, generate_trace
from repro.sim.runner import RunSpec, clear_run_cache, run_workload
from repro.trace.workloads import Workload

SPEC = RunSpec(trace_len=2000, seed=3, max_cycles=2_000_000)


def _run(benches, policy, **overrides):
    config = SMTConfig(policy=policy, **overrides).validate()
    traces = [generate_trace(b, SPEC.trace_len, SPEC.seed) for b in benches]
    cpu = SMTProcessor(config, traces)
    result = cpu.run(max_cycles=SPEC.max_cycles)
    cpu.pipeline.check_invariants()
    return result


@pytest.fixture(autouse=True)
def _fresh():
    clear_run_cache()
    yield


class TestHeadlineResults:
    def test_rat_beats_static_policies_on_mem2(self):
        """Paper Figure 1a: RaT clearly ahead on memory-bound workloads."""
        benches = ("swim", "mcf")
        rat = _run(benches, "rat").throughput
        for other in ("icount", "stall", "flush"):
            assert rat > _run(benches, other).throughput * 1.1

    def test_rat_beats_dynamic_policies_on_mem2(self):
        """Paper Figure 2a."""
        benches = ("swim", "mcf")
        rat = _run(benches, "rat").throughput
        for other in ("dcra", "hill"):
            assert rat > _run(benches, other).throughput * 1.1

    def test_rat_runs_ahead_on_mem_workloads(self):
        result = _run(("art", "mcf"), "rat")
        episodes = sum(s.runahead_episodes for s in result.thread_stats)
        assert episodes > 10

    def test_ilp_workloads_unaffected_by_rat(self):
        """Runahead never triggers without L2 misses, so ILP pairs behave
        identically under ICOUNT and RaT."""
        benches = ("gzip", "eon")
        icount = _run(benches, "icount")
        rat = _run(benches, "rat")
        assert rat.throughput == pytest.approx(icount.throughput, rel=0.02)
        assert sum(s.runahead_episodes for s in rat.thread_stats) <= 2

    def test_rat_improves_mem_thread_in_mix(self):
        """The memory-bound thread gains from runahead prefetching even
        next to an ILP thread (paper §5.1 fairness discussion)."""
        benches = ("swim", "crafty")
        stall = _run(benches, "stall")
        rat = _run(benches, "rat")
        assert rat.ipcs[0] > stall.ipcs[0] * 1.3

    def test_rat_executes_extra_instructions(self):
        """Speculative work shows up in the energy proxy (paper §5.3)."""
        benches = ("swim", "mcf")
        rat = _run(benches, "rat")
        icount = _run(benches, "icount")
        assert rat.total_executed > icount.total_executed

    def test_rat_ed2_still_better_on_mem(self):
        """Despite extra instructions, RaT's ED^2 beats ICOUNT on MEM
        workloads (paper Figure 3)."""
        benches = ("swim", "mcf")
        rat = _run(benches, "rat")
        icount = _run(benches, "icount")
        assert rat.ed2() < icount.ed2()

    def test_runahead_mode_uses_fewer_registers(self):
        """Paper Figure 5: runahead-mode register occupancy is lower."""
        result = _run(("swim", "art"), "rat")
        for stats in result.thread_stats:
            if stats.runahead_reg_samples > 100:
                assert stats.avg_regs_runahead() < stats.avg_regs_normal()

    def test_rat_less_sensitive_to_small_register_file(self):
        """Paper Figure 6: shrinking registers hurts RaT less than FLUSH."""
        benches = ("swim", "mcf")
        flush_big = _run(benches, "flush").throughput
        flush_small = _run(benches, "flush",
                           int_regs=96, fp_regs=96).throughput
        rat_big = _run(benches, "rat").throughput
        rat_small = _run(benches, "rat", int_regs=96, fp_regs=96).throughput
        flush_loss = 1.0 - flush_small / flush_big
        rat_loss = 1.0 - rat_small / rat_big
        assert rat_loss < flush_loss + 0.10

    def test_rat_small_file_beats_flush_large_file(self):
        """Paper §6.2: RaT at 128 registers >= FLUSH at 320."""
        benches = ("swim", "mcf")
        rat_small = _run(benches, "rat", int_regs=128,
                         fp_regs=128).throughput
        flush_full = _run(benches, "flush").throughput
        assert rat_small > flush_full


class TestFameMethodology:
    def test_all_threads_complete_at_least_one_pass(self):
        workload = Workload("MEM2", ("art", "mcf"))
        run = run_workload(workload, "icount", spec=SPEC)
        assert all(stats.passes >= 1 for stats in run.result.thread_stats)

    def test_fast_thread_keeps_running(self):
        """FAME: the ILP thread re-executes while the MEM thread finishes
        its first pass, so it completes several passes."""
        workload = Workload("MIX2", ("mcf", "eon"))
        run = run_workload(workload, "icount", spec=SPEC)
        eon_stats = run.result.thread_stats[1]
        assert eon_stats.passes >= 2


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = _run(("art", "gzip"), "rat")
        second = _run(("art", "gzip"), "rat")
        assert first.cycles == second.cycles
        assert first.ipcs == second.ipcs

    def test_different_policies_differ_on_mem(self):
        icount = _run(("swim", "mcf"), "icount")
        rat = _run(("swim", "mcf"), "rat")
        assert icount.cycles != rat.cycles
