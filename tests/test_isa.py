"""Tests for repro.isa."""

from repro.isa import (
    FUKind,
    IssueQueueKind,
    NUM_ARCH_REGS,
    OP_FU,
    OP_LATENCY,
    OP_QUEUE,
    OpClass,
    RegClass,
    is_fp_op,
    is_load,
    is_memory_op,
    is_store,
    reg_class,
)


def test_arch_reg_split():
    assert NUM_ARCH_REGS == 64
    assert reg_class(0) == RegClass.INT
    assert reg_class(31) == RegClass.INT
    assert reg_class(32) == RegClass.FP
    assert reg_class(63) == RegClass.FP


def test_every_op_has_latency_queue_and_fu():
    for op in OpClass:
        assert op in OP_LATENCY
        assert op in OP_QUEUE
        assert op in OP_FU


def test_memory_classification():
    assert is_memory_op(OpClass.LOAD) and is_memory_op(OpClass.FSTORE)
    assert not is_memory_op(OpClass.IALU)
    assert is_load(OpClass.FLOAD) and not is_load(OpClass.STORE)
    assert is_store(OpClass.STORE) and not is_store(OpClass.LOAD)


def test_fp_ops_exclude_fp_memory():
    # FP loads/stores compute addresses in the integer pipeline (§3.3).
    assert is_fp_op(OpClass.FADD) and is_fp_op(OpClass.FDIV)
    assert not is_fp_op(OpClass.FLOAD)
    assert not is_fp_op(OpClass.FSTORE)


def test_memory_ops_use_ls_queue_and_ldst_units():
    for op in (OpClass.LOAD, OpClass.STORE, OpClass.FLOAD, OpClass.FSTORE):
        assert OP_QUEUE[op] == IssueQueueKind.LS
        assert OP_FU[op] == FUKind.LDST


def test_fp_compute_uses_fp_queue_and_units():
    for op in (OpClass.FADD, OpClass.FMUL, OpClass.FDIV):
        assert OP_QUEUE[op] == IssueQueueKind.FP
        assert OP_FU[op] == FUKind.FP


def test_branch_is_integer_side():
    assert OP_QUEUE[OpClass.BRANCH] == IssueQueueKind.INT
    assert OP_FU[OpClass.BRANCH] == FUKind.INT


def test_latency_ordering():
    assert OP_LATENCY[OpClass.IALU] == 1
    assert OP_LATENCY[OpClass.IMUL] > OP_LATENCY[OpClass.IALU]
    assert OP_LATENCY[OpClass.FDIV] > OP_LATENCY[OpClass.FMUL]
    assert OP_LATENCY[OpClass.FMUL] >= OP_LATENCY[OpClass.FADD]
