"""The kernel registry and the specializing tier's machinery.

Bit-identity of the generated kernels is pinned elsewhere (the golden
digests and the advance-vs-step fuzz both run per tier); this module
covers the *selection* machinery: the ``REPRO_KERNEL`` knob, the CLI
flag, fallback for uncovered policies (never an error), per-process
memoization by machine shape, per-``run()`` re-resolution of the
mutable key folds, and knob propagation into process-pool workers.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import KERNEL_ENV_VAR, baseline, kernel_mode
from repro.core.kernel_cache import (cache_info, clear_cache,
                                     specialized_run_loop)
from repro.core.kernel_gen import specialization_key
from repro.core.processor import SMTProcessor
from repro.errors import ConfigError
from repro.policies.icount import ICountPolicy
from repro.sim.kernels import (kernel_names, python_run_loop,
                               resolve_run_loop)
from repro.trace.generator import generate_trace


def _processor(policy="icount", benchmarks=("art", "mcf"),
               trace_len=200, **overrides):
    traces = [generate_trace(name, trace_len, 1) for name in benchmarks]
    return SMTProcessor(baseline().with_policy(policy, **overrides),
                        traces)


# --- the environment knob ---------------------------------------------------


def test_kernel_mode_env_values(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    assert kernel_mode() == "auto"
    for value in ("auto", "python", "specialized", " PYTHON "):
        monkeypatch.setenv(KERNEL_ENV_VAR, value)
        assert kernel_mode() == value.strip().lower()
    monkeypatch.setenv(KERNEL_ENV_VAR, "fortran")
    with pytest.raises(ConfigError):
        kernel_mode()


def test_cli_kernel_flag_sets_env(monkeypatch):
    from repro.cli import _apply_speculate, build_parser
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    args = build_parser().parse_args(["table1", "--kernel", "python"])
    _apply_speculate(args)
    assert os.environ[KERNEL_ENV_VAR] == "python"
    # absent flag leaves the environment alone
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    _apply_speculate(build_parser().parse_args(["table1"]))
    assert KERNEL_ENV_VAR not in os.environ


def test_bench_cli_takes_kernel_flag():
    from repro.cli import build_bench_parser
    args = build_bench_parser().parse_args(["--quick", "--kernel",
                                            "specialized"])
    assert args.kernel == "specialized"


# --- registry + selection ---------------------------------------------------


def test_registered_tiers():
    assert kernel_names() == ("python", "specialized")


def test_python_mode_forces_portable_loop(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "python")
    processor = _processor()
    assert resolve_run_loop(processor.pipeline) is python_run_loop


def test_auto_selects_specialized_for_covered_shape(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    processor = _processor()
    loop = resolve_run_loop(processor.pipeline)
    assert loop is not python_run_loop
    assert loop.__kernel_key__ == specialization_key(processor.pipeline)


def test_resolution_rereads_mutable_switches(monkeypatch):
    """``cycle_skip`` is a mutable pipeline flag tests flip between
    runs; the key folds it, so re-resolving must yield the matching
    kernel variant, not the memoized first one."""
    monkeypatch.setenv(KERNEL_ENV_VAR, "specialized")
    processor = _processor()
    with_skip = resolve_run_loop(processor.pipeline)
    processor.pipeline.cycle_skip = False
    without_skip = resolve_run_loop(processor.pipeline)
    assert with_skip is not without_skip
    assert with_skip.__kernel_key__.skip_enabled
    assert not without_skip.__kernel_key__.skip_enabled


# --- fallback: a request, never an error ------------------------------------


class OpaqueFetchOrder(ICountPolicy):
    """A third-party policy: overrides a kernel-folded hook outside
    ``repro.policies``, so the generator must refuse coverage."""

    def fetch_order(self, cycle):
        return list(reversed(super().fetch_order(cycle)))


def test_uncovered_policy_falls_back_to_python(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "specialized")
    traces = [generate_trace("art", 200, 1)]
    config = baseline()
    processor = SMTProcessor(config, traces,
                             policy=OpaqueFetchOrder(config))
    assert specialization_key(processor.pipeline) is None
    assert specialized_run_loop(processor.pipeline) is None
    assert resolve_run_loop(processor.pipeline) is python_run_loop
    # ...and the run itself completes: tier selection never errors.
    result = processor.run(min_passes=1, max_cycles=200_000)
    assert result.total_committed > 0


def test_fallback_matches_python_tier(monkeypatch):
    """The fallback is the python tier, bit for bit."""
    results = {}
    for mode in ("python", "specialized"):
        monkeypatch.setenv(KERNEL_ENV_VAR, mode)
        traces = [generate_trace("art", 200, 1)]
        config = baseline()
        processor = SMTProcessor(config, traces,
                                 policy=OpaqueFetchOrder(config))
        results[mode] = processor.run(min_passes=1,
                                      max_cycles=200_000).to_dict()
    assert results["python"] == results["specialized"]


# --- memoization ------------------------------------------------------------


def test_kernels_memoized_per_shape():
    clear_cache()
    first = specialized_run_loop(_processor().pipeline)
    second = specialized_run_loop(_processor().pipeline)
    assert first is second
    assert len(cache_info()) == 1
    # A different machine shape compiles (and caches) a second kernel.
    other = specialized_run_loop(
        _processor(policy="rat", benchmarks=("art",)).pipeline)
    assert other is not first
    assert len(cache_info()) == 2


def test_kernel_source_attached():
    loop = specialized_run_loop(_processor().pipeline)
    assert "def _kernel_run(" in loop.__kernel_source__
    compile(loop.__kernel_source__, "<kernel-gen>", "exec")  # re-parses


# --- knob propagation into workers ------------------------------------------


def test_process_pool_workers_inherit_kernel_choice(monkeypatch):
    """The tier request travels to process-pool workers via the
    environment, like ``REPRO_SPECULATE``; the pooled results must be
    bit-identical to a serial python-tier run."""
    from repro.sim.engine import SimEngine, SweepCell
    from repro.sim.executors import ProcessPoolBackend, SerialBackend
    from repro.sim.runner import RunSpec
    from repro.trace.workloads import Workload

    spec = RunSpec(trace_len=240, seed=3, max_cycles=200_000)
    cells = [
        SweepCell.make(Workload("MEM2", ("art", "mcf")), "icount",
                       spec=spec),
        SweepCell.make(Workload("MEM2", ("art", "mcf")), "rat",
                       spec=spec),
    ]

    def fingerprints(runs):
        return [json.dumps(run.result.to_dict(), sort_keys=True)
                for run in runs]

    monkeypatch.setenv(KERNEL_ENV_VAR, "python")
    reference = fingerprints(
        SimEngine(backend=SerialBackend()).run_cells(cells))
    monkeypatch.setenv(KERNEL_ENV_VAR, "specialized")
    pooled = fingerprints(
        SimEngine(backend=ProcessPoolBackend(jobs=2)).run_cells(cells))
    assert pooled == reference
